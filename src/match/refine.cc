#include "match/refine.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "match/bipartite.h"

namespace graphql::match {

namespace {

uint64_t PairKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

/// Unique undirected neighbor list of a node (parallel edges collapsed;
/// for directed graphs, in- and out-neighbors are merged — this weakens
/// but never unsounds the pruning).
std::vector<NodeId> UniqueNeighbors(const Graph& g, NodeId v) {
  std::vector<NodeId> out;
  out.reserve(g.Degree(v));
  for (const Graph::Adj& a : g.neighbors(v)) out.push_back(a.node);
  if (g.directed()) {
    for (const Graph::Adj& a : g.in_neighbors(v)) out.push_back(a.node);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

void RefineSearchSpace(const algebra::GraphPattern& pattern, const Graph& data,
                       int level, std::vector<std::vector<NodeId>>* candidates,
                       RefineStats* stats, bool use_marking,
                       obs::MetricsRegistry* metrics,
                       ResourceGovernor* governor) {
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  if (k == 0 || level <= 0) return;
  RefineStats local;  // Counted unconditionally; flushed once at the end.

  // The k x n membership bitmaps are the big transient structure here.
  ScopedReserve bitmap_mem(governor, k * data.NumNodes(), GovernPoint::kRefine);

  // Pattern neighbor lists (tiny, precompute once).
  std::vector<std::vector<NodeId>> pnbr(k);
  for (size_t u = 0; u < k; ++u) {
    pnbr[u] = UniqueNeighbors(p, static_cast<NodeId>(u));
  }

  // Membership bitmaps: in_cand[u][v] == 1 iff v in candidates[u]. The
  // hashed pair bookkeeping below implements the paper's second
  // improvement (no k x n matrix is materialized for the marks).
  std::vector<std::vector<char>> in_cand(k,
                                         std::vector<char>(data.NumNodes(), 0));
  for (size_t u = 0; u < k; ++u) {
    for (NodeId v : (*candidates)[u]) in_cand[u][v] = 1;
  }

  // The marked-pair set grows with the dirty frontier; route its
  // allocations through the governor's accounting allocator.
  using MarkedSet =
      std::unordered_set<uint64_t, std::hash<uint64_t>, std::equal_to<uint64_t>,
                         GovernedAllocator<uint64_t>>;
  MarkedSet marked(0, std::hash<uint64_t>(), std::equal_to<uint64_t>(),
                   GovernedAllocator<uint64_t>(governor, GovernPoint::kRefine));
  for (size_t u = 0; u < k; ++u) {
    for (NodeId v : (*candidates)[u]) marked.insert(PairKey(static_cast<NodeId>(u), v));
  }

  std::vector<std::vector<int>> adj;  // Reused bipartite adjacency buffer.
  for (int l = 0; l < level; ++l) {
    local.levels_run = l + 1;
    std::vector<uint64_t> todo;
    if (use_marking) {
      todo.assign(marked.begin(), marked.end());
      // Deterministic processing order regardless of hash iteration.
      std::sort(todo.begin(), todo.end());
    } else {
      for (size_t u = 0; u < k; ++u) {
        for (NodeId v : (*candidates)[u]) {
          if (in_cand[u][v]) todo.push_back(PairKey(static_cast<NodeId>(u), v));
        }
      }
    }
    if (todo.empty()) break;
    bool changed = false;

    for (uint64_t key : todo) {
      ++local.pairs_charged;
      if (!GovCharge(governor, 1, GovernPoint::kRefine)) {
        local.aborted = true;
        break;
      }
      NodeId u = static_cast<NodeId>(key >> 32);
      NodeId v = static_cast<NodeId>(key & 0xffffffffu);
      if (!in_cand[u][v]) {  // Already removed this level.
        ++local.dirty_skips;
        continue;
      }
      const std::vector<NodeId>& nu = pnbr[u];
      if (nu.empty()) {
        marked.erase(key);
        continue;  // Isolated pattern node: trivially matchable.
      }
      std::vector<NodeId> nv = UniqueNeighbors(data, v);
      adj.assign(nu.size(), {});
      for (size_t i = 0; i < nu.size(); ++i) {
        const std::vector<char>& row = in_cand[nu[i]];
        for (size_t j = 0; j < nv.size(); ++j) {
          if (row[nv[j]]) adj[i].push_back(static_cast<int>(j));
        }
      }
      ++local.bipartite_checks;
      if (HasSemiPerfectMatching(static_cast<int>(nu.size()),
                                 static_cast<int>(nv.size()), adj)) {
        marked.erase(key);
        continue;
      }
      // Remove v from candidates[u]; mark affected neighbor pairs.
      in_cand[u][v] = 0;
      marked.erase(key);
      changed = true;
      ++local.removed;
      for (NodeId u2 : pnbr[u]) {
        for (NodeId v2 : nv) {
          if (in_cand[u2][v2]) {
            marked.insert(PairKey(u2, v2));
          }
        }
      }
    }
    if (local.aborted) break;
    if (!changed && use_marking && marked.empty()) break;
    if (!changed && !use_marking) break;
  }

  // Write the surviving candidates back, preserving order.
  for (size_t u = 0; u < k; ++u) {
    std::vector<NodeId>& list = (*candidates)[u];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](NodeId v) { return !in_cand[u][v]; }),
               list.end());
  }

  if (stats != nullptr) {
    stats->bipartite_checks += local.bipartite_checks;
    stats->removed += local.removed;
    stats->dirty_skips += local.dirty_skips;
    stats->levels_run = local.levels_run;
    stats->pairs_charged += local.pairs_charged;
    stats->aborted |= local.aborted;
  }
  if (metrics != nullptr) {
    metrics->GetCounter("match.refine.bipartite_checks")
        ->Increment(local.bipartite_checks);
    metrics->GetCounter("match.refine.removed")->Increment(local.removed);
    metrics->GetCounter("match.refine.dirty_skips")
        ->Increment(local.dirty_skips);
    metrics->GetCounter("match.refine.levels")
        ->Increment(static_cast<uint64_t>(local.levels_run));
  }
}

void RefineSearchSpaceParallel(const algebra::GraphPattern& pattern,
                               const Graph& data, int level,
                               std::vector<std::vector<NodeId>>* candidates,
                               RefineStats* stats, bool use_marking,
                               obs::MetricsRegistry* metrics,
                               ResourceGovernor* governor, int num_threads,
                               ThreadPool* pool, ParallelRefineStats* pstats) {
  int workers = ResolveWorkers(num_threads, pool);
  if (workers <= 0) {
    RefineSearchSpace(pattern, data, level, candidates, stats, use_marking,
                      metrics, governor);
    return;
  }
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  if (k == 0 || level <= 0) return;
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::Shared();
  RefineStats local;

  ScopedReserve bitmap_mem(governor, k * data.NumNodes(), GovernPoint::kRefine);

  std::vector<std::vector<NodeId>> pnbr(k);
  for (size_t u = 0; u < k; ++u) {
    pnbr[u] = UniqueNeighbors(p, static_cast<NodeId>(u));
  }

  // The candidate bitmaps are written only at level barriers by the
  // coordinator; during a level the workers read them concurrently.
  std::vector<std::vector<char>> in_cand(k,
                                         std::vector<char>(data.NumNodes(), 0));
  for (size_t u = 0; u < k; ++u) {
    for (NodeId v : (*candidates)[u]) in_cand[u][v] = 1;
  }

  using MarkedSet =
      std::unordered_set<uint64_t, std::hash<uint64_t>, std::equal_to<uint64_t>,
                         GovernedAllocator<uint64_t>>;
  MarkedSet marked(0, std::hash<uint64_t>(), std::equal_to<uint64_t>(),
                   GovernedAllocator<uint64_t>(governor, GovernPoint::kRefine));
  for (size_t u = 0; u < k; ++u) {
    for (NodeId v : (*candidates)[u]) {
      marked.insert(PairKey(static_cast<NodeId>(u), v));
    }
  }

  struct WorkerState {
    GovernorShard shard;
    std::vector<std::vector<int>> adj;  // Reused bipartite buffer.
    uint64_t bipartite_checks = 0;
  };
  std::vector<WorkerState> ws(static_cast<size_t>(workers));
  for (WorkerState& s : ws) {
    s.shard = GovernorShard(governor, GovernPoint::kRefine);
  }

  uint64_t tasks_stolen = 0;
  int max_workers_seen = 0;
  std::atomic<bool> aborted{false};

  for (int l = 0; l < level; ++l) {
    local.levels_run = l + 1;
    std::vector<uint64_t> todo;
    if (use_marking) {
      todo.assign(marked.begin(), marked.end());
      std::sort(todo.begin(), todo.end());
    } else {
      for (size_t u = 0; u < k; ++u) {
        for (NodeId v : (*candidates)[u]) {
          if (in_cand[u][v]) todo.push_back(PairKey(static_cast<NodeId>(u), v));
        }
      }
    }
    if (todo.empty()) break;

    // Jacobi check phase: every pair is tested against the level-start
    // bitmaps; failing pairs are buffered, never applied in-flight.
    std::vector<char> remove(todo.size(), 0);
    auto check_pair = [&](size_t i, int w) {
      if (aborted.load(std::memory_order_relaxed)) return;
      WorkerState& s = ws[static_cast<size_t>(w)];
      if (!s.shard.Charge()) {
        aborted.store(true, std::memory_order_relaxed);
        return;
      }
      NodeId u = static_cast<NodeId>(todo[i] >> 32);
      NodeId v = static_cast<NodeId>(todo[i] & 0xffffffffu);
      const std::vector<NodeId>& nu = pnbr[u];
      if (nu.empty()) return;  // Isolated pattern node: keep.
      std::vector<NodeId> nv = UniqueNeighbors(data, v);
      s.adj.assign(nu.size(), {});
      for (size_t a = 0; a < nu.size(); ++a) {
        const std::vector<char>& row = in_cand[nu[a]];
        for (size_t b = 0; b < nv.size(); ++b) {
          if (row[nv[b]]) s.adj[a].push_back(static_cast<int>(b));
        }
      }
      ++s.bipartite_checks;
      if (!HasSemiPerfectMatching(static_cast<int>(nu.size()),
                                  static_cast<int>(nv.size()), s.adj)) {
        remove[i] = 1;
      }
    };
    ThreadPool::RunStats run = tp.ParallelFor(todo.size(), workers, check_pair);
    tasks_stolen += run.stolen;
    max_workers_seen = std::max(max_workers_seen, run.workers);

    if (aborted.load(std::memory_order_relaxed)) {
      // The level's verdicts are incomplete: discard them (earlier levels'
      // removals stand and are sound).
      local.aborted = true;
      break;
    }

    // Barrier: apply buffered removals in deterministic pair order and
    // re-mark the neighbors whose bipartite test they can affect.
    bool changed = false;
    for (size_t i = 0; i < todo.size(); ++i) {
      uint64_t key = todo[i];
      NodeId u = static_cast<NodeId>(key >> 32);
      NodeId v = static_cast<NodeId>(key & 0xffffffffu);
      if (!remove[i]) {
        marked.erase(key);
        continue;
      }
      in_cand[u][v] = 0;
      marked.erase(key);
      changed = true;
      ++local.removed;
      std::vector<NodeId> nv = UniqueNeighbors(data, v);
      for (NodeId u2 : pnbr[u]) {
        for (NodeId v2 : nv) {
          if (in_cand[u2][v2]) marked.insert(PairKey(u2, v2));
        }
      }
    }
    if (!changed && use_marking && marked.empty()) break;
    if (!changed && !use_marking) break;
  }

  for (size_t u = 0; u < k; ++u) {
    std::vector<NodeId>& list = (*candidates)[u];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](NodeId v) { return !in_cand[u][v]; }),
               list.end());
  }

  for (WorkerState& s : ws) {
    // A trip surfacing only at this final flush (small workloads never
    // reach an in-stage flush) still aborts the refinement: the pipeline's
    // degrade fallback then restores the snapshot and refunds the charge,
    // matching the serial per-pair cadence.
    if (!s.shard.Flush()) local.aborted = true;
    local.bipartite_checks += s.bipartite_checks;
    local.pairs_charged += s.shard.charged();
  }
  if (pstats != nullptr) {
    pstats->workers = max_workers_seen;
    pstats->tasks_stolen = tasks_stolen;
  }

  if (stats != nullptr) {
    stats->bipartite_checks += local.bipartite_checks;
    stats->removed += local.removed;
    stats->dirty_skips += local.dirty_skips;
    stats->levels_run = local.levels_run;
    stats->pairs_charged += local.pairs_charged;
    stats->aborted |= local.aborted;
  }
  if (metrics != nullptr) {
    metrics->GetCounter("match.refine.bipartite_checks")
        ->Increment(local.bipartite_checks);
    metrics->GetCounter("match.refine.removed")->Increment(local.removed);
    metrics->GetCounter("match.refine.levels")
        ->Increment(static_cast<uint64_t>(local.levels_run));
  }
}

}  // namespace graphql::match
