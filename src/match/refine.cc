#include "match/refine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <unordered_set>

#include "common/packed_bits.h"
#include "graph/snapshot.h"
#include "match/bipartite.h"

namespace graphql::match {

namespace {

uint64_t PairKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

/// Unique undirected neighbor list of a node (parallel edges collapsed;
/// for directed graphs, in- and out-neighbors are merged — this weakens
/// but never unsounds the pruning).
std::vector<NodeId> UniqueNeighbors(const Graph& g, NodeId v) {
  std::vector<NodeId> out;
  out.reserve(g.Degree(v));
  for (const Graph::Adj& a : g.neighbors(v)) out.push_back(a.node);
  if (g.directed()) {
    for (const Graph::Adj& a : g.in_neighbors(v)) out.push_back(a.node);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void FlushRefineStats(const RefineStats& local, RefineStats* stats,
                      obs::MetricsRegistry* metrics) {
  if (stats != nullptr) {
    stats->bipartite_checks += local.bipartite_checks;
    stats->removed += local.removed;
    stats->dirty_skips += local.dirty_skips;
    stats->levels_run = local.levels_run;
    stats->pairs_charged += local.pairs_charged;
    stats->aborted |= local.aborted;
  }
  if (metrics != nullptr) {
    metrics->GetCounter("match.refine.bipartite_checks")
        ->Increment(local.bipartite_checks);
    metrics->GetCounter("match.refine.removed")->Increment(local.removed);
    metrics->GetCounter("match.refine.dirty_skips")
        ->Increment(local.dirty_skips);
    metrics->GetCounter("match.refine.levels")
        ->Increment(static_cast<uint64_t>(local.levels_run));
  }
}

/// Snapshot (packed-bitmap) serial refinement. Decisions and their order
/// are identical to the legacy path: marked pairs drain in ascending
/// (u, v) order (what the legacy sort over PairKeys produces), the
/// no-marking ablation walks candidate-list order against a level-start
/// copy, and neighbor sets come from the snapshot's sorted unique-neighbor
/// spans (the same sorted+deduped lists UniqueNeighbors builds per pair).
void RefineSnapSerial(const algebra::GraphPattern& pattern,
                      const GraphSnapshot& snap, int level,
                      std::vector<std::vector<NodeId>>* candidates,
                      RefineStats* stats, bool use_marking,
                      obs::MetricsRegistry* metrics,
                      ResourceGovernor* governor) {
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  if (k == 0 || level <= 0) return;
  const size_t n = snap.num_nodes();
  RefineStats local;

  PackedBits in_cand(k, n);
  PackedBits marked(k, n);
  PackedBits todo(k, n);  // Level-start copy (marked or in_cand).
  ScopedReserve bitmap_mem(governor,
                           in_cand.bytes() + marked.bytes() + todo.bytes(),
                           GovernPoint::kRefine);

  std::vector<std::vector<NodeId>> pnbr(k);
  for (size_t u = 0; u < k; ++u) {
    pnbr[u] = UniqueNeighbors(p, static_cast<NodeId>(u));
  }

  size_t marked_count = 0;
  for (size_t u = 0; u < k; ++u) {
    for (NodeId v : (*candidates)[u]) {
      in_cand.Set(u, v);
      if (!marked.Test(u, v)) {
        marked.Set(u, v);
        ++marked_count;
      }
    }
  }

  auto clear_mark = [&](size_t u, size_t v) {
    if (marked.Test(u, v)) {
      marked.Clear(u, v);
      --marked_count;
    }
  };

  std::vector<std::vector<int>> adj;  // Reused bipartite adjacency buffer.
  bool changed = false;
  // Returns false to stop the level (governor trip).
  auto process = [&](NodeId u, NodeId v) {
    ++local.pairs_charged;
    if (!GovCharge(governor, 1, GovernPoint::kRefine)) {
      local.aborted = true;
      return false;
    }
    if (!in_cand.Test(u, v)) {  // Already removed this level.
      ++local.dirty_skips;
      return true;
    }
    const std::vector<NodeId>& nu = pnbr[u];
    if (nu.empty()) {
      clear_mark(u, v);
      return true;  // Isolated pattern node: trivially matchable.
    }
    std::span<const NodeId> nv = snap.unique_neighbors(v);
    adj.assign(nu.size(), {});
    for (size_t i = 0; i < nu.size(); ++i) {
      for (size_t j = 0; j < nv.size(); ++j) {
        if (in_cand.Test(nu[i], nv[j])) adj[i].push_back(static_cast<int>(j));
      }
    }
    ++local.bipartite_checks;
    if (HasSemiPerfectMatching(static_cast<int>(nu.size()),
                               static_cast<int>(nv.size()), adj)) {
      clear_mark(u, v);
      return true;
    }
    in_cand.Clear(u, v);
    clear_mark(u, v);
    changed = true;
    ++local.removed;
    for (NodeId u2 : nu) {
      for (NodeId v2 : nv) {
        if (in_cand.Test(u2, v2) && !marked.Test(u2, v2)) {
          marked.Set(u2, v2);
          ++marked_count;
        }
      }
    }
    return true;
  };

  for (int l = 0; l < level; ++l) {
    local.levels_run = l + 1;
    changed = false;
    if (use_marking) {
      if (marked_count == 0) break;
      todo.CopyFrom(marked);
      for (size_t u = 0; u < k && !local.aborted; ++u) {
        todo.ForEachInRow(u, [&](size_t v) {
          return process(static_cast<NodeId>(u), static_cast<NodeId>(v));
        });
      }
    } else {
      todo.CopyFrom(in_cand);
      bool any = false;
      for (size_t u = 0; u < k && !local.aborted; ++u) {
        for (NodeId v : (*candidates)[u]) {
          if (!todo.Test(u, v)) continue;
          any = true;
          if (!process(static_cast<NodeId>(u), v)) break;
        }
      }
      if (!any) break;
    }
    if (local.aborted) break;
    if (!changed && use_marking && marked_count == 0) break;
    if (!changed && !use_marking) break;
  }

  // Write the surviving candidates back, preserving order.
  for (size_t u = 0; u < k; ++u) {
    std::vector<NodeId>& list = (*candidates)[u];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](NodeId v) { return !in_cand.Test(u, v); }),
               list.end());
  }

  if (metrics != nullptr) {
    metrics->GetCounter("match.refine.snapshot_passes")->Increment();
  }
  FlushRefineStats(local, stats, metrics);
}

}  // namespace

void RefineSearchSpace(const algebra::GraphPattern& pattern, const Graph& data,
                       int level, std::vector<std::vector<NodeId>>* candidates,
                       RefineStats* stats, bool use_marking,
                       obs::MetricsRegistry* metrics,
                       ResourceGovernor* governor, const GraphSnapshot* snap) {
  if (snap != nullptr) {
    RefineSnapSerial(pattern, *snap, level, candidates, stats, use_marking,
                     metrics, governor);
    return;
  }
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  if (k == 0 || level <= 0) return;
  RefineStats local;  // Counted unconditionally; flushed once at the end.

  // The k x n membership bitmaps are the big transient structure here.
  ScopedReserve bitmap_mem(governor, k * data.NumNodes(), GovernPoint::kRefine);

  // Pattern neighbor lists (tiny, precompute once).
  std::vector<std::vector<NodeId>> pnbr(k);
  for (size_t u = 0; u < k; ++u) {
    pnbr[u] = UniqueNeighbors(p, static_cast<NodeId>(u));
  }

  // Membership bitmaps: in_cand[u][v] == 1 iff v in candidates[u]. The
  // hashed pair bookkeeping below implements the paper's second
  // improvement (no k x n matrix is materialized for the marks).
  std::vector<std::vector<char>> in_cand(k,
                                         std::vector<char>(data.NumNodes(), 0));
  for (size_t u = 0; u < k; ++u) {
    for (NodeId v : (*candidates)[u]) in_cand[u][v] = 1;
  }

  // The marked-pair set grows with the dirty frontier; route its
  // allocations through the governor's accounting allocator.
  using MarkedSet =
      std::unordered_set<uint64_t, std::hash<uint64_t>, std::equal_to<uint64_t>,
                         GovernedAllocator<uint64_t>>;
  MarkedSet marked(0, std::hash<uint64_t>(), std::equal_to<uint64_t>(),
                   GovernedAllocator<uint64_t>(governor, GovernPoint::kRefine));
  for (size_t u = 0; u < k; ++u) {
    for (NodeId v : (*candidates)[u]) marked.insert(PairKey(static_cast<NodeId>(u), v));
  }

  std::vector<std::vector<int>> adj;  // Reused bipartite adjacency buffer.
  for (int l = 0; l < level; ++l) {
    local.levels_run = l + 1;
    std::vector<uint64_t> todo;
    if (use_marking) {
      todo.assign(marked.begin(), marked.end());
      // Deterministic processing order regardless of hash iteration.
      std::sort(todo.begin(), todo.end());
    } else {
      for (size_t u = 0; u < k; ++u) {
        for (NodeId v : (*candidates)[u]) {
          if (in_cand[u][v]) todo.push_back(PairKey(static_cast<NodeId>(u), v));
        }
      }
    }
    if (todo.empty()) break;
    bool changed = false;

    for (uint64_t key : todo) {
      ++local.pairs_charged;
      if (!GovCharge(governor, 1, GovernPoint::kRefine)) {
        local.aborted = true;
        break;
      }
      NodeId u = static_cast<NodeId>(key >> 32);
      NodeId v = static_cast<NodeId>(key & 0xffffffffu);
      if (!in_cand[u][v]) {  // Already removed this level.
        ++local.dirty_skips;
        continue;
      }
      const std::vector<NodeId>& nu = pnbr[u];
      if (nu.empty()) {
        marked.erase(key);
        continue;  // Isolated pattern node: trivially matchable.
      }
      std::vector<NodeId> nv = UniqueNeighbors(data, v);
      adj.assign(nu.size(), {});
      for (size_t i = 0; i < nu.size(); ++i) {
        const std::vector<char>& row = in_cand[nu[i]];
        for (size_t j = 0; j < nv.size(); ++j) {
          if (row[nv[j]]) adj[i].push_back(static_cast<int>(j));
        }
      }
      ++local.bipartite_checks;
      if (HasSemiPerfectMatching(static_cast<int>(nu.size()),
                                 static_cast<int>(nv.size()), adj)) {
        marked.erase(key);
        continue;
      }
      // Remove v from candidates[u]; mark affected neighbor pairs.
      in_cand[u][v] = 0;
      marked.erase(key);
      changed = true;
      ++local.removed;
      for (NodeId u2 : pnbr[u]) {
        for (NodeId v2 : nv) {
          if (in_cand[u2][v2]) {
            marked.insert(PairKey(u2, v2));
          }
        }
      }
    }
    if (local.aborted) break;
    if (!changed && use_marking && marked.empty()) break;
    if (!changed && !use_marking) break;
  }

  // Write the surviving candidates back, preserving order.
  for (size_t u = 0; u < k; ++u) {
    std::vector<NodeId>& list = (*candidates)[u];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](NodeId v) { return !in_cand[u][v]; }),
               list.end());
  }

  if (stats != nullptr) {
    stats->bipartite_checks += local.bipartite_checks;
    stats->removed += local.removed;
    stats->dirty_skips += local.dirty_skips;
    stats->levels_run = local.levels_run;
    stats->pairs_charged += local.pairs_charged;
    stats->aborted |= local.aborted;
  }
  if (metrics != nullptr) {
    metrics->GetCounter("match.refine.bipartite_checks")
        ->Increment(local.bipartite_checks);
    metrics->GetCounter("match.refine.removed")->Increment(local.removed);
    metrics->GetCounter("match.refine.dirty_skips")
        ->Increment(local.dirty_skips);
    metrics->GetCounter("match.refine.levels")
        ->Increment(static_cast<uint64_t>(local.levels_run));
  }
}

namespace {

/// Snapshot (packed-bitmap) parallel refinement: the same Jacobi
/// level-barrier scheme as the legacy parallel path, with the byte bitmap
/// and hashed marked set replaced by bit matrices and per-pair neighbor
/// lists replaced by snapshot spans. The todo vector (needed to index the
/// fan-out) is built by draining the marked bitmap in ascending (u, v)
/// order — the order the legacy path gets by sorting.
void RefineSnapParallel(const algebra::GraphPattern& pattern,
                        const GraphSnapshot& snap, int level,
                        std::vector<std::vector<NodeId>>* candidates,
                        RefineStats* stats, bool use_marking,
                        obs::MetricsRegistry* metrics,
                        ResourceGovernor* governor, int workers,
                        ThreadPool& tp, ParallelRefineStats* pstats) {
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  if (k == 0 || level <= 0) return;
  const size_t n = snap.num_nodes();
  RefineStats local;

  PackedBits in_cand(k, n);
  PackedBits marked(k, n);
  ScopedReserve bitmap_mem(governor, in_cand.bytes() + marked.bytes(),
                           GovernPoint::kRefine);

  std::vector<std::vector<NodeId>> pnbr(k);
  for (size_t u = 0; u < k; ++u) {
    pnbr[u] = UniqueNeighbors(p, static_cast<NodeId>(u));
  }

  size_t marked_count = 0;
  for (size_t u = 0; u < k; ++u) {
    for (NodeId v : (*candidates)[u]) {
      in_cand.Set(u, v);
      if (!marked.Test(u, v)) {
        marked.Set(u, v);
        ++marked_count;
      }
    }
  }

  struct WorkerState {
    GovernorShard shard;
    std::vector<std::vector<int>> adj;  // Reused bipartite buffer.
    uint64_t bipartite_checks = 0;
  };
  std::vector<WorkerState> ws(static_cast<size_t>(workers));
  for (WorkerState& s : ws) {
    s.shard = GovernorShard(governor, GovernPoint::kRefine);
  }

  uint64_t tasks_stolen = 0;
  int max_workers_seen = 0;
  std::vector<ThreadPool::WorkerLane> lanes;
  std::atomic<bool> aborted{false};

  for (int l = 0; l < level; ++l) {
    local.levels_run = l + 1;
    std::vector<uint64_t> todo;
    if (use_marking) {
      todo.reserve(marked_count);
      for (size_t u = 0; u < k; ++u) {
        marked.ForEachInRow(u, [&](size_t v) {
          todo.push_back(PairKey(static_cast<NodeId>(u),
                                 static_cast<NodeId>(v)));
          return true;
        });
      }
    } else {
      for (size_t u = 0; u < k; ++u) {
        for (NodeId v : (*candidates)[u]) {
          if (in_cand.Test(u, v)) {
            todo.push_back(PairKey(static_cast<NodeId>(u), v));
          }
        }
      }
    }
    if (todo.empty()) break;

    std::vector<char> remove(todo.size(), 0);
    // The materialized worklist and verdict buffer are the level's real
    // transient allocations (up to k*n pairs); charge them so a memory
    // budget smaller than the refinement state trips here, not only at
    // the bitmap reserve above. Released at the level barrier.
    ScopedReserve level_mem(governor,
                            todo.size() * sizeof(uint64_t) + remove.size(),
                            GovernPoint::kRefine);
    auto check_pair = [&](size_t i, int w) {
      if (aborted.load(std::memory_order_relaxed)) return;
      WorkerState& s = ws[static_cast<size_t>(w)];
      if (!s.shard.Charge()) {
        aborted.store(true, std::memory_order_relaxed);
        return;
      }
      NodeId u = static_cast<NodeId>(todo[i] >> 32);
      NodeId v = static_cast<NodeId>(todo[i] & 0xffffffffu);
      const std::vector<NodeId>& nu = pnbr[u];
      if (nu.empty()) return;  // Isolated pattern node: keep.
      std::span<const NodeId> nv = snap.unique_neighbors(v);
      s.adj.assign(nu.size(), {});
      for (size_t a = 0; a < nu.size(); ++a) {
        for (size_t b = 0; b < nv.size(); ++b) {
          if (in_cand.Test(nu[a], nv[b])) {
            s.adj[a].push_back(static_cast<int>(b));
          }
        }
      }
      ++s.bipartite_checks;
      if (!HasSemiPerfectMatching(static_cast<int>(nu.size()),
                                  static_cast<int>(nv.size()), s.adj)) {
        remove[i] = 1;
      }
    };
    ThreadPool::RunStats run = tp.ParallelFor(todo.size(), workers, check_pair);
    tasks_stolen += run.stolen;
    max_workers_seen = std::max(max_workers_seen, run.workers);
    MergeWorkerLanes(&lanes, run.lanes);

    if (aborted.load(std::memory_order_relaxed)) {
      local.aborted = true;
      break;
    }

    bool changed = false;
    for (size_t i = 0; i < todo.size(); ++i) {
      NodeId u = static_cast<NodeId>(todo[i] >> 32);
      NodeId v = static_cast<NodeId>(todo[i] & 0xffffffffu);
      if (marked.Test(u, v)) {
        marked.Clear(u, v);
        --marked_count;
      }
      if (!remove[i]) continue;
      in_cand.Clear(u, v);
      changed = true;
      ++local.removed;
      for (NodeId u2 : pnbr[u]) {
        for (NodeId v2 : snap.unique_neighbors(v)) {
          if (in_cand.Test(u2, v2) && !marked.Test(u2, v2)) {
            marked.Set(u2, v2);
            ++marked_count;
          }
        }
      }
    }
    if (!changed && use_marking && marked_count == 0) break;
    if (!changed && !use_marking) break;
  }

  for (size_t u = 0; u < k; ++u) {
    std::vector<NodeId>& list = (*candidates)[u];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](NodeId v) { return !in_cand.Test(u, v); }),
               list.end());
  }

  for (WorkerState& s : ws) {
    if (!s.shard.Flush()) local.aborted = true;
    local.bipartite_checks += s.bipartite_checks;
    local.pairs_charged += s.shard.charged();
  }
  if (pstats != nullptr) {
    pstats->workers = max_workers_seen;
    pstats->tasks_stolen = tasks_stolen;
    pstats->lanes = std::move(lanes);
  }
  if (metrics != nullptr) {
    metrics->GetCounter("match.refine.snapshot_passes")->Increment();
  }
  FlushRefineStats(local, stats, metrics);
}

}  // namespace

void RefineSearchSpaceParallel(const algebra::GraphPattern& pattern,
                               const Graph& data, int level,
                               std::vector<std::vector<NodeId>>* candidates,
                               RefineStats* stats, bool use_marking,
                               obs::MetricsRegistry* metrics,
                               ResourceGovernor* governor, int num_threads,
                               ThreadPool* pool, ParallelRefineStats* pstats,
                               const GraphSnapshot* snap) {
  int workers = ResolveWorkers(num_threads, pool);
  if (workers <= 0) {
    RefineSearchSpace(pattern, data, level, candidates, stats, use_marking,
                      metrics, governor, snap);
    return;
  }
  if (snap != nullptr) {
    ThreadPool& stp = pool != nullptr ? *pool : ThreadPool::Shared();
    RefineSnapParallel(pattern, *snap, level, candidates, stats, use_marking,
                       metrics, governor, workers, stp, pstats);
    return;
  }
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  if (k == 0 || level <= 0) return;
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::Shared();
  RefineStats local;

  ScopedReserve bitmap_mem(governor, k * data.NumNodes(), GovernPoint::kRefine);

  std::vector<std::vector<NodeId>> pnbr(k);
  for (size_t u = 0; u < k; ++u) {
    pnbr[u] = UniqueNeighbors(p, static_cast<NodeId>(u));
  }

  // The candidate bitmaps are written only at level barriers by the
  // coordinator; during a level the workers read them concurrently.
  std::vector<std::vector<char>> in_cand(k,
                                         std::vector<char>(data.NumNodes(), 0));
  for (size_t u = 0; u < k; ++u) {
    for (NodeId v : (*candidates)[u]) in_cand[u][v] = 1;
  }

  using MarkedSet =
      std::unordered_set<uint64_t, std::hash<uint64_t>, std::equal_to<uint64_t>,
                         GovernedAllocator<uint64_t>>;
  MarkedSet marked(0, std::hash<uint64_t>(), std::equal_to<uint64_t>(),
                   GovernedAllocator<uint64_t>(governor, GovernPoint::kRefine));
  for (size_t u = 0; u < k; ++u) {
    for (NodeId v : (*candidates)[u]) {
      marked.insert(PairKey(static_cast<NodeId>(u), v));
    }
  }

  struct WorkerState {
    GovernorShard shard;
    std::vector<std::vector<int>> adj;  // Reused bipartite buffer.
    uint64_t bipartite_checks = 0;
  };
  std::vector<WorkerState> ws(static_cast<size_t>(workers));
  for (WorkerState& s : ws) {
    s.shard = GovernorShard(governor, GovernPoint::kRefine);
  }

  uint64_t tasks_stolen = 0;
  int max_workers_seen = 0;
  std::vector<ThreadPool::WorkerLane> lanes;
  std::atomic<bool> aborted{false};

  for (int l = 0; l < level; ++l) {
    local.levels_run = l + 1;
    std::vector<uint64_t> todo;
    if (use_marking) {
      todo.assign(marked.begin(), marked.end());
      std::sort(todo.begin(), todo.end());
    } else {
      for (size_t u = 0; u < k; ++u) {
        for (NodeId v : (*candidates)[u]) {
          if (in_cand[u][v]) todo.push_back(PairKey(static_cast<NodeId>(u), v));
        }
      }
    }
    if (todo.empty()) break;

    // Jacobi check phase: every pair is tested against the level-start
    // bitmaps; failing pairs are buffered, never applied in-flight.
    std::vector<char> remove(todo.size(), 0);
    // Charge the level's worklist and verdict buffers (mirrors the
    // snapshot parallel path); released at the level barrier.
    ScopedReserve level_mem(governor,
                            todo.size() * sizeof(uint64_t) + remove.size(),
                            GovernPoint::kRefine);
    auto check_pair = [&](size_t i, int w) {
      if (aborted.load(std::memory_order_relaxed)) return;
      WorkerState& s = ws[static_cast<size_t>(w)];
      if (!s.shard.Charge()) {
        aborted.store(true, std::memory_order_relaxed);
        return;
      }
      NodeId u = static_cast<NodeId>(todo[i] >> 32);
      NodeId v = static_cast<NodeId>(todo[i] & 0xffffffffu);
      const std::vector<NodeId>& nu = pnbr[u];
      if (nu.empty()) return;  // Isolated pattern node: keep.
      std::vector<NodeId> nv = UniqueNeighbors(data, v);
      s.adj.assign(nu.size(), {});
      for (size_t a = 0; a < nu.size(); ++a) {
        const std::vector<char>& row = in_cand[nu[a]];
        for (size_t b = 0; b < nv.size(); ++b) {
          if (row[nv[b]]) s.adj[a].push_back(static_cast<int>(b));
        }
      }
      ++s.bipartite_checks;
      if (!HasSemiPerfectMatching(static_cast<int>(nu.size()),
                                  static_cast<int>(nv.size()), s.adj)) {
        remove[i] = 1;
      }
    };
    ThreadPool::RunStats run = tp.ParallelFor(todo.size(), workers, check_pair);
    tasks_stolen += run.stolen;
    max_workers_seen = std::max(max_workers_seen, run.workers);
    MergeWorkerLanes(&lanes, run.lanes);

    if (aborted.load(std::memory_order_relaxed)) {
      // The level's verdicts are incomplete: discard them (earlier levels'
      // removals stand and are sound).
      local.aborted = true;
      break;
    }

    // Barrier: apply buffered removals in deterministic pair order and
    // re-mark the neighbors whose bipartite test they can affect.
    bool changed = false;
    for (size_t i = 0; i < todo.size(); ++i) {
      uint64_t key = todo[i];
      NodeId u = static_cast<NodeId>(key >> 32);
      NodeId v = static_cast<NodeId>(key & 0xffffffffu);
      if (!remove[i]) {
        marked.erase(key);
        continue;
      }
      in_cand[u][v] = 0;
      marked.erase(key);
      changed = true;
      ++local.removed;
      std::vector<NodeId> nv = UniqueNeighbors(data, v);
      for (NodeId u2 : pnbr[u]) {
        for (NodeId v2 : nv) {
          if (in_cand[u2][v2]) marked.insert(PairKey(u2, v2));
        }
      }
    }
    if (!changed && use_marking && marked.empty()) break;
    if (!changed && !use_marking) break;
  }

  for (size_t u = 0; u < k; ++u) {
    std::vector<NodeId>& list = (*candidates)[u];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](NodeId v) { return !in_cand[u][v]; }),
               list.end());
  }

  for (WorkerState& s : ws) {
    // A trip surfacing only at this final flush (small workloads never
    // reach an in-stage flush) still aborts the refinement: the pipeline's
    // degrade fallback then restores the snapshot and refunds the charge,
    // matching the serial per-pair cadence.
    if (!s.shard.Flush()) local.aborted = true;
    local.bipartite_checks += s.bipartite_checks;
    local.pairs_charged += s.shard.charged();
  }
  if (pstats != nullptr) {
    pstats->workers = max_workers_seen;
    pstats->tasks_stolen = tasks_stolen;
    pstats->lanes = std::move(lanes);
  }

  if (stats != nullptr) {
    stats->bipartite_checks += local.bipartite_checks;
    stats->removed += local.removed;
    stats->dirty_skips += local.dirty_skips;
    stats->levels_run = local.levels_run;
    stats->pairs_charged += local.pairs_charged;
    stats->aborted |= local.aborted;
  }
  if (metrics != nullptr) {
    metrics->GetCounter("match.refine.bipartite_checks")
        ->Increment(local.bipartite_checks);
    metrics->GetCounter("match.refine.removed")->Increment(local.removed);
    metrics->GetCounter("match.refine.levels")
        ->Increment(static_cast<uint64_t>(local.levels_run));
  }
}

}  // namespace graphql::match
