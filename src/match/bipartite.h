#ifndef GRAPHQL_MATCH_BIPARTITE_H_
#define GRAPHQL_MATCH_BIPARTITE_H_

#include <vector>

namespace graphql::match {

/// Maximum bipartite matching via Hopcroft–Karp (O(E * sqrt(V)), the
/// algorithm the paper cites for the refinement step).
///
/// `adj[l]` lists the right-side vertices adjacent to left vertex l.
/// Returns the size of a maximum matching.
int MaxBipartiteMatching(int n_left, int n_right,
                         const std::vector<std::vector<int>>& adj);

/// True if a semi-perfect matching exists: every left vertex matched
/// (the condition of Algorithm 4.2 / pseudo subgraph isomorphism).
bool HasSemiPerfectMatching(int n_left, int n_right,
                            const std::vector<std::vector<int>>& adj);

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_BIPARTITE_H_
