#include "match/matcher.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "graph/snapshot.h"

namespace graphql::match {

namespace {

/// Shared DFS engine behind both SearchMatches entry points.
class SearchEngine {
 public:
  SearchEngine(const algebra::GraphPattern& pattern, const Graph& data,
               const std::vector<std::vector<NodeId>>& candidates,
               const std::vector<NodeId>& order, const MatchOptions& options,
               const std::function<bool(const algebra::MatchedGraph&)>& sink,
               SearchStats* stats, obs::MetricsRegistry* metrics)
      : pattern_(pattern),
        p_(pattern.graph()),
        data_(data),
        snap_(options.snapshot),
        candidates_(candidates),
        order_(order),
        options_(options),
        sink_(&sink),
        stats_(stats),
        metrics_(metrics) {
    assign_.assign(p_.NumNodes(), kInvalidNode);
    edge_assign_.assign(p_.NumEdges(), kInvalidEdge);
    used_.assign(data.NumNodes(), 0);
    position_.assign(p_.NumNodes(), -1);
    for (size_t i = 0; i < order_.size(); ++i) position_[order_[i]] = static_cast<int>(i);

    // Per order position, the pattern edges whose other endpoint is mapped
    // earlier; checked when this position is assigned.
    back_edges_.resize(order_.size());
    for (size_t e = 0; e < p_.NumEdges(); ++e) {
      const Graph::Edge& pe = p_.edge(static_cast<EdgeId>(e));
      int ps = position_[pe.src];
      int pd = position_[pe.dst];
      int later = std::max(ps, pd);
      back_edges_[later].push_back(static_cast<EdgeId>(e));
    }
    // An edge is trivial when it carries no constraint beyond existence.
    trivial_edge_.resize(p_.NumEdges());
    for (size_t e = 0; e < p_.NumEdges(); ++e) {
      const Graph::Edge& pe = p_.edge(static_cast<EdgeId>(e));
      trivial_edge_[e] =
          pe.attrs.empty() && !pattern.EdgeHasPredicates(static_cast<EdgeId>(e));
    }
  }

  Status Run() {
    if (order_.size() != p_.NumNodes()) {
      return Status::InvalidArgument("search order must cover every pattern node");
    }
    if (p_.NumNodes() == 0) return Status::OK();
    Dfs(0);
    Flush();
    return status_;
  }

  /// Parallel-mode plumbing: charge through a worker's governor shard and
  /// evaluate edge predicates through its private pattern scratch, so the
  /// engine never touches thread-unsafe shared state.
  void set_shard(GovernorShard* shard) { shard_ = shard; }
  void set_scratch(algebra::PatternScratch* scratch) { scratch_ = scratch; }

  /// Explores one pinned root: order[0] is mapped to `root` only, matches
  /// stream to `sink`. Match/status state resets per call; counters keep
  /// accumulating across calls (one Flush per engine when the worker's
  /// batch ends).
  Status RunRoot(NodeId root,
                 const std::function<bool(const algebra::MatchedGraph&)>& sink) {
    sink_ = &sink;
    matches_ = 0;
    status_ = Status::OK();
    pinned_root_ = root;
    Dfs(0);
    pinned_root_ = kInvalidNode;
    return status_;
  }

  /// Counters accumulate in `local_` during the DFS (register increments,
  /// no sharing); one flush at the end feeds the caller's stats and the
  /// metrics registry. Run() flushes itself; RunRoot callers flush once
  /// per engine after their last root.
  void Flush() {
    if (stats_ != nullptr) {
      stats_->steps += local_.steps;
      stats_->edge_checks += local_.edge_checks;
      stats_->backtracks += local_.backtracks;
      stats_->budget_exhausted |= local_.budget_exhausted;
      stats_->truncated |= local_.truncated;
      stats_->governor_tripped |= local_.governor_tripped;
    }
    if (metrics_ != nullptr) {
      metrics_->GetCounter("match.search.steps")->Increment(local_.steps);
      metrics_->GetCounter("match.search.edge_checks")
          ->Increment(local_.edge_checks);
      metrics_->GetCounter("match.search.backtracks")
          ->Increment(local_.backtracks);
      metrics_->GetCounter("match.search.matches")->Increment(emitted_);
      if (local_.budget_exhausted) {
        metrics_->GetCounter("match.search.budget_exhausted")->Increment();
      }
      if (local_.truncated) {
        metrics_->GetCounter("match.search.truncated")->Increment();
      }
      if (local_csr_probes_ != 0) {
        metrics_->GetCounter("match.search.csr_edge_probes")
            ->Increment(local_csr_probes_);
        local_csr_probes_ = 0;
      }
    }
  }

 private:
  bool Budget() {
    if (options_.max_steps != 0 && local_.steps >= options_.max_steps) {
      local_.budget_exhausted = true;
      return false;
    }
    if (shard_ != nullptr) {
      if (!shard_->Charge()) {
        local_.governor_tripped = true;
        return false;
      }
      return true;
    }
    if (options_.governor != nullptr &&
        !options_.governor->Charge(1, GovernPoint::kSearch)) {
      local_.governor_tripped = true;
      return false;
    }
    return true;
  }

  /// Finds a data edge between v and w compatible with pattern edge pe
  /// (direction-aware for directed graphs). kInvalidEdge if none.
  EdgeId FindCompatibleEdge(EdgeId pe, NodeId from, NodeId to) {
    if (snap_ != nullptr) return FindCompatibleEdgeSnap(pe, from, to);
    // Scan the smaller adjacency; for undirected graphs both lists carry
    // the edge.
    const std::vector<Graph::Adj>* list = &data_.neighbors(from);
    NodeId want = to;
    if (!data_.directed() && data_.Degree(to) < list->size()) {
      list = &data_.neighbors(to);
      want = from;
    }
    for (const Graph::Adj& a : *list) {
      if (a.node != want) continue;
      if (data_.directed()) {
        // neighbors() lists outgoing edges of `from`; direction holds.
      }
      bool compatible = scratch_ != nullptr
                            ? pattern_.EdgeCompatible(pe, data_, a.edge, scratch_)
                            : pattern_.EdgeCompatible(pe, data_, a.edge);
      if (compatible) return a.edge;
    }
    return kInvalidEdge;
  }

  /// Snapshot variant: the (from, to) run in the CSR is contiguous and
  /// ascending in edge id — exactly the edge-id order the legacy adjacency
  /// scan visits parallel edges in — so the first compatible edge is the
  /// same edge. The pattern edge's interned tag prefilters the run without
  /// touching strings.
  EdgeId FindCompatibleEdgeSnap(EdgeId pe, NodeId from, NodeId to) {
    SymbolId want_tag = pattern_.edge_tag_sym(pe);
    for (const GraphSnapshot::AdjEntry& a : snap_->EdgesBetween(from, to)) {
      ++local_csr_probes_;
      if (want_tag != kNoSymbol && a.tag_sym != want_tag) continue;
      bool compatible =
          scratch_ != nullptr
              ? pattern_.EdgeCompatible(pe, *snap_, data_, a.edge, scratch_)
              : pattern_.EdgeCompatible(pe, *snap_, data_, a.edge);
      if (compatible) return a.edge;
    }
    return kInvalidEdge;
  }

  /// Check(u_i, v) of Algorithm 4.1: every pattern edge into the mapped
  /// prefix must have a compatible data edge.
  bool Check(size_t pos, NodeId u, NodeId v) {
    for (EdgeId pe : back_edges_[pos]) {
      const Graph::Edge& e = p_.edge(pe);
      NodeId other = e.src == u ? e.dst : e.src;
      NodeId mapped = assign_[other];
      // Direction: the data edge must run the same way as the pattern edge.
      NodeId from = e.src == u ? v : mapped;
      NodeId to = e.dst == u ? v : mapped;
      if (e.src == u && e.dst == u) {  // Self-loop.
        from = v;
        to = v;
      }
      ++local_.edge_checks;
      bool exists = snap_ != nullptr ? snap_->HasEdgeBetween(from, to)
                                     : data_.HasEdgeBetween(from, to);
      if (!exists) return false;
      if (trivial_edge_[pe]) {
        edge_assign_[pe] = kInvalidEdge;  // Resolved lazily on emit.
        continue;
      }
      EdgeId de = FindCompatibleEdge(pe, from, to);
      if (de == kInvalidEdge) return false;
      edge_assign_[pe] = de;
    }
    return true;
  }

  bool Emit() {
    algebra::MatchedGraph m;
    m.pattern = &pattern_;
    m.data = &data_;
    m.node_mapping = assign_;
    m.edge_mapping = edge_assign_;
    for (size_t e = 0; e < p_.NumEdges(); ++e) {
      if (m.edge_mapping[e] == kInvalidEdge) {
        const Graph::Edge& pe = p_.edge(static_cast<EdgeId>(e));
        // FindFirstEdge returns the lowest edge id in the (u, v) run —
        // the same edge the adjacency-order FindEdge scan yields.
        m.edge_mapping[e] =
            snap_ != nullptr
                ? snap_->FindFirstEdge(assign_[pe.src], assign_[pe.dst])
                : data_.FindEdge(assign_[pe.src], assign_[pe.dst]);
      }
    }
    ++matches_;
    ++emitted_;
    // Account the emitted mapping vectors against the memory budget; the
    // reservation lives until the governor is re-armed (matches belong to
    // the query's transient result set).
    size_t match_bytes = m.node_mapping.size() * sizeof(NodeId) +
                         m.edge_mapping.size() * sizeof(EdgeId);
    if (shard_ != nullptr) {
      shard_->Reserve(match_bytes);
    } else if (options_.governor != nullptr) {
      options_.governor->Reserve(match_bytes, GovernPoint::kSearch);
    }
    if (!(*sink_)(m)) return false;
    if (!options_.exhaustive) return false;
    if (matches_ >= options_.max_matches) {
      local_.truncated = true;
      return false;
    }
    return true;
  }

  /// Returns false to abort the whole search (budget/limit/sink).
  bool Dfs(size_t pos) {
    if (pos == order_.size()) {
      if (pattern_.has_global_pred()) {
        Result<bool> ok =
            pattern_.EvalGlobalPred(data_, assign_, edge_assign_);
        if (!ok.ok()) {
          status_ = ok.status();
          return false;
        }
        if (!ok.value()) return true;
      }
      return Emit();
    }
    NodeId u = order_[pos];
    // A pinned root replaces Phi(order[0]) with one candidate (parallel
    // fan-out); deeper levels always draw from the full candidate lists.
    const NodeId* begin = candidates_[u].data();
    const NodeId* end = begin + candidates_[u].size();
    if (pos == 0 && pinned_root_ != kInvalidNode) {
      begin = &pinned_root_;
      end = begin + 1;
    }
    for (const NodeId* it = begin; it != end; ++it) {
      NodeId v = *it;
      if (used_[v]) continue;
      ++local_.steps;
      if (!Budget()) return false;
      if (!Check(pos, u, v)) continue;
      assign_[u] = v;
      used_[v] = 1;
      bool keep_going = Dfs(pos + 1);
      used_[v] = 0;
      assign_[u] = kInvalidNode;
      ++local_.backtracks;
      if (!keep_going) return false;
    }
    return true;
  }

  const algebra::GraphPattern& pattern_;
  const Graph& p_;
  const Graph& data_;
  const GraphSnapshot* snap_;
  const std::vector<std::vector<NodeId>>& candidates_;
  const std::vector<NodeId>& order_;
  const MatchOptions& options_;
  const std::function<bool(const algebra::MatchedGraph&)>* sink_;
  SearchStats* stats_;
  obs::MetricsRegistry* metrics_;
  GovernorShard* shard_ = nullptr;
  algebra::PatternScratch* scratch_ = nullptr;
  NodeId pinned_root_ = kInvalidNode;

  std::vector<NodeId> assign_;
  std::vector<EdgeId> edge_assign_;
  std::vector<char> used_;
  std::vector<int> position_;
  std::vector<std::vector<EdgeId>> back_edges_;
  std::vector<char> trivial_edge_;
  SearchStats local_;
  uint64_t local_csr_probes_ = 0;  ///< Snapshot edge-run entries examined.
  size_t matches_ = 0;   ///< Matches this run (reset per pinned root).
  size_t emitted_ = 0;   ///< Matches across the engine's lifetime.
  Status status_;
};

}  // namespace

Result<std::vector<algebra::MatchedGraph>> SearchMatches(
    const algebra::GraphPattern& pattern, const Graph& data,
    const std::vector<std::vector<NodeId>>& candidates,
    const std::vector<NodeId>& order, const MatchOptions& options,
    SearchStats* stats, obs::MetricsRegistry* metrics) {
  std::vector<algebra::MatchedGraph> out;
  auto sink = [&out](const algebra::MatchedGraph& m) {
    out.push_back(m);
    return true;
  };
  GQL_RETURN_IF_ERROR(SearchMatchesStreaming(pattern, data, candidates, order,
                                             options, sink, stats, metrics));
  return out;
}

Status SearchMatchesStreaming(
    const algebra::GraphPattern& pattern, const Graph& data,
    const std::vector<std::vector<NodeId>>& candidates,
    const std::vector<NodeId>& order, const MatchOptions& options,
    const std::function<bool(const algebra::MatchedGraph&)>& sink,
    SearchStats* stats, obs::MetricsRegistry* metrics) {
  SearchEngine engine(pattern, data, candidates, order, options, sink, stats,
                      metrics);
  return engine.Run();
}

Result<std::vector<algebra::MatchedGraph>> SearchMatchesParallel(
    const algebra::GraphPattern& pattern, const Graph& data,
    const std::vector<std::vector<NodeId>>& candidates,
    const std::vector<NodeId>& order, const MatchOptions& options,
    int num_threads, ThreadPool* pool, SearchStats* stats,
    obs::MetricsRegistry* metrics, ParallelSearchStats* pstats) {
  int workers = ResolveWorkers(num_threads, pool);
  // The local step budget counts candidate tries in global DFS order — a
  // per-root split cannot reproduce where it stops, so that knob stays on
  // the serial path.
  if (workers <= 0 || options.max_steps != 0 ||
      pattern.graph().NumNodes() == 0 ||
      order.size() != pattern.graph().NumNodes()) {
    return SearchMatches(pattern, data, candidates, order, options, stats,
                         metrics);
  }
  const std::vector<NodeId>& roots = candidates[order[0]];
  if (roots.empty()) return std::vector<algebra::MatchedGraph>{};
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::Shared();

  const size_t n = roots.size();
  std::vector<std::vector<algebra::MatchedGraph>> per_root(n);
  std::vector<Status> per_status(n, Status::OK());

  struct WorkerState {
    std::unique_ptr<SearchEngine> engine;
    std::unique_ptr<obs::MetricsRegistry> metric_shard;
    algebra::PatternScratch scratch;
    GovernorShard shard;
    SearchStats stats;
    std::function<bool(const algebra::MatchedGraph&)> null_sink;
  };
  std::vector<WorkerState> ws(static_cast<size_t>(workers));

  // In first-match mode roots ordered after a known hit cannot contribute:
  // skip them cheaply instead of searching them to completion.
  std::atomic<size_t> first_hit{SIZE_MAX};

  auto run_root = [&](size_t r, int w) {
    if (!options.exhaustive &&
        first_hit.load(std::memory_order_relaxed) < r) {
      return;
    }
    WorkerState& s = ws[static_cast<size_t>(w)];
    if (s.engine == nullptr) {
      s.shard = GovernorShard(options.governor, GovernPoint::kSearch);
      if (metrics != nullptr) {
        s.metric_shard = std::make_unique<obs::MetricsRegistry>();
      }
      s.null_sink = [](const algebra::MatchedGraph&) { return true; };
      s.engine = std::make_unique<SearchEngine>(
          pattern, data, candidates, order, options, s.null_sink, &s.stats,
          s.metric_shard.get());
      s.engine->set_shard(&s.shard);
      s.engine->set_scratch(&s.scratch);
    }
    std::vector<algebra::MatchedGraph>& out = per_root[r];
    std::function<bool(const algebra::MatchedGraph&)> sink =
        [&out](const algebra::MatchedGraph& m) {
          out.push_back(m);
          return true;
        };
    per_status[r] = s.engine->RunRoot(roots[r], sink);
    if (!options.exhaustive && !out.empty()) {
      size_t cur = first_hit.load(std::memory_order_relaxed);
      while (r < cur && !first_hit.compare_exchange_weak(
                            cur, r, std::memory_order_relaxed)) {
      }
    }
  };
  ThreadPool::RunStats run = tp.ParallelFor(n, workers, run_root);

  for (WorkerState& s : ws) {
    if (s.engine == nullptr) continue;
    s.shard.Flush();
    s.engine->Flush();
    if (stats != nullptr) {
      stats->steps += s.stats.steps;
      stats->edge_checks += s.stats.edge_checks;
      stats->backtracks += s.stats.backtracks;
      stats->budget_exhausted |= s.stats.budget_exhausted;
      stats->governor_tripped |= s.stats.governor_tripped;
    }
    if (metrics != nullptr && s.metric_shard != nullptr) {
      metrics->Merge(s.metric_shard->Snapshot());
    }
  }
  if (pstats != nullptr) {
    pstats->workers = run.workers;
    pstats->tasks_stolen = run.stolen;
    pstats->lanes = run.lanes;
  }

  // Deterministic merge in root order. Per-root lists hold matches in that
  // root's DFS order, and the serial search visits roots in this same
  // order, so concatenation + the stop rules below reproduce its output
  // exactly: the max_matches cap cuts at the same match, first-match mode
  // takes the first non-empty root, and an error surfaces only if the
  // serial search would have reached it before stopping.
  std::vector<algebra::MatchedGraph> out;
  bool truncated = false;
  Status status = Status::OK();
  for (size_t r = 0; r < n; ++r) {
    bool stop = false;
    for (algebra::MatchedGraph& m : per_root[r]) {
      out.push_back(std::move(m));
      if (!options.exhaustive) {
        stop = true;
        break;
      }
      if (out.size() >= options.max_matches) {
        truncated = true;
        stop = true;
        break;
      }
    }
    if (stop) break;
    if (!per_status[r].ok()) {
      status = per_status[r];
      break;
    }
  }
  if (stats != nullptr) stats->truncated |= truncated;
  if (metrics != nullptr && truncated) {
    metrics->GetCounter("match.search.truncated")->Increment();
  }
  if (!status.ok()) return status;
  return out;
}

std::vector<std::vector<NodeId>> ScanCandidates(
    const algebra::GraphPattern& pattern, const Graph& data) {
  const Graph& p = pattern.graph();
  std::vector<std::vector<NodeId>> out(p.NumNodes());
  for (size_t u = 0; u < p.NumNodes(); ++u) {
    for (size_t v = 0; v < data.NumNodes(); ++v) {
      if (pattern.NodeCompatible(static_cast<NodeId>(u), data,
                                 static_cast<NodeId>(v))) {
        out[u].push_back(static_cast<NodeId>(v));
      }
    }
  }
  return out;
}

std::vector<NodeId> DeclarationOrder(const algebra::GraphPattern& pattern) {
  std::vector<NodeId> order(pattern.graph().NumNodes());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<NodeId>(i);
  return order;
}

}  // namespace graphql::match
