#include "match/bipartite.h"

#include <limits>
#include <queue>

namespace graphql::match {

namespace {

constexpr int kInf = std::numeric_limits<int>::max();
constexpr int kNil = -1;

struct HopcroftKarp {
  int n_left;
  int n_right;
  const std::vector<std::vector<int>>& adj;
  std::vector<int> match_left;   // left -> right or kNil
  std::vector<int> match_right;  // right -> left or kNil
  std::vector<int> dist;

  explicit HopcroftKarp(int nl, int nr,
                        const std::vector<std::vector<int>>& a)
      : n_left(nl),
        n_right(nr),
        adj(a),
        match_left(nl, kNil),
        match_right(nr, kNil),
        dist(nl, kInf) {}

  bool Bfs() {
    std::queue<int> q;
    for (int l = 0; l < n_left; ++l) {
      if (match_left[l] == kNil) {
        dist[l] = 0;
        q.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found_augmenting = false;
    while (!q.empty()) {
      int l = q.front();
      q.pop();
      for (int r : adj[l]) {
        int l2 = match_right[r];
        if (l2 == kNil) {
          found_augmenting = true;
        } else if (dist[l2] == kInf) {
          dist[l2] = dist[l] + 1;
          q.push(l2);
        }
      }
    }
    return found_augmenting;
  }

  bool Dfs(int l) {
    for (int r : adj[l]) {
      int l2 = match_right[r];
      if (l2 == kNil || (dist[l2] == dist[l] + 1 && Dfs(l2))) {
        match_left[l] = r;
        match_right[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  }

  int Run() {
    int matching = 0;
    while (Bfs()) {
      for (int l = 0; l < n_left; ++l) {
        if (match_left[l] == kNil && Dfs(l)) ++matching;
      }
    }
    return matching;
  }
};

}  // namespace

int MaxBipartiteMatching(int n_left, int n_right,
                         const std::vector<std::vector<int>>& adj) {
  if (n_left == 0) return 0;
  HopcroftKarp hk(n_left, n_right, adj);
  return hk.Run();
}

bool HasSemiPerfectMatching(int n_left, int n_right,
                            const std::vector<std::vector<int>>& adj) {
  if (n_left > n_right) return false;
  // Quick necessary condition: every left vertex needs at least one edge.
  for (const auto& a : adj) {
    if (a.empty()) return false;
  }
  return MaxBipartiteMatching(n_left, n_right, adj) == n_left;
}

}  // namespace graphql::match
