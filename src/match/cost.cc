#include "match/cost.h"

#include <algorithm>
#include <limits>
#include <string>

namespace graphql::match {

namespace {

/// Interned label of each pattern node (kNoSymbol for wildcards).
std::vector<SymbolId> PatternLabels(const Graph& p, const LabelIndex* index) {
  std::vector<SymbolId> labels(p.NumNodes(), kNoSymbol);
  if (index == nullptr) return labels;
  for (size_t u = 0; u < p.NumNodes(); ++u) {
    std::string_view l = p.Label(static_cast<NodeId>(u));
    if (!l.empty()) labels[u] = SymbolTable::Global().Lookup(l);
  }
  return labels;
}

/// Reduction factor gamma for joining node u to the already-joined set:
/// the product of edge probabilities over pattern edges between u and
/// joined nodes (Definition 4.11).
double JoinGamma(const Graph& p, NodeId u, const std::vector<char>& joined,
                 const std::vector<SymbolId>& labels, const LabelIndex* index,
                 const OrderOptions& options) {
  double gamma = 1.0;
  bool any = false;
  auto fold = [&](NodeId w) {
    if (!joined[w]) return;
    any = true;
    double p_edge = options.constant_gamma;
    if (options.use_edge_probs && index != nullptr &&
        labels[u] != kNoSymbol && labels[w] != kNoSymbol) {
      p_edge = index->EdgeProbability(labels[u], labels[w],
                                      options.constant_gamma);
    }
    gamma *= p_edge;
  };
  for (const Graph::Adj& a : p.neighbors(u)) fold(a.node);
  if (p.directed()) {
    for (const Graph::Adj& a : p.in_neighbors(u)) fold(a.node);
  }
  (void)any;
  return gamma;
}

}  // namespace

std::vector<NodeId> GreedySearchOrder(
    const algebra::GraphPattern& pattern,
    const std::vector<std::vector<NodeId>>& candidates,
    const LabelIndex* index, const OrderOptions& options) {
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  std::vector<NodeId> order;
  order.reserve(k);
  std::vector<char> joined(k, 0);
  std::vector<SymbolId> labels = PatternLabels(p, index);

  double size = 1.0;  // Estimated cardinality of the joined prefix.
  for (size_t step = 0; step < k; ++step) {
    NodeId best = kInvalidNode;
    double best_cost = 0;
    double best_result = 0;
    for (size_t u = 0; u < k; ++u) {
      if (joined[u]) continue;
      double phi = static_cast<double>(candidates[u].size());
      double cost = size * phi;
      double gamma = JoinGamma(p, static_cast<NodeId>(u), joined, labels,
                               index, options);
      double result = cost * gamma;
      if (best == kInvalidNode || cost < best_cost ||
          (cost == best_cost && result < best_result)) {
        best = static_cast<NodeId>(u);
        best_cost = cost;
        best_result = result;
      }
    }
    joined[best] = 1;
    order.push_back(best);
    size = best_result;  // Size(i) = Size(l) x Size(r) x gamma(i).
  }
  return order;
}

Result<std::vector<NodeId>> DpSearchOrder(
    const algebra::GraphPattern& pattern,
    const std::vector<std::vector<NodeId>>& candidates,
    const LabelIndex* index, const OrderOptions& options) {
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  if (k > kMaxDpPatternSize) {
    return Status::InvalidArgument(
        "DP ordering supports patterns up to " +
        std::to_string(kMaxDpPatternSize) + " nodes, got " +
        std::to_string(k));
  }
  if (k == 0) return std::vector<NodeId>{};
  std::vector<SymbolId> labels = PatternLabels(p, index);

  size_t num_subsets = size_t{1} << k;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // size_of[S]: estimated cardinality of the join over subset S
  // (order-independent); best[S]: minimal accumulated cost reaching S;
  // last[S]: the node joined last on an optimal path.
  std::vector<double> size_of(num_subsets, 0.0);
  std::vector<double> best(num_subsets, kInf);
  std::vector<int> last(num_subsets, -1);
  size_of[0] = 1.0;
  best[0] = 0.0;

  std::vector<char> joined(k, 0);
  for (size_t set = 1; set < num_subsets; ++set) {
    // Compute size_of[set] from any member u (consistent by construction).
    size_t u = 0;
    while (!(set & (size_t{1} << u))) ++u;
    size_t prev = set & ~(size_t{1} << u);
    for (size_t w = 0; w < k; ++w) joined[w] = (prev >> w) & 1;
    double gamma = JoinGamma(p, static_cast<NodeId>(u), joined, labels,
                             index, options);
    size_of[set] = size_of[prev] *
                   static_cast<double>(candidates[u].size()) * gamma;

    // Transition: join any member last.
    bool first_node = (set & (set - 1)) == 0;
    for (size_t v = 0; v < k; ++v) {
      if (!(set & (size_t{1} << v))) continue;
      size_t before = set & ~(size_t{1} << v);
      if (best[before] == kInf) continue;
      double join_cost =
          first_node ? 0.0
                     : size_of[before] *
                           static_cast<double>(candidates[v].size());
      double total = best[before] + join_cost;
      if (total < best[set]) {
        best[set] = total;
        last[set] = static_cast<int>(v);
      }
    }
  }

  std::vector<NodeId> order(k);
  size_t set = num_subsets - 1;
  for (size_t i = k; i-- > 0;) {
    int v = last[set];
    order[i] = static_cast<NodeId>(v);
    set &= ~(size_t{1} << v);
  }
  return order;
}

double EstimateOrderCost(const algebra::GraphPattern& pattern,
                         const std::vector<size_t>& candidate_sizes,
                         const std::vector<NodeId>& order,
                         const LabelIndex* index,
                         const OrderOptions& options) {
  const Graph& p = pattern.graph();
  std::vector<char> joined(p.NumNodes(), 0);
  std::vector<SymbolId> labels = PatternLabels(p, index);
  double size = 1.0;
  double total = 0.0;
  bool first = true;
  for (NodeId u : order) {
    double phi = static_cast<double>(candidate_sizes[u]);
    if (!first) total += size * phi;  // Cost of this join (Def. 4.12).
    double gamma = JoinGamma(p, u, joined, labels, index, options);
    size = size * phi * gamma;
    joined[u] = 1;
    first = false;
  }
  return total;
}

}  // namespace graphql::match
