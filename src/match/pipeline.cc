#include "match/pipeline.h"

#include <chrono>
#include <optional>
#include <string>

namespace graphql::match {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Profile of a pattern node against the data dictionary: labels within
/// `radius` hops in the pattern graph, looked up (never interned) so that
/// labels absent from the data yield kUnknownLabel and fail containment.
Profile PatternProfile(const Graph& p, NodeId u, int radius,
                       const LabelDictionary& dict) {
  LabelDictionary scratch;  // Intern into a throwaway, then translate.
  Profile raw = BuildProfile(p, u, radius, &scratch);
  Profile out;
  out.reserve(raw.size());
  for (int32_t local : raw) {
    out.push_back(dict.Lookup(scratch.Name(local)));
  }
  std::sort(out.begin(), out.end());
  return out;
}


/// Attempts to serve a wildcard-label pattern node's base candidate list
/// from an attribute B+-tree (Section 4.2's B-tree retrieval): an equality
/// constraint from the pattern tuple, or range bounds assembled from
/// pushed-down `attr op literal` predicates.
std::optional<std::vector<NodeId>> AttrIndexBaseList(
    const algebra::GraphPattern& pattern, NodeId u, const LabelIndex& index) {
  const Graph& p = pattern.graph();
  // Equality constraints from non-label tuple attributes.
  for (const auto& [k, v] : p.node(u).attrs.attrs()) {
    if (k == "label") continue;
    if (index.HasAttributeIndex(k)) return index.AttrExact(k, v);
  }

  // Resolve a name path to "an attribute of pattern node u": a bare
  // attribute name, `<node>.attr`, or `<pattern>.<node>.attr`.
  auto attr_of_u = [&](const lang::Expr& e) -> const std::string* {
    if (e.kind != lang::Expr::Kind::kName) return nullptr;
    const auto& path = e.path;
    if (path.size() == 1) return &path[0];
    size_t start = 0;
    if (path.size() == 3 && !pattern.name().empty() &&
        path[0] == pattern.name()) {
      start = 1;
    }
    if (path.size() - start != 2) return nullptr;
    auto it = pattern.node_names().find(path[start]);
    if (it == pattern.node_names().end() || it->second != u) return nullptr;
    return &path.back();
  };

  // Accumulate bounds per attribute; use the first indexed attribute that
  // gets at least one bound.
  std::string attr;
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  for (const lang::ExprPtr& pred : pattern.NodePreds(u)) {
    if (pred->kind != lang::Expr::Kind::kBinary) continue;
    const lang::Expr* name_side = nullptr;
    const lang::Expr* lit_side = nullptr;
    bool flipped = false;
    if (pred->lhs->kind == lang::Expr::Kind::kName &&
        pred->rhs->kind == lang::Expr::Kind::kLiteral) {
      name_side = pred->lhs.get();
      lit_side = pred->rhs.get();
    } else if (pred->rhs->kind == lang::Expr::Kind::kName &&
               pred->lhs->kind == lang::Expr::Kind::kLiteral) {
      name_side = pred->rhs.get();
      lit_side = pred->lhs.get();
      flipped = true;
    } else {
      continue;
    }
    const std::string* a = attr_of_u(*name_side);
    if (a == nullptr || !index.HasAttributeIndex(*a)) continue;
    if (!attr.empty() && attr != *a) continue;  // One attribute at a time.

    lang::BinaryOp op = pred->op;
    if (flipped) {
      switch (op) {
        case lang::BinaryOp::kLt:
          op = lang::BinaryOp::kGt;
          break;
        case lang::BinaryOp::kLe:
          op = lang::BinaryOp::kGe;
          break;
        case lang::BinaryOp::kGt:
          op = lang::BinaryOp::kLt;
          break;
        case lang::BinaryOp::kGe:
          op = lang::BinaryOp::kLe;
          break;
        default:
          break;
      }
    }
    const Value& lit = lit_side->literal;
    switch (op) {
      case lang::BinaryOp::kEq:
        attr = *a;
        if (!lo || *lo < lit) {
          lo = lit;
          lo_inclusive = true;
        }
        if (!hi || lit < *hi) {
          hi = lit;
          hi_inclusive = true;
        }
        break;
      case lang::BinaryOp::kLt:
      case lang::BinaryOp::kLe:
        attr = *a;
        if (!hi || lit < *hi) {
          hi = lit;
          hi_inclusive = op == lang::BinaryOp::kLe;
        }
        break;
      case lang::BinaryOp::kGt:
      case lang::BinaryOp::kGe:
        attr = *a;
        if (!lo || *lo < lit) {
          lo = lit;
          lo_inclusive = op == lang::BinaryOp::kGe;
        }
        break;
      default:
        break;
    }
  }
  if (attr.empty()) return std::nullopt;
  return index.AttrRange(attr, lo ? &*lo : nullptr, lo_inclusive,
                         hi ? &*hi : nullptr, hi_inclusive);
}

}  // namespace

const char* CandidateModeName(CandidateMode mode) {
  switch (mode) {
    case CandidateMode::kLabelOnly:
      return "label-only";
    case CandidateMode::kProfile:
      return "profile";
    case CandidateMode::kNeighborhood:
      return "neighborhood";
  }
  return "?";
}

double PipelineStats::Space(const std::vector<size_t>& sizes) {
  double space = sizes.empty() ? 0.0 : 1.0;
  for (size_t s : sizes) space *= static_cast<double>(s);
  return space;
}

std::vector<std::vector<NodeId>> RetrieveCandidates(
    const algebra::GraphPattern& pattern, const Graph& data,
    const LabelIndex* index, const PipelineOptions& options,
    PipelineStats* stats) {
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  std::vector<std::vector<NodeId>> out(k);
  if (stats != nullptr) {
    stats->size_attr.assign(k, 0);
    stats->size_retrieved.assign(k, 0);
  }
  if (index == nullptr) {
    out = ScanCandidates(pattern, data);
    if (stats != nullptr) {
      for (size_t u = 0; u < k; ++u) {
        stats->size_attr[u] = out[u].size();
        stats->size_retrieved[u] = out[u].size();
      }
    }
    return out;
  }

  std::vector<NodeId> all_nodes;  // Lazy: built only for wildcard nodes.
  for (size_t u = 0; u < k; ++u) {
    NodeId pu = static_cast<NodeId>(u);
    std::string_view label = p.Label(pu);
    std::vector<NodeId> attr_base;  // Owned storage for B+-tree retrieval.
    const std::vector<NodeId>* base = nullptr;
    if (!label.empty()) {
      base = &index->NodesWithLabel(label);
    } else if (auto from_attr = AttrIndexBaseList(pattern, pu, *index)) {
      attr_base = std::move(*from_attr);
      base = &attr_base;
    } else {
      if (all_nodes.empty() && data.NumNodes() > 0) {
        all_nodes.resize(data.NumNodes());
        for (size_t v = 0; v < data.NumNodes(); ++v) {
          all_nodes[v] = static_cast<NodeId>(v);
        }
      }
      base = &all_nodes;
    }

    // Stage 1: attribute retrieval + remaining feasible-mate predicates.
    std::vector<NodeId> attr_stage;
    attr_stage.reserve(base->size());
    for (NodeId v : *base) {
      if (pattern.NodeCompatible(pu, data, v)) attr_stage.push_back(v);
    }
    if (stats != nullptr) stats->size_attr[u] = attr_stage.size();

    // Stage 2: local pruning by profiles or neighborhood subgraphs.
    switch (options.candidate_mode) {
      case CandidateMode::kLabelOnly:
        out[u] = std::move(attr_stage);
        break;
      case CandidateMode::kProfile: {
        if (!index->has_profiles()) {
          out[u] = std::move(attr_stage);
          break;
        }
        Profile want =
            PatternProfile(p, pu, index->options().radius, index->dict());
        for (NodeId v : attr_stage) {
          if (ProfileContains(index->profile(v), want)) {
            out[u].push_back(v);
          }
        }
        break;
      }
      case CandidateMode::kNeighborhood: {
        if (!index->has_neighborhoods()) {
          out[u] = std::move(attr_stage);
          break;
        }
        NeighborhoodSubgraph want =
            ExtractNeighborhood(p, pu, index->options().radius);
        for (NodeId v : attr_stage) {
          if (NeighborhoodSubIsomorphic(want, index->neighborhood(v),
                                        options.neighborhood_step_budget)) {
            out[u].push_back(v);
          }
        }
        break;
      }
    }
    if (stats != nullptr) stats->size_retrieved[u] = out[u].size();
  }
  return out;
}

Result<std::vector<algebra::MatchedGraph>> MatchPattern(
    const algebra::GraphPattern& pattern, const Graph& data,
    const LabelIndex* index, const PipelineOptions& options,
    PipelineStats* stats) {
  const size_t k = pattern.graph().NumNodes();

  int64_t t0 = NowMicros();
  std::vector<std::vector<NodeId>> candidates =
      RetrieveCandidates(pattern, data, index, options, stats);
  int64_t t1 = NowMicros();

  int level = options.refine_level;
  if (level < 0) level = static_cast<int>(k);
  if (level > 0) {
    RefineSearchSpace(pattern, data, level, &candidates,
                      stats != nullptr ? &stats->refine : nullptr,
                      options.refine_use_marking);
  }
  int64_t t2 = NowMicros();
  if (stats != nullptr) {
    stats->size_refined.assign(k, 0);
    for (size_t u = 0; u < k; ++u) {
      stats->size_refined[u] = candidates[u].size();
    }
  }

  std::vector<NodeId> order =
      options.optimize_order
          ? GreedySearchOrder(pattern, candidates, index, options.order)
          : DeclarationOrder(pattern);
  int64_t t3 = NowMicros();

  Result<std::vector<algebra::MatchedGraph>> matches =
      SearchMatches(pattern, data, candidates, order, options.match,
                    stats != nullptr ? &stats->search : nullptr);
  int64_t t4 = NowMicros();

  if (stats != nullptr) {
    stats->us_retrieve = t1 - t0;
    stats->us_refine = t2 - t1;
    stats->us_order = t3 - t2;
    stats->us_search = t4 - t3;
    stats->order = order;
    stats->num_matches = matches.ok() ? matches.value().size() : 0;
  }
  return matches;
}

Result<std::vector<algebra::MatchedGraph>> SelectCollection(
    const algebra::GraphPattern& pattern, const GraphCollection& collection,
    const PipelineOptions& options) {
  std::vector<algebra::MatchedGraph> out;
  for (const Graph& g : collection) {
    GQL_ASSIGN_OR_RETURN(std::vector<algebra::MatchedGraph> matches,
                         MatchPattern(pattern, g, /*index=*/nullptr, options));
    for (algebra::MatchedGraph& m : matches) out.push_back(std::move(m));
  }
  return out;
}

Result<std::vector<algebra::MatchedGraph>> SelectCollectionAny(
    const std::vector<algebra::GraphPattern>& alternatives,
    const GraphCollection& collection, const PipelineOptions& options) {
  std::vector<algebra::MatchedGraph> out;
  for (const Graph& g : collection) {
    for (const algebra::GraphPattern& pattern : alternatives) {
      GQL_ASSIGN_OR_RETURN(
          std::vector<algebra::MatchedGraph> matches,
          MatchPattern(pattern, g, /*index=*/nullptr, options));
      if (!matches.empty()) {
        for (algebra::MatchedGraph& m : matches) out.push_back(std::move(m));
        if (!options.match.exhaustive) break;  // One binding per graph.
      }
    }
  }
  return out;
}

bool AreIsomorphic(const Graph& a, const Graph& b) {
  if (a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  if (a.directed() != b.directed()) return false;
  if (!(a.attrs() == b.attrs())) return false;
  auto embeds = [](const Graph& from, const Graph& into) {
    algebra::GraphPattern p = algebra::GraphPattern::FromGraph(from);
    PipelineOptions options;
    options.candidate_mode = CandidateMode::kLabelOnly;
    options.refine_level = -1;
    options.match.exhaustive = false;
    Result<std::vector<algebra::MatchedGraph>> m =
        MatchPattern(p, into, nullptr, options);
    return m.ok() && !m->empty();
  };
  // With equal sizes, mutual embedding pins the node bijection and forces
  // attribute equality in both directions (each side's attributes are a
  // subset of the other's on corresponding entities).
  return embeds(a, b) && embeds(b, a);
}

}  // namespace graphql::match
