#include "match/pipeline.h"

#include <memory>
#include <optional>
#include <string>

#include "graph/snapshot.h"

namespace graphql::match {

namespace {

/// Profile of a pattern node: labels within `radius` hops in the pattern
/// graph, interned into the process-wide symbol table (the same id space
/// data profiles use). A pattern label absent from the data simply never
/// occurs in any data profile, so containment fails for it naturally —
/// the same verdict the historical per-graph dictionary reached through
/// its kUnknownLabel sentinel.
Profile PatternProfile(const Graph& p, NodeId u, int radius) {
  return BuildProfile(p, u, radius);
}


/// Attempts to serve a wildcard-label pattern node's base candidate list
/// from an attribute B+-tree (Section 4.2's B-tree retrieval): an equality
/// constraint from the pattern tuple, or range bounds assembled from
/// pushed-down `attr op literal` predicates.
std::optional<std::vector<NodeId>> AttrIndexBaseList(
    const algebra::GraphPattern& pattern, NodeId u, const LabelIndex& index) {
  const Graph& p = pattern.graph();
  // Equality constraints from non-label tuple attributes.
  for (const auto& [k, v] : p.node(u).attrs.attrs()) {
    if (k == "label") continue;
    if (index.HasAttributeIndex(k)) return index.AttrExact(k, v);
  }

  // Resolve a name path to "an attribute of pattern node u": a bare
  // attribute name, `<node>.attr`, or `<pattern>.<node>.attr`.
  auto attr_of_u = [&](const lang::Expr& e) -> const std::string* {
    if (e.kind != lang::Expr::Kind::kName) return nullptr;
    const auto& path = e.path;
    if (path.size() == 1) return &path[0];
    size_t start = 0;
    if (path.size() == 3 && !pattern.name().empty() &&
        path[0] == pattern.name()) {
      start = 1;
    }
    if (path.size() - start != 2) return nullptr;
    auto it = pattern.node_names().find(path[start]);
    if (it == pattern.node_names().end() || it->second != u) return nullptr;
    return &path.back();
  };

  // Accumulate bounds per attribute; use the first indexed attribute that
  // gets at least one bound.
  std::string attr;
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  for (const lang::ExprPtr& pred : pattern.NodePreds(u)) {
    if (pred->kind != lang::Expr::Kind::kBinary) continue;
    const lang::Expr* name_side = nullptr;
    const lang::Expr* lit_side = nullptr;
    bool flipped = false;
    if (pred->lhs->kind == lang::Expr::Kind::kName &&
        pred->rhs->kind == lang::Expr::Kind::kLiteral) {
      name_side = pred->lhs.get();
      lit_side = pred->rhs.get();
    } else if (pred->rhs->kind == lang::Expr::Kind::kName &&
               pred->lhs->kind == lang::Expr::Kind::kLiteral) {
      name_side = pred->rhs.get();
      lit_side = pred->lhs.get();
      flipped = true;
    } else {
      continue;
    }
    const std::string* a = attr_of_u(*name_side);
    if (a == nullptr || !index.HasAttributeIndex(*a)) continue;
    if (!attr.empty() && attr != *a) continue;  // One attribute at a time.

    lang::BinaryOp op = pred->op;
    if (flipped) {
      switch (op) {
        case lang::BinaryOp::kLt:
          op = lang::BinaryOp::kGt;
          break;
        case lang::BinaryOp::kLe:
          op = lang::BinaryOp::kGe;
          break;
        case lang::BinaryOp::kGt:
          op = lang::BinaryOp::kLt;
          break;
        case lang::BinaryOp::kGe:
          op = lang::BinaryOp::kLe;
          break;
        default:
          break;
      }
    }
    const Value& lit = lit_side->literal;
    switch (op) {
      case lang::BinaryOp::kEq:
        attr = *a;
        if (!lo || *lo < lit) {
          lo = lit;
          lo_inclusive = true;
        }
        if (!hi || lit < *hi) {
          hi = lit;
          hi_inclusive = true;
        }
        break;
      case lang::BinaryOp::kLt:
      case lang::BinaryOp::kLe:
        attr = *a;
        if (!hi || lit < *hi) {
          hi = lit;
          hi_inclusive = op == lang::BinaryOp::kLe;
        }
        break;
      case lang::BinaryOp::kGt:
      case lang::BinaryOp::kGe:
        attr = *a;
        if (!lo || *lo < lit) {
          lo = lit;
          lo_inclusive = op == lang::BinaryOp::kGe;
        }
        break;
      default:
        break;
    }
  }
  if (attr.empty()) return std::nullopt;
  return index.AttrRange(attr, lo ? &*lo : nullptr, lo_inclusive,
                         hi ? &*hi : nullptr, hi_inclusive);
}

/// Stage-level parallel-execution report for the pipeline's trace spans.
struct RetrieveParallelInfo {
  int workers = 0;
  uint64_t tasks_stolen = 0;
  std::vector<ThreadPool::WorkerLane> lanes;
};

/// Records one completed "worker" child span per OS thread that served the
/// enclosing stage's ParallelFor jobs. Must run while the stage span is
/// still open so the lanes nest under it; the Chrome-trace exporter routes
/// each one onto its thread's lane via the "tid" attribute.
void EmitWorkerLanes(obs::Tracer* tracer,
                     const std::vector<ThreadPool::WorkerLane>& lanes) {
  if (tracer == nullptr) return;
  for (const ThreadPool::WorkerLane& lane : lanes) {
    if (lane.os_tid == 0 || lane.end_us < lane.start_us) continue;
    obs::TraceNode* node = tracer->AddCompleted("worker", lane.start_us,
                                                lane.end_us - lane.start_us);
    if (node == nullptr) continue;
    node->SetAttr("tid", lane.os_tid);
    node->SetAttr("tasks", static_cast<int64_t>(lane.tasks));
    if (lane.stolen > 0) {
      node->SetAttr("stolen", static_cast<int64_t>(lane.stolen));
    }
  }
}

/// Parallel retrieval: one task per pattern node runs the feasible-mate
/// scan (and profile filter) with per-worker pattern scratch and governor
/// shard; in neighborhood mode the per-candidate sub-isomorphism tests of
/// every Phi(u) are additionally chunked into stealable ranges, since one
/// hub node's tests can dominate the whole stage. Anything that touches
/// non-thread-safe structures (B+-tree lookups, pattern profile /
/// neighborhood construction, the lazily built all-nodes list) runs on the
/// coordinator before the fan-out.
std::vector<std::vector<NodeId>> RetrieveCandidatesParallel(
    const algebra::GraphPattern& pattern, const Graph& data,
    const LabelIndex& index, const PipelineOptions& options,
    PipelineStats* stats, int workers, RetrieveParallelInfo* info,
    const GraphSnapshot* snap) {
  const Graph& p = pattern.graph();
  const size_t k = p.NumNodes();
  std::vector<std::vector<NodeId>> out(k);
  if (stats != nullptr) {
    stats->size_attr.assign(k, 0);
    stats->size_retrieved.assign(k, 0);
  }
  if (k == 0) return out;
  ThreadPool& tp =
      options.pool != nullptr ? *options.pool : ThreadPool::Shared();
  obs::MetricsRegistry* metrics = options.metrics;
  ResourceGovernor* gov = options.governor;

  // Coordinator-side preparation (serial).
  std::vector<NodeId> all_nodes;
  std::vector<std::vector<NodeId>> owned_base(k);
  std::vector<const std::vector<NodeId>*> base(k, nullptr);
  for (size_t u = 0; u < k; ++u) {
    NodeId pu = static_cast<NodeId>(u);
    std::string_view label = p.Label(pu);
    if (!label.empty()) {
      base[u] = &index.NodesWithLabel(label);
    } else if (auto from_attr = AttrIndexBaseList(pattern, pu, index)) {
      owned_base[u] = std::move(*from_attr);
      base[u] = &owned_base[u];
    } else {
      if (all_nodes.empty() && data.NumNodes() > 0) {
        all_nodes.resize(data.NumNodes());
        for (size_t v = 0; v < data.NumNodes(); ++v) {
          all_nodes[v] = static_cast<NodeId>(v);
        }
      }
      base[u] = &all_nodes;
    }
  }
  const bool use_profiles =
      options.candidate_mode == CandidateMode::kProfile && index.has_profiles();
  const bool use_neighborhoods =
      options.candidate_mode == CandidateMode::kNeighborhood &&
      index.has_neighborhoods();
  std::vector<Profile> want_profile;
  std::vector<NeighborhoodSubgraph> want_nbh;
  if (use_profiles) {
    want_profile.resize(k);
    for (size_t u = 0; u < k; ++u) {
      want_profile[u] =
          PatternProfile(p, static_cast<NodeId>(u), index.options().radius);
    }
  } else if (use_neighborhoods) {
    want_nbh.resize(k);
    for (size_t u = 0; u < k; ++u) {
      want_nbh[u] = ExtractNeighborhood(p, static_cast<NodeId>(u),
                                        index.options().radius);
    }
  }

  // Vectorized selection: one read-only plan shared by all workers; each
  // worker owns its bitmap scratch (allocated lazily — the auto kernel may
  // never resolve to bitmap for selective base lists).
  std::optional<SelectionPlan> sel_plan;
  if (snap != nullptr && options.selection != SelectionKernel::kScalar) {
    sel_plan.emplace(pattern, *snap, metrics);
  }

  struct WorkerState {
    GovernorShard shard;      // Feasible-mate probes (GovernPoint::kRetrieve).
    GovernorShard nbh_shard;  // Sub-iso DFS steps (GovernPoint::kNeighborhood).
    algebra::PatternScratch scratch;
    std::unique_ptr<PackedBits> bits;  // Bitmap-kernel scratch (2 x n).
    std::unique_ptr<obs::MetricsRegistry> metric_shard;
    uint64_t feasible_hits = 0;
    uint64_t feasible_misses = 0;
    uint64_t profile_pruned = 0;
  };
  std::vector<WorkerState> ws(static_cast<size_t>(workers));
  for (WorkerState& s : ws) {
    s.shard = GovernorShard(gov, GovernPoint::kRetrieve);
    s.nbh_shard = GovernorShard(gov, GovernPoint::kNeighborhood);
    if (metrics != nullptr && use_neighborhoods) {
      s.metric_shard = std::make_unique<obs::MetricsRegistry>();
    }
  }

  uint64_t stolen = 0;
  int workers_seen = 0;

  // Phase A: per-pattern-node feasible-mate scans (+ profile filter).
  // Neighborhood mode stops at the attribute stage; its per-candidate
  // tests fan out again below.
  std::vector<std::vector<NodeId>> attr_stage(k);
  auto scan_node = [&](size_t u, int w) {
    WorkerState& s = ws[static_cast<size_t>(w)];
    NodeId pu = static_cast<NodeId>(u);
    // One charge per feasible-mate probe; a tripped governor leaves this
    // node's candidate list empty (partial-result semantics, as serial).
    if (!s.shard.Charge(base[u]->size())) return;
    std::vector<NodeId> stage;
    stage.reserve(base[u]->size());
    if (sel_plan.has_value()) {
      SelectionKernel ku =
          ResolveSelectionKernel(options.selection, base[u]->size(),
                                 snap->num_nodes(), base[u] == &all_nodes);
      if (ku == SelectionKernel::kBitmap && s.bits == nullptr) {
        s.bits = std::make_unique<PackedBits>(2, snap->num_nodes());
      }
      ScanBaseList(*sel_plan, pu, data, *base[u], ku, &s.scratch, s.bits.get(),
                   &stage);
    } else {
      for (NodeId v : *base[u]) {
        bool ok = snap != nullptr
                      ? pattern.NodeCompatible(pu, *snap, data, v, &s.scratch)
                      : pattern.NodeCompatible(pu, data, v, &s.scratch);
        if (ok) stage.push_back(v);
      }
    }
    s.feasible_hits += stage.size();
    s.feasible_misses += base[u]->size() - stage.size();
    if (stats != nullptr) stats->size_attr[u] = stage.size();
    if (use_profiles) {
      out[u].reserve(stage.size());
      for (NodeId v : stage) {
        if (ProfileContains(index.profile(v), want_profile[u])) {
          out[u].push_back(v);
        }
      }
      s.profile_pruned += stage.size() - out[u].size();
    } else if (use_neighborhoods) {
      attr_stage[u] = std::move(stage);
    } else {
      out[u] = std::move(stage);
    }
  };
  ThreadPool::RunStats run = tp.ParallelFor(k, workers, scan_node);
  stolen += run.stolen;
  workers_seen = run.workers;
  if (info != nullptr) MergeWorkerLanes(&info->lanes, run.lanes);

  uint64_t neighborhood_pruned = 0;
  if (use_neighborhoods) {
    // Phase B: chunk each Phi(u)'s sub-isomorphism tests into stealable
    // ranges. keep defaults to 1 so a governor trip degrades to "no
    // pruning", matching the serial conservative fallback.
    struct Chunk {
      size_t u;
      size_t begin;
      size_t end;
    };
    constexpr size_t kChunk = 64;
    std::vector<Chunk> chunks;
    std::vector<std::vector<char>> keep(k);
    for (size_t u = 0; u < k; ++u) {
      keep[u].assign(attr_stage[u].size(), 1);
      for (size_t b = 0; b < attr_stage[u].size(); b += kChunk) {
        chunks.push_back(
            Chunk{u, b, std::min(b + kChunk, attr_stage[u].size())});
      }
    }
    auto test_chunk = [&](size_t ci, int w) {
      WorkerState& s = ws[static_cast<size_t>(w)];
      const Chunk& c = chunks[ci];
      for (size_t i = c.begin; i < c.end; ++i) {
        if (!s.nbh_shard.ok()) return;  // Tripped: keep the rest unpruned.
        NodeId v = attr_stage[c.u][i];
        if (!NeighborhoodSubIsomorphic(want_nbh[c.u], index.neighborhood(v),
                                       options.neighborhood_step_budget,
                                       s.metric_shard.get(),
                                       /*governor=*/nullptr, &s.nbh_shard)) {
          keep[c.u][i] = 0;
        }
      }
    };
    ThreadPool::RunStats nbh_run =
        tp.ParallelFor(chunks.size(), workers, test_chunk);
    stolen += nbh_run.stolen;
    workers_seen = std::max(workers_seen, nbh_run.workers);
    if (info != nullptr) MergeWorkerLanes(&info->lanes, nbh_run.lanes);
    for (size_t u = 0; u < k; ++u) {
      out[u].reserve(attr_stage[u].size());
      for (size_t i = 0; i < attr_stage[u].size(); ++i) {
        if (keep[u][i]) out[u].push_back(attr_stage[u][i]);
      }
      neighborhood_pruned += attr_stage[u].size() - out[u].size();
    }
  }

  uint64_t feasible_hits = 0;
  uint64_t feasible_misses = 0;
  uint64_t profile_pruned = 0;
  for (WorkerState& s : ws) {
    s.shard.Flush();
    s.nbh_shard.Flush();
    feasible_hits += s.feasible_hits;
    feasible_misses += s.feasible_misses;
    profile_pruned += s.profile_pruned;
    if (metrics != nullptr && s.metric_shard != nullptr) {
      metrics->Merge(s.metric_shard->Snapshot());
    }
  }
  if (stats != nullptr) {
    for (size_t u = 0; u < k; ++u) stats->size_retrieved[u] = out[u].size();
    stats->tasks_stolen += stolen;
  }
  if (info != nullptr) {
    info->workers = workers_seen;
    info->tasks_stolen = stolen;
  }
  if (metrics != nullptr) {
    metrics->GetCounter("match.retrieve.feasible_hits")
        ->Increment(feasible_hits);
    metrics->GetCounter("match.retrieve.feasible_misses")
        ->Increment(feasible_misses);
    if (options.candidate_mode == CandidateMode::kProfile) {
      metrics->GetCounter("match.retrieve.profile_pruned")
          ->Increment(profile_pruned);
    } else if (options.candidate_mode == CandidateMode::kNeighborhood) {
      metrics->GetCounter("match.retrieve.neighborhood_pruned")
          ->Increment(neighborhood_pruned);
    }
  }
  return out;
}

}  // namespace

const char* CandidateModeName(CandidateMode mode) {
  switch (mode) {
    case CandidateMode::kLabelOnly:
      return "label-only";
    case CandidateMode::kProfile:
      return "profile";
    case CandidateMode::kNeighborhood:
      return "neighborhood";
  }
  return "?";
}

double PipelineStats::Space(const std::vector<size_t>& sizes) {
  double space = sizes.empty() ? 0.0 : 1.0;
  for (size_t s : sizes) space *= static_cast<double>(s);
  return space;
}

std::vector<std::vector<NodeId>> RetrieveCandidates(
    const algebra::GraphPattern& pattern, const Graph& data,
    const LabelIndex* index, const PipelineOptions& options,
    PipelineStats* stats, const GraphSnapshot* snap) {
  if (index != nullptr) {
    int workers = ResolveWorkers(options.num_threads, options.pool);
    if (workers > 0) {
      return RetrieveCandidatesParallel(pattern, data, *index, options, stats,
                                        workers, /*info=*/nullptr, snap);
    }
  }
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  std::vector<std::vector<NodeId>> out(k);
  if (stats != nullptr) {
    stats->size_attr.assign(k, 0);
    stats->size_retrieved.assign(k, 0);
  }
  obs::MetricsRegistry* metrics = options.metrics;
  ResourceGovernor* gov = options.governor;
  // Feasible-mate accounting, accumulated locally and flushed once.
  uint64_t feasible_hits = 0;
  uint64_t feasible_misses = 0;
  uint64_t profile_pruned = 0;
  uint64_t neighborhood_pruned = 0;
  if (index == nullptr) {
    // Bulk-charge the scan's probes; on a trip return empty candidate
    // lists (the search then finds nothing — partial-result semantics).
    if (!GovCharge(gov, k * data.NumNodes(), GovernPoint::kRetrieve)) {
      return out;
    }
    if (snap != nullptr &&
        options.selection != SelectionKernel::kScalar) {
      // Full scans are the densest base list possible, so auto resolves to
      // the bitmap kernel; iterating set bits ascending reproduces the
      // scalar v-loop order exactly.
      SelectionPlan plan(pattern, *snap, metrics);
      const size_t n = data.NumNodes();
      SelectionKernel ku = ResolveSelectionKernel(options.selection, n, n,
                                                  /*dense_base=*/true);
      algebra::PatternScratch scratch;
      if (ku == SelectionKernel::kBitmap) {
        PackedBits bits(2, n);
        for (size_t u = 0; u < k; ++u) {
          NodeId pu = static_cast<NodeId>(u);
          plan.FillStructuralBitmap(pu, &bits);
          const bool preds = plan.HasPreds(pu);
          bits.ForEachInRow(0, [&](size_t v) {
            NodeId dv = static_cast<NodeId>(v);
            if (!preds || plan.PredsOk(pu, data, dv, &scratch)) {
              out[u].push_back(dv);
            }
            return true;
          });
        }
      } else {
        for (size_t u = 0; u < k; ++u) {
          for (size_t v = 0; v < n; ++v) {
            if (plan.NodeCompatible(static_cast<NodeId>(u), data,
                                    static_cast<NodeId>(v), &scratch)) {
              out[u].push_back(static_cast<NodeId>(v));
            }
          }
        }
      }
    } else if (snap != nullptr) {
      for (size_t u = 0; u < k; ++u) {
        for (size_t v = 0; v < data.NumNodes(); ++v) {
          if (pattern.NodeCompatible(static_cast<NodeId>(u), *snap, data,
                                     static_cast<NodeId>(v))) {
            out[u].push_back(static_cast<NodeId>(v));
          }
        }
      }
    } else {
      out = ScanCandidates(pattern, data);
    }
    size_t kept = 0;
    for (size_t u = 0; u < k; ++u) {
      kept += out[u].size();
      if (stats != nullptr) {
        stats->size_attr[u] = out[u].size();
        stats->size_retrieved[u] = out[u].size();
      }
    }
    if (metrics != nullptr) {
      metrics->GetCounter("match.retrieve.scans")->Increment();
      metrics->GetCounter("match.retrieve.feasible_hits")->Increment(kept);
      metrics->GetCounter("match.retrieve.feasible_misses")
          ->Increment(k * data.NumNodes() - kept);
    }
    return out;
  }

  std::vector<NodeId> all_nodes;  // Lazy: built only for wildcard nodes.
  // Vectorized selection state (plan compiled once per retrieve; bitmap
  // scratch allocated on first bitmap-resolved node).
  std::optional<SelectionPlan> sel_plan;
  std::optional<PackedBits> sel_bits;
  algebra::PatternScratch sel_scratch;
  if (snap != nullptr && options.selection != SelectionKernel::kScalar) {
    sel_plan.emplace(pattern, *snap, metrics);
  }
  for (size_t u = 0; u < k; ++u) {
    NodeId pu = static_cast<NodeId>(u);
    std::string_view label = p.Label(pu);
    std::vector<NodeId> attr_base;  // Owned storage for B+-tree retrieval.
    const std::vector<NodeId>* base = nullptr;
    if (!label.empty()) {
      base = &index->NodesWithLabel(label);
    } else if (auto from_attr = AttrIndexBaseList(pattern, pu, *index)) {
      attr_base = std::move(*from_attr);
      base = &attr_base;
    } else {
      if (all_nodes.empty() && data.NumNodes() > 0) {
        all_nodes.resize(data.NumNodes());
        for (size_t v = 0; v < data.NumNodes(); ++v) {
          all_nodes[v] = static_cast<NodeId>(v);
        }
      }
      base = &all_nodes;
    }

    // One charge per feasible-mate probe for this pattern node; on a trip
    // the remaining candidate lists stay empty (partial-result semantics).
    if (!GovCharge(gov, base->size(), GovernPoint::kRetrieve)) break;

    // Stage 1: attribute retrieval + remaining feasible-mate predicates.
    std::vector<NodeId> attr_stage;
    attr_stage.reserve(base->size());
    if (sel_plan.has_value()) {
      SelectionKernel ku =
          ResolveSelectionKernel(options.selection, base->size(),
                                 snap->num_nodes(), base == &all_nodes);
      if (ku == SelectionKernel::kBitmap && !sel_bits.has_value()) {
        sel_bits.emplace(2, snap->num_nodes());
      }
      ScanBaseList(*sel_plan, pu, data, *base, ku, &sel_scratch,
                   sel_bits.has_value() ? &*sel_bits : nullptr, &attr_stage);
    } else {
      for (NodeId v : *base) {
        bool ok = snap != nullptr ? pattern.NodeCompatible(pu, *snap, data, v)
                                  : pattern.NodeCompatible(pu, data, v);
        if (ok) attr_stage.push_back(v);
      }
    }
    feasible_hits += attr_stage.size();
    feasible_misses += base->size() - attr_stage.size();
    if (stats != nullptr) stats->size_attr[u] = attr_stage.size();

    // Stage 2: local pruning by profiles or neighborhood subgraphs.
    switch (options.candidate_mode) {
      case CandidateMode::kLabelOnly:
        out[u] = std::move(attr_stage);
        break;
      case CandidateMode::kProfile: {
        if (!index->has_profiles()) {
          out[u] = std::move(attr_stage);
          break;
        }
        Profile want = PatternProfile(p, pu, index->options().radius);
        for (NodeId v : attr_stage) {
          if (ProfileContains(index->profile(v), want)) {
            out[u].push_back(v);
          }
        }
        profile_pruned += attr_stage.size() - out[u].size();
        break;
      }
      case CandidateMode::kNeighborhood: {
        if (!index->has_neighborhoods()) {
          out[u] = std::move(attr_stage);
          break;
        }
        NeighborhoodSubgraph want =
            ExtractNeighborhood(p, pu, index->options().radius);
        for (NodeId v : attr_stage) {
          if (NeighborhoodSubIsomorphic(want, index->neighborhood(v),
                                        options.neighborhood_step_budget,
                                        metrics, gov)) {
            out[u].push_back(v);
          }
        }
        neighborhood_pruned += attr_stage.size() - out[u].size();
        break;
      }
    }
    if (stats != nullptr) stats->size_retrieved[u] = out[u].size();
  }
  if (metrics != nullptr) {
    metrics->GetCounter("match.retrieve.feasible_hits")
        ->Increment(feasible_hits);
    metrics->GetCounter("match.retrieve.feasible_misses")
        ->Increment(feasible_misses);
    if (options.candidate_mode == CandidateMode::kProfile) {
      metrics->GetCounter("match.retrieve.profile_pruned")
          ->Increment(profile_pruned);
    } else if (options.candidate_mode == CandidateMode::kNeighborhood) {
      metrics->GetCounter("match.retrieve.neighborhood_pruned")
          ->Increment(neighborhood_pruned);
    }
  }
  return out;
}

Result<std::vector<algebra::MatchedGraph>> MatchPattern(
    const algebra::GraphPattern& pattern, const Graph& data,
    const LabelIndex* index, const PipelineOptions& options,
    PipelineStats* stats) {
  const size_t k = pattern.graph().NumNodes();
  obs::Tracer* tracer = options.tracer;
  obs::MetricsRegistry* metrics = options.metrics;
  ResourceGovernor* gov = options.governor;
  // Trip counters are emitted on the not-tripped -> tripped transition so
  // collection loops over many member graphs count each trip once.
  const bool was_tripped = gov != nullptr && gov->tripped();
  // Intra-query parallelism: 0 = the bit-exact serial path. Parallel runs
  // produce the same match set and order (see SearchMatchesParallel).
  const int workers = ResolveWorkers(options.num_threads, options.pool);

  // Compile (or fetch) the data graph's snapshot on the coordinator before
  // any fan-out, so worker threads only ever read the finished immutable
  // structure. A caller-provided MatchOptions::snapshot wins.
  std::shared_ptr<const GraphSnapshot> snap_holder;
  const GraphSnapshot* snap = options.match.snapshot;
  bool snap_fresh = false;
  if (snap == nullptr && options.use_snapshot) {
    snap_holder = data.snapshot(&snap_fresh);
    snap = snap_holder.get();
    if (snap_fresh && metrics != nullptr) {
      metrics->GetCounter("snapshot.builds")->Increment();
      metrics->GetCounter("snapshot.bytes")->Increment(snap->bytes());
      metrics->GetHistogram("snapshot.build_us")
          ->Record(static_cast<uint64_t>(snap->build_micros()));
    }
  }
  // A freshly compiled snapshot is new memory this query caused; account
  // it for the query's duration. Cache hits were paid for by the query
  // that built them.
  ScopedReserve snap_mem(snap_fresh ? gov : nullptr,
                         snap_fresh ? snap->bytes() : 0,
                         GovernPoint::kRetrieve);

  // One span per pipeline stage; PipelineStats stage micros are the span
  // durations, so EXPLAIN/PROFILE and the figure benchmarks report the
  // same numbers from the same clock.
  obs::Span query_span(tracer, "match", obs::Span::Timing::kAlways);
  if (query_span.active()) {
    if (!pattern.name().empty()) query_span.SetAttr("pattern", pattern.name());
    query_span.SetAttr("pattern_nodes", static_cast<int64_t>(k));
    query_span.SetAttr("data_nodes",
                       static_cast<int64_t>(data.NumNodes()));
    query_span.SetAttr("mode", CandidateModeName(options.candidate_mode));
    query_span.SetAttr("indexed", static_cast<int64_t>(index != nullptr));
    query_span.SetAttr("snapshot", static_cast<int64_t>(snap != nullptr));
    if (workers > 0) {
      query_span.SetAttr("threads", static_cast<int64_t>(workers));
    }
  }

  obs::Span retrieve_span(tracer, "retrieve", obs::Span::Timing::kAlways);
  RetrieveParallelInfo retrieve_info;
  std::vector<std::vector<NodeId>> candidates =
      workers > 0 && index != nullptr
          ? RetrieveCandidatesParallel(pattern, data, *index, options, stats,
                                       workers, &retrieve_info, snap)
          : RetrieveCandidates(pattern, data, index, options, stats, snap);
  if (retrieve_span.active()) {
    size_t total = 0;
    for (const auto& c : candidates) total += c.size();
    retrieve_span.SetAttr("candidates", static_cast<int64_t>(total));
    if (retrieve_info.workers > 0) {
      retrieve_span.SetAttr("threads",
                            static_cast<int64_t>(retrieve_info.workers));
      retrieve_span.SetAttr("tasks_stolen",
                            static_cast<int64_t>(retrieve_info.tasks_stolen));
    }
  }
  EmitWorkerLanes(tracer, retrieve_info.lanes);
  retrieve_span.End();

  obs::Span refine_span(tracer, "refine", obs::Span::Timing::kAlways);
  int level = options.refine_level;
  if (level < 0) level = static_cast<int>(k);
  RefineStats refine_stats;
  ParallelRefineStats refine_parallel;
  bool refine_degraded = false;
  if (level > 0 && GovOk(gov)) {
    // Snapshot the candidate sets so a degradable budget trip can fall
    // back to the exact unrefined space; skipped for ungoverned queries.
    std::vector<std::vector<NodeId>> snapshot;
    const bool can_degrade = gov != nullptr && gov->HasLimits();
    if (can_degrade) snapshot = candidates;
    if (workers > 0) {
      RefineSearchSpaceParallel(pattern, data, level, &candidates,
                                &refine_stats, options.refine_use_marking,
                                metrics, gov, options.num_threads, options.pool,
                                &refine_parallel, snap);
    } else {
      RefineSearchSpace(pattern, data, level, &candidates, &refine_stats,
                        options.refine_use_marking, metrics, gov, snap);
    }
    if (refine_stats.aborted && can_degrade && gov->DegradableTrip()) {
      candidates = std::move(snapshot);
      gov->RefundSteps(refine_stats.pairs_charged);
      gov->ClearDegradableTrip();
      gov->NoteDegradation(
          "refine: budget exhausted; fell back to unrefined candidate sets");
      refine_degraded = true;
      if (metrics != nullptr) {
        metrics->GetCounter("governor.degrade.refine")->Increment();
      }
    }
  }
  if (refine_span.active()) {
    refine_span.SetAttr("level", static_cast<int64_t>(level));
    refine_span.SetAttr("bipartite_checks",
                        static_cast<int64_t>(refine_stats.bipartite_checks));
    refine_span.SetAttr("removed",
                        static_cast<int64_t>(refine_stats.removed));
    refine_span.SetAttr("dirty_skips",
                        static_cast<int64_t>(refine_stats.dirty_skips));
    if (refine_parallel.workers > 0) {
      refine_span.SetAttr("threads",
                          static_cast<int64_t>(refine_parallel.workers));
      refine_span.SetAttr("tasks_stolen",
                          static_cast<int64_t>(refine_parallel.tasks_stolen));
    }
    if (refine_degraded) refine_span.SetAttr("degraded", "fallback-unrefined");
  }
  EmitWorkerLanes(tracer, refine_parallel.lanes);
  refine_span.End();
  if (stats != nullptr) {
    stats->refine.bipartite_checks += refine_stats.bipartite_checks;
    stats->refine.removed += refine_stats.removed;
    stats->refine.dirty_skips += refine_stats.dirty_skips;
    stats->refine.levels_run = refine_stats.levels_run;
    stats->refine.pairs_charged += refine_stats.pairs_charged;
    stats->refine.aborted |= refine_stats.aborted;
    stats->refine_degraded |= refine_degraded;
    stats->size_refined.assign(k, 0);
    for (size_t u = 0; u < k; ++u) {
      stats->size_refined[u] = candidates[u].size();
    }
  }

  obs::Span order_span(tracer, "order", obs::Span::Timing::kAlways);
  std::vector<NodeId> order =
      options.optimize_order
          ? GreedySearchOrder(pattern, candidates, index, options.order)
          : DeclarationOrder(pattern);
  if (order_span.active()) {
    order_span.SetAttr("strategy",
                       options.optimize_order ? "greedy-cost" : "declaration");
  }
  order_span.End();

  obs::Span search_span(tracer, "search", obs::Span::Timing::kAlways);
  SearchStats search_stats;
  ParallelSearchStats search_parallel;
  MatchOptions match_options = options.match;
  if (match_options.governor == nullptr) match_options.governor = gov;
  if (match_options.snapshot == nullptr) match_options.snapshot = snap;
  Result<std::vector<algebra::MatchedGraph>> matches =
      workers > 0
          ? SearchMatchesParallel(pattern, data, candidates, order,
                                  match_options, options.num_threads,
                                  options.pool, &search_stats, metrics,
                                  &search_parallel)
          : SearchMatches(pattern, data, candidates, order, match_options,
                          &search_stats, metrics);
  if (search_span.active()) {
    search_span.SetAttr("steps", static_cast<int64_t>(search_stats.steps));
    search_span.SetAttr("backtracks",
                        static_cast<int64_t>(search_stats.backtracks));
    search_span.SetAttr("edge_checks",
                        static_cast<int64_t>(search_stats.edge_checks));
    search_span.SetAttr(
        "matches",
        static_cast<int64_t>(matches.ok() ? matches.value().size() : 0));
    if (search_stats.governor_tripped) {
      search_span.SetAttr("governor_tripped", static_cast<int64_t>(1));
    }
    if (search_parallel.workers > 0) {
      search_span.SetAttr("threads",
                          static_cast<int64_t>(search_parallel.workers));
      search_span.SetAttr("tasks_stolen",
                          static_cast<int64_t>(search_parallel.tasks_stolen));
    }
  }
  EmitWorkerLanes(tracer, search_parallel.lanes);
  search_span.End();

  const bool newly_tripped = gov != nullptr && gov->tripped() && !was_tripped;
  if (newly_tripped && metrics != nullptr) {
    metrics
        ->GetCounter(std::string("governor.trip.") +
                     GovernPointName(gov->trip_point()))
        ->Increment();
  }
  if (query_span.active()) {
    query_span.SetAttr(
        "matches",
        static_cast<int64_t>(matches.ok() ? matches.value().size() : 0));
    if (gov != nullptr && gov->tripped()) {
      query_span.SetAttr("governor_trip", TripKindName(gov->trip_kind()));
    }
  }
  query_span.End();

  if (stats != nullptr) {
    stats->us_retrieve += retrieve_span.DurationMicros();
    stats->us_refine += refine_span.DurationMicros();
    stats->us_order += order_span.DurationMicros();
    stats->us_search += search_span.DurationMicros();
    ++stats->members;
    for (size_t v : stats->size_attr) stats->sum_candidates_attr += v;
    for (size_t v : stats->size_retrieved) {
      stats->sum_candidates_retrieved += v;
    }
    for (size_t v : stats->size_refined) stats->sum_candidates_refined += v;
    stats->est_cost +=
        EstimateOrderCost(pattern, stats->size_refined, order, index,
                          options.order);
    stats->search.steps += search_stats.steps;
    stats->search.edge_checks += search_stats.edge_checks;
    stats->search.backtracks += search_stats.backtracks;
    stats->search.budget_exhausted |= search_stats.budget_exhausted;
    stats->search.truncated |= search_stats.truncated;
    stats->search.governor_tripped |= search_stats.governor_tripped;
    stats->order = order;
    stats->num_matches = matches.ok() ? matches.value().size() : 0;
    stats->threads = workers;
    // Retrieve-stage steals were already added by RetrieveCandidatesParallel.
    stats->tasks_stolen +=
        refine_parallel.tasks_stolen + search_parallel.tasks_stolen;
  }
  if (metrics != nullptr) {
    metrics->GetCounter("match.queries")->Increment();
    metrics->GetHistogram("match.query.us")
        ->Record(static_cast<uint64_t>(query_span.DurationMicros()));
  }
  return matches;
}

Result<std::vector<algebra::MatchedGraph>> SelectCollection(
    const algebra::GraphPattern& pattern, const GraphCollection& collection,
    const PipelineOptions& options) {
  std::vector<algebra::MatchedGraph> out;
  for (const Graph& g : collection) {
    // A tripped governor ends the scan; matches found so far are returned
    // (the caller reads the trip off the governor).
    if (!GovOk(options.governor)) break;
    GQL_ASSIGN_OR_RETURN(std::vector<algebra::MatchedGraph> matches,
                         MatchPattern(pattern, g, /*index=*/nullptr, options));
    for (algebra::MatchedGraph& m : matches) out.push_back(std::move(m));
  }
  return out;
}

Result<std::vector<algebra::MatchedGraph>> SelectCollectionAny(
    const std::vector<algebra::GraphPattern>& alternatives,
    const GraphCollection& collection, const PipelineOptions& options) {
  std::vector<algebra::MatchedGraph> out;
  for (const Graph& g : collection) {
    if (!GovOk(options.governor)) break;
    for (const algebra::GraphPattern& pattern : alternatives) {
      GQL_ASSIGN_OR_RETURN(
          std::vector<algebra::MatchedGraph> matches,
          MatchPattern(pattern, g, /*index=*/nullptr, options));
      if (!matches.empty()) {
        for (algebra::MatchedGraph& m : matches) out.push_back(std::move(m));
        if (!options.match.exhaustive) break;  // One binding per graph.
      }
    }
  }
  return out;
}

bool AreIsomorphic(const Graph& a, const Graph& b) {
  if (a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  if (a.directed() != b.directed()) return false;
  if (!(a.attrs() == b.attrs())) return false;
  auto embeds = [](const Graph& from, const Graph& into) {
    algebra::GraphPattern p = algebra::GraphPattern::FromGraph(from);
    PipelineOptions options;
    options.candidate_mode = CandidateMode::kLabelOnly;
    options.refine_level = -1;
    options.match.exhaustive = false;
    Result<std::vector<algebra::MatchedGraph>> m =
        MatchPattern(p, into, nullptr, options);
    return m.ok() && !m->empty();
  };
  // With equal sizes, mutual embedding pins the node bijection and forces
  // attribute equality in both directions (each side's attributes are a
  // subset of the other's on corresponding entities).
  return embeds(a, b) && embeds(b, a);
}

}  // namespace graphql::match
