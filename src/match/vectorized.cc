#include "match/vectorized.h"

#include <cstdlib>
#include <cstring>
#include <string_view>

#include "obs/metrics.h"

namespace graphql::match {

const char* SelectionKernelName(SelectionKernel k) {
  switch (k) {
    case SelectionKernel::kAuto:
      return "auto";
    case SelectionKernel::kScalar:
      return "scalar";
    case SelectionKernel::kBitmap:
      return "bitmap";
    case SelectionKernel::kBytecode:
      return "bytecode";
  }
  return "auto";
}

SelectionKernel DefaultSelectionKernel() {
  const char* env = std::getenv("GQL_SELECTION");
  if (env == nullptr) return SelectionKernel::kAuto;
  std::string_view s(env);
  if (s == "scalar") return SelectionKernel::kScalar;
  if (s == "bitmap") return SelectionKernel::kBitmap;
  if (s == "bytecode") return SelectionKernel::kBytecode;
  return SelectionKernel::kAuto;
}

SelectionKernel ResolveSelectionKernel(SelectionKernel requested,
                                       size_t base_size, size_t num_nodes,
                                       bool dense_base) {
  if (requested != SelectionKernel::kAuto) return requested;
  // A bitmap fill scans every requirement column in full no matter how
  // selective the base list is; a bytecode probe is O(log column) per
  // candidate. Break even when the base list covers a decent fraction of
  // the graph (full scans always qualify).
  if (dense_base || base_size * 4 >= num_nodes) return SelectionKernel::kBitmap;
  return SelectionKernel::kBytecode;
}

SelectionPlan::SelectionPlan(const algebra::GraphPattern& pattern,
                             const GraphSnapshot& snap,
                             obs::MetricsRegistry* metrics)
    : pattern_(&pattern), snap_(&snap) {
  const size_t k = pattern.graph().NumNodes();
  nodes_.resize(k);
  uint64_t compiled = 0;
  uint64_t fallback = 0;
  for (size_t u = 0; u < k; ++u) {
    NodePlan& np = nodes_[u];
    const auto& reqs = pattern.NodeReqs(static_cast<NodeId>(u));
    np.req_cols.reserve(reqs.size());
    for (const auto& r : reqs) {
      np.req_cols.push_back(snap.NodeColumn(r.attr_sym));
    }
    np.preds = BuildNodePredPlan(pattern, static_cast<NodeId>(u), snap,
                                 &compiled, &fallback);
  }
  if (metrics != nullptr) {
    if (compiled != 0) {
      metrics->GetCounter("match.bytecode.pred_compiled")->Increment(compiled);
    }
    if (fallback != 0) {
      metrics->GetCounter("match.bytecode.pred_fallback")->Increment(fallback);
    }
  }
}

bool SelectionPlan::NodeCompatible(NodeId u, const Graph& data, NodeId v,
                                   algebra::PatternScratch* scratch) const {
  const SymbolId tag = pattern_->node_tag_sym(u);
  if (tag != kNoSymbol && tag != snap_->node_tag_sym(v)) return false;
  const NodePlan& np = nodes_[u];
  const auto& reqs = pattern_->NodeReqs(u);
  for (size_t i = 0; i < reqs.size(); ++i) {
    const GraphSnapshot::Column* col = np.req_cols[i];
    if (col == nullptr) return false;
    if (reqs[i].val_sym != kNoSymbol) {
      if (col->FindValSym(v) != reqs[i].val_sym) return false;
    } else {
      const Value* got = col->Find(v);
      if (got == nullptr || !(*got == reqs[i].value)) return false;
    }
  }
  return PredsOk(u, data, v, scratch);
}

void SelectionPlan::FillStructuralBitmap(NodeId u, PackedBits* bits) const {
  const size_t n = snap_->num_nodes();
  const SymbolId tag = pattern_->node_tag_sym(u);
  if (tag != kNoSymbol) {
    bits->ClearRow(0);
    for (size_t v = 0; v < n; ++v) {
      if (snap_->node_tag_sym(static_cast<NodeId>(v)) == tag) {
        bits->Set(0, v);
      }
    }
  } else {
    bits->SetRow(0);
  }
  const NodePlan& np = nodes_[u];
  const auto& reqs = pattern_->NodeReqs(u);
  for (size_t i = 0; i < reqs.size(); ++i) {
    const GraphSnapshot::Column* col = np.req_cols[i];
    if (col == nullptr) {
      // No such attribute anywhere: the requirement rejects every node.
      bits->ClearRow(0);
      return;
    }
    bits->ClearRow(1);
    const auto& r = reqs[i];
    if (r.val_sym != kNoSymbol) {
      // String equality: interned-symbol compare. val_syms is kNoSymbol
      // for non-string stored values, which correctly never matches.
      for (size_t j = 0; j < col->ids.size(); ++j) {
        if (col->val_syms[j] == r.val_sym) {
          bits->Set(1, static_cast<size_t>(col->ids[j]));
        }
      }
    } else {
      for (size_t j = 0; j < col->ids.size(); ++j) {
        if (col->values[j] == r.value) {
          bits->Set(1, static_cast<size_t>(col->ids[j]));
        }
      }
    }
    bits->AndRow(0, *bits, 1);
    if (bits->PopCountRow(0) == 0) return;
  }
}

bool SelectionPlan::PredsOk(NodeId u, const Graph& data, NodeId v,
                            algebra::PatternScratch* scratch) const {
  const NodePlan& np = nodes_[u];
  for (const auto& c : np.preds.compiled) {
    // kError rejects, exactly like the scalar path's error fold.
    if (c.program.Eval(c.cols, v) != Tri::kTrue) return false;
  }
  if (np.preds.residual.empty()) return true;
  return pattern_->NodePredsOkSubset(u, data, v, np.preds.residual, scratch);
}

void ScanBaseList(const SelectionPlan& plan, NodeId u, const Graph& data,
                  const std::vector<NodeId>& base, SelectionKernel resolved,
                  algebra::PatternScratch* scratch, PackedBits* bits,
                  std::vector<NodeId>* out) {
  if (resolved == SelectionKernel::kBitmap) {
    plan.FillStructuralBitmap(u, bits);
    const bool preds = plan.HasPreds(u);
    for (NodeId v : base) {
      if (!bits->Test(0, static_cast<size_t>(v))) continue;
      if (preds && !plan.PredsOk(u, data, v, scratch)) continue;
      out->push_back(v);
    }
    return;
  }
  for (NodeId v : base) {
    if (plan.NodeCompatible(u, data, v, scratch)) out->push_back(v);
  }
}

}  // namespace graphql::match
