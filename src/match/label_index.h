#ifndef GRAPHQL_MATCH_LABEL_INDEX_H_
#define GRAPHQL_MATCH_LABEL_INDEX_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/symbols.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "match/neighborhood.h"
#include "match/profile.h"
#include "rel/btree.h"

namespace graphql::match {

struct LabelIndexOptions {
  /// Radius of the stored neighborhood subgraphs and profiles (Section 5.1
  /// uses radius 1). Radius 0 degenerates both to plain labels.
  int radius = 1;
  /// Store per-node profiles (cheap: one sorted int vector per node).
  bool build_profiles = true;
  /// Store per-node neighborhood subgraphs (heavier; needed only for
  /// retrieve-by-subgraphs).
  bool build_neighborhoods = true;
  /// Node attributes to index in B+-trees for exact and range retrieval
  /// (the paper's "node attributes can be indexed directly using
  /// traditional index structures such as B-trees", Section 4.2). The
  /// "label" attribute is always covered by the hashtable; list others
  /// here, e.g. {"year", "weight"}.
  std::vector<std::string> indexed_attributes;
};

/// The access-method index over a data graph (Section 4.2): a hashtable
/// from node label to node list (standing in for the attribute B-tree),
/// with optional per-node neighborhood subgraphs and profiles, plus the
/// label / label-pair frequency statistics that drive the cost model of
/// Section 4.4.
///
/// Labels are keyed by process-wide SymbolId (SymbolTable::Global()), the
/// same id space used by GraphSnapshot and profiles, so every structure
/// agrees on what id a label has. The index is built from the graph's
/// compiled snapshot and keeps it alive; B+-trees for indexed attributes
/// are loaded straight from the snapshot's columns.
class LabelIndex {
 public:
  /// Builds the index in one pass over `g`'s snapshot. The graph must
  /// outlive the index (neighborhood extraction and statistics reference
  /// it).
  static LabelIndex Build(const Graph& g, LabelIndexOptions options = {});

  const Graph& graph() const { return *graph_; }
  const LabelIndexOptions& options() const { return options_; }
  /// The compiled snapshot the index was built from.
  const GraphSnapshot& snapshot() const { return *snap_; }

  /// Number of distinct labels appearing in this graph.
  size_t NumLabels() const { return by_label_.size(); }

  /// The label string for a symbol id (empty for kNoSymbol / unknown).
  std::string_view LabelName(SymbolId label) const;

  /// The symbol id for a label string; kNoSymbol if the string was never
  /// interned anywhere in the process (in particular, not in this graph).
  SymbolId LabelSym(std::string_view label) const;

  /// Nodes whose "label" attribute equals `label`; empty list if none.
  const std::vector<NodeId>& NodesWithLabel(std::string_view label) const;
  const std::vector<NodeId>& NodesWithLabelSym(SymbolId label) const;

  /// Nodes with no label attribute (wildcard pattern nodes must scan all
  /// nodes; unlabeled data nodes are still reachable through this list).
  const std::vector<NodeId>& UnlabeledNodes() const { return unlabeled_; }

  bool has_profiles() const { return !profiles_.empty(); }
  bool has_neighborhoods() const { return !neighborhoods_.empty(); }
  const Profile& profile(NodeId v) const { return profiles_[v]; }
  const NeighborhoodSubgraph& neighborhood(NodeId v) const {
    return neighborhoods_[v];
  }

  /// Number of nodes carrying the label symbol (0 if unknown).
  size_t LabelFrequency(SymbolId label) const;
  size_t LabelFrequency(std::string_view label) const;

  /// Number of edges whose endpoint labels are (a, b), order-insensitive
  /// for undirected graphs.
  size_t EdgePairFrequency(SymbolId a, SymbolId b) const;

  /// The cost model's edge probability P(e(u,v)) = freq(e) /
  /// (freq(u) * freq(v)) for endpoint labels (a, b) (Section 4.4).
  /// Returns `fallback` when either label is unknown or unlabeled.
  double EdgeProbability(SymbolId a, SymbolId b, double fallback) const;

  /// Label symbols sorted by descending frequency, ties broken by first
  /// appearance in the graph (deterministic regardless of global
  /// interning history; used by the clique-query generator, which samples
  /// from the top 40 most frequent labels).
  std::vector<SymbolId> LabelsByFrequency() const;

  /// True if `attr` was listed in LabelIndexOptions::indexed_attributes.
  bool HasAttributeIndex(std::string_view attr) const;

  /// Nodes whose `attr` equals `v` (empty when the attribute is not
  /// indexed; nodes lacking the attribute are never returned).
  std::vector<NodeId> AttrExact(std::string_view attr, const Value& v) const;

  /// Nodes whose `attr` falls in the given interval (null bound =
  /// unbounded). Ordered by attribute value.
  std::vector<NodeId> AttrRange(std::string_view attr, const Value* lo,
                                bool lo_inclusive, const Value* hi,
                                bool hi_inclusive) const;

 private:
  const Graph* graph_ = nullptr;
  std::shared_ptr<const GraphSnapshot> snap_;
  LabelIndexOptions options_;
  std::unordered_map<SymbolId, std::vector<NodeId>> by_label_;
  std::vector<NodeId> unlabeled_;
  std::vector<Profile> profiles_;
  std::vector<NeighborhoodSubgraph> neighborhoods_;
  std::unordered_map<uint64_t, size_t> edge_pair_freq_;
  std::unordered_map<std::string, rel::BPlusTree> attr_trees_;
  std::vector<NodeId> empty_;
};

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_LABEL_INDEX_H_
