#ifndef GRAPHQL_MATCH_COST_H_
#define GRAPHQL_MATCH_COST_H_

#include <vector>

#include "algebra/pattern.h"
#include "graph/graph.h"
#include "match/label_index.h"

namespace graphql::match {

/// Options for the cost model of Section 4.4.
struct OrderOptions {
  /// Reduction factor used when edge probabilities are unavailable (the
  /// paper's "approximate it by a constant").
  double constant_gamma = 0.5;
  /// Estimate per-edge reduction factors as P(e(u,v)) =
  /// freq(e) / (freq(u) * freq(v)) from the label statistics.
  bool use_edge_probs = true;
};

/// Greedy left-deep search-order selection (Section 4.4): at each join,
/// pick the remaining pattern node minimizing the estimated join cost
/// Size(left) x Size(right); ties are broken by the estimated result size
/// (which folds in the reduction factor, preferring selective, connected
/// extensions) and then by node id for determinism.
///
/// `candidates[u].size()` supplies the leaf cardinalities |Phi(u)|.
/// `index` may be null (constant reduction factor is then used).
std::vector<NodeId> GreedySearchOrder(
    const algebra::GraphPattern& pattern,
    const std::vector<std::vector<NodeId>>& candidates,
    const LabelIndex* index, const OrderOptions& options = {});

/// Largest pattern for which exact DP ordering is permitted (2^k states).
inline constexpr size_t kMaxDpPatternSize = 20;

/// Exact left-deep search-order selection by dynamic programming over
/// node subsets (O(2^k k^2)). The paper observes that "traditional dynamic
/// programming does not scale well with the number of joins", motivating
/// its greedy choice; this implementation makes that trade-off measurable
/// (see bench_ablation_order). The estimated size of a joined subset is
/// order-independent (each edge's reduction factor applies exactly once,
/// when its second endpoint joins), which makes the subset DP exact for
/// the cost model of Definitions 4.11-4.13.
///
/// Fails with InvalidArgument for patterns above kMaxDpPatternSize nodes.
Result<std::vector<NodeId>> DpSearchOrder(
    const algebra::GraphPattern& pattern,
    const std::vector<std::vector<NodeId>>& candidates,
    const LabelIndex* index, const OrderOptions& options = {});

/// Total estimated cost of a given search order (Definition 4.13):
/// sum over joins of Size(left) x Size(right), with
/// Size(i) = Size(left) x Size(right) x gamma(i). Exposed for tests and
/// the search-order ablation benchmark.
double EstimateOrderCost(const algebra::GraphPattern& pattern,
                         const std::vector<size_t>& candidate_sizes,
                         const std::vector<NodeId>& order,
                         const LabelIndex* index,
                         const OrderOptions& options = {});

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_COST_H_
