#ifndef GRAPHQL_MATCH_PRED_BYTECODE_H_
#define GRAPHQL_MATCH_PRED_BYTECODE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/symbols.h"
#include "common/value.h"
#include "graph/snapshot.h"
#include "lang/ast.h"

namespace graphql::algebra {
class GraphPattern;
}

namespace graphql::match {

/// Three-valued predicate verdict. kError stands for an evaluation error
/// (e.g. ordering a string against a number), which the scalar path treats
/// as "predicate rejects" — but which must still poison And/Or exactly the
/// way GQL_ASSIGN_OR_RETURN propagates through EvalExpr.
enum class Tri : uint8_t { kFalse = 0, kTrue = 1, kError = 2 };

/// A pushed-down single-node predicate compiled to a flat register
/// bytecode executed against snapshot columns, replacing the per-candidate
/// AST walk (Bindings setup + ResolvePath + recursive EvalExpr) of the
/// scalar path.
///
/// Covered ISA: comparisons (== != < <= > >=) between an attribute of the
/// predicate's own pattern node and a literal (or attribute/attribute,
/// literal/literal), truthiness of a bare attribute reference, literal
/// leaves, and And/Or combinations thereof. String equality compiles to an
/// interned-symbol compare against Column::FindValSym. Anything else
/// (arithmetic, references to other nodes, graph attributes) makes
/// CompileNodePred return nullopt and the caller falls back to the AST
/// interpreter for that conjunct.
///
/// Exactness contract: for every data node the program's verdict equals
/// `EvalPredicate(pred, bindings)` under NodePredsOk's bindings — kTrue
/// iff the scalar predicate accepts, kFalse/kError iff it rejects (the
/// scalar path folds errors into rejection). Eager evaluation plus
/// three-valued And/Or combinators reproduces EvalExpr's short-circuit
/// semantics because every compiled operand is side-effect-free:
/// And(lhs=false, rhs=would-error) is kFalse on both paths.
class PredProgram {
 public:
  /// Compiles one conjunct pushed to pattern node `u`. nullopt when the
  /// expression uses anything outside the bytecode ISA.
  static std::optional<PredProgram> CompileNodePred(
      const algebra::GraphPattern& pattern, NodeId u, const lang::Expr& pred);

  /// Attribute symbols the program reads; the caller resolves each to a
  /// snapshot column once (nullptr when the snapshot has no such column)
  /// and passes the array to Eval.
  const std::vector<SymbolId>& attr_syms() const { return attr_syms_; }

  /// Executes the program for data node `v`. `cols` is parallel to
  /// attr_syms().
  Tri Eval(std::span<const GraphSnapshot::Column* const> cols,
           int32_t v) const;

  /// Instruction count (observability/testing).
  size_t size() const { return insns_.size(); }

 private:
  struct Insn {
    enum class Op : uint8_t {
      kConst,       ///< reg[dst] = imm
      kAttrTruthy,  ///< reg[dst] = Truthy(attr[slot] at v); absent → false
      kEqSym,       ///< reg[dst] = (FindValSym(v) == sym)
      kNeSym,       ///< reg[dst] = (FindValSym(v) != sym)
      kCmp,         ///< reg[dst] = cmp(lhs, rhs) per EvalExpr semantics
      kAnd,         ///< reg[dst] = And3(reg[a], reg[b])
      kOr,          ///< reg[dst] = Or3(reg[a], reg[b])
    };
    Op op;
    uint8_t dst = 0;
    uint8_t a = 0;
    uint8_t b = 0;
    Tri imm = Tri::kFalse;
    uint16_t slot = 0;            ///< Attr slot (kAttrTruthy/kEqSym/kNeSym).
    SymbolId sym = kNoSymbol;     ///< Interned string literal (k{Eq,Ne}Sym).
    lang::BinaryOp cmp{};         ///< kCmp comparison operator.
    bool lhs_is_attr = false;     ///< kCmp lhs: attr slot vs. const pool.
    bool rhs_is_attr = false;
    uint16_t lhs = 0;
    uint16_t rhs = 0;
  };

  static constexpr size_t kMaxRegs = 64;

  class Compiler;

  std::vector<Insn> insns_;
  std::vector<Value> consts_;
  std::vector<SymbolId> attr_syms_;
  uint8_t num_regs_ = 0;
};

/// All compiled node predicates of one pattern, plus the per-conjunct
/// fallback bookkeeping. Built once per (pattern, retrieve) by the
/// vectorized kernels; read-only afterwards (workers share it).
struct NodePredPlan {
  /// One compiled conjunct of NodePreds(u).
  struct Compiled {
    PredProgram program;
    /// Column pointers parallel to program.attr_syms(), bound to the
    /// snapshot the plan was built for.
    std::vector<const GraphSnapshot::Column*> cols;
  };
  std::vector<Compiled> compiled;
  /// Indices into NodePreds(u) the compiler did not cover; evaluated via
  /// the AST interpreter (GraphPattern::NodePredsOkSubset).
  std::vector<uint32_t> residual;
};

/// Builds the predicate plan for pattern node `u` against `snap`:
/// compiles every pushed conjunct it can, records the rest as residual.
/// `compiled_count`/`fallback_count` (optional) receive the per-conjunct
/// coverage tallies for the `match.bytecode.*` metrics.
NodePredPlan BuildNodePredPlan(const algebra::GraphPattern& pattern, NodeId u,
                               const GraphSnapshot& snap,
                               uint64_t* compiled_count = nullptr,
                               uint64_t* fallback_count = nullptr);

}  // namespace graphql::match

#endif  // GRAPHQL_MATCH_PRED_BYTECODE_H_
