#include "match/pred_bytecode.h"

#include "algebra/pattern.h"

namespace graphql::match {

namespace {

Tri TriOf(bool b) { return b ? Tri::kTrue : Tri::kFalse; }

/// And/Or over three-valued verdicts, matching EvalExpr's short-circuit:
/// an error in the left operand propagates; a decided left operand hides
/// whatever the right would have done (including erroring), which is safe
/// here because compiled operands are side-effect-free.
Tri And3(Tri a, Tri b) {
  if (a == Tri::kError) return Tri::kError;
  if (a == Tri::kFalse) return Tri::kFalse;
  return b;
}
Tri Or3(Tri a, Tri b) {
  if (a == Tri::kError) return Tri::kError;
  if (a == Tri::kTrue) return Tri::kTrue;
  return b;
}

}  // namespace

/// Recursive-descent compiler from a conjunct's AST to the register
/// bytecode. Every helper returns the register holding the sub-verdict,
/// or -1 when the construct is outside the ISA (the whole compile then
/// fails and the conjunct stays on the AST interpreter).
class PredProgram::Compiler {
 public:
  Compiler(const algebra::GraphPattern& pattern, NodeId u, PredProgram* out)
      : pattern_(pattern), u_(u), out_(out) {}

  bool Compile(const lang::Expr& pred) {
    int reg = CompileExpr(pred);
    if (reg < 0) return false;
    out_->num_regs_ = static_cast<uint8_t>(next_reg_);
    return true;
  }

 private:
  int AllocReg() {
    if (next_reg_ >= static_cast<int>(kMaxRegs)) return -1;
    return next_reg_++;
  }

  /// Slot in the attr table for an attribute symbol (deduplicated).
  uint16_t SlotFor(SymbolId sym) {
    for (size_t i = 0; i < out_->attr_syms_.size(); ++i) {
      if (out_->attr_syms_[i] == sym) return static_cast<uint16_t>(i);
    }
    out_->attr_syms_.push_back(sym);
    return static_cast<uint16_t>(out_->attr_syms_.size() - 1);
  }

  /// Maps a dotted path to an attribute of pattern node u_, reproducing
  /// the resolution Bindings::ResolvePath performs under NodePredsOk's
  /// environment (current node = v, default + pattern-name binding over
  /// the pattern's node names, mapping live only for u_). Paths that
  /// resolve to anything else — another node (scalar path: unmapped →
  /// error → reject), a graph attribute ({pattern-name, attr}), a data
  /// edge name — are not compiled.
  std::optional<uint16_t> AttrSlotFor(const std::vector<std::string>& path) {
    const std::string& pname = pattern_.name();
    const auto& names = pattern_.node_names();
    if (path.size() == 1) {
      // Bare name: attribute of the current node.
      return SlotFor(SymbolTable::Global().Intern(path[0]));
    }
    if (path.size() == 2) {
      // {pattern-name, attr} resolves to a *graph* attribute upstream;
      // leave it to the interpreter.
      if (!pname.empty() && path[0] == pname) return std::nullopt;
      auto it = names.find(path[0]);
      if (it == names.end() || it->second != u_) return std::nullopt;
      return SlotFor(SymbolTable::Global().Intern(path[1]));
    }
    if (path.size() == 3 && !pname.empty() && path[0] == pname) {
      auto it = names.find(path[1]);
      if (it == names.end() || it->second != u_) return std::nullopt;
      return SlotFor(SymbolTable::Global().Intern(path[2]));
    }
    return std::nullopt;
  }

  uint16_t ConstSlot(const Value& v) {
    out_->consts_.push_back(v);
    return static_cast<uint16_t>(out_->consts_.size() - 1);
  }

  static bool IsComparison(lang::BinaryOp op) {
    switch (op) {
      case lang::BinaryOp::kEq:
      case lang::BinaryOp::kNe:
      case lang::BinaryOp::kLt:
      case lang::BinaryOp::kLe:
      case lang::BinaryOp::kGt:
      case lang::BinaryOp::kGe:
        return true;
      default:
        return false;
    }
  }

  int CompileComparison(const lang::Expr& e) {
    // Operands must be literals or own-node attribute references;
    // arithmetic subexpressions fall back.
    struct Operand {
      bool is_attr = false;
      uint16_t index = 0;
      const Value* literal = nullptr;
    };
    auto classify = [&](const lang::Expr& o) -> std::optional<Operand> {
      if (o.kind == lang::Expr::Kind::kLiteral) {
        return Operand{false, 0, &o.literal};
      }
      if (o.kind == lang::Expr::Kind::kName) {
        std::optional<uint16_t> slot = AttrSlotFor(o.path);
        if (!slot) return std::nullopt;
        return Operand{true, *slot, nullptr};
      }
      return std::nullopt;
    };
    std::optional<Operand> lhs = classify(*e.lhs);
    std::optional<Operand> rhs = classify(*e.rhs);
    if (!lhs || !rhs) return -1;

    // String equality fast path: one attr side, one string-literal side
    // becomes a symbol compare (== and != are symmetric in their null
    // handling, so operand order does not matter here).
    if (e.op == lang::BinaryOp::kEq || e.op == lang::BinaryOp::kNe) {
      const Operand* attr = nullptr;
      const Operand* lit = nullptr;
      if (lhs->is_attr && !rhs->is_attr) {
        attr = &*lhs;
        lit = &*rhs;
      } else if (rhs->is_attr && !lhs->is_attr) {
        attr = &*rhs;
        lit = &*lhs;
      }
      if (attr != nullptr && lit->literal->is_string()) {
        int dst = AllocReg();
        if (dst < 0) return -1;
        Insn insn;
        insn.op = e.op == lang::BinaryOp::kEq ? Insn::Op::kEqSym
                                              : Insn::Op::kNeSym;
        insn.dst = static_cast<uint8_t>(dst);
        insn.slot = attr->index;
        insn.sym = SymbolTable::Global().Intern(lit->literal->AsString());
        out_->insns_.push_back(insn);
        return dst;
      }
    }

    int dst = AllocReg();
    if (dst < 0) return -1;
    Insn insn;
    insn.op = Insn::Op::kCmp;
    insn.dst = static_cast<uint8_t>(dst);
    insn.cmp = e.op;
    insn.lhs_is_attr = lhs->is_attr;
    insn.lhs = lhs->is_attr ? lhs->index : ConstSlot(*lhs->literal);
    insn.rhs_is_attr = rhs->is_attr;
    insn.rhs = rhs->is_attr ? rhs->index : ConstSlot(*rhs->literal);
    out_->insns_.push_back(insn);
    return dst;
  }

  int CompileExpr(const lang::Expr& e) {
    switch (e.kind) {
      case lang::Expr::Kind::kLiteral: {
        int dst = AllocReg();
        if (dst < 0) return -1;
        Insn insn;
        insn.op = Insn::Op::kConst;
        insn.dst = static_cast<uint8_t>(dst);
        insn.imm = TriOf(e.literal.Truthy());
        out_->insns_.push_back(insn);
        return dst;
      }
      case lang::Expr::Kind::kName: {
        std::optional<uint16_t> slot = AttrSlotFor(e.path);
        if (!slot) return -1;
        int dst = AllocReg();
        if (dst < 0) return -1;
        Insn insn;
        insn.op = Insn::Op::kAttrTruthy;
        insn.dst = static_cast<uint8_t>(dst);
        insn.slot = *slot;
        out_->insns_.push_back(insn);
        return dst;
      }
      case lang::Expr::Kind::kBinary: {
        if (e.op == lang::BinaryOp::kAnd || e.op == lang::BinaryOp::kOr) {
          int a = CompileExpr(*e.lhs);
          if (a < 0) return -1;
          int b = CompileExpr(*e.rhs);
          if (b < 0) return -1;
          int dst = AllocReg();
          if (dst < 0) return -1;
          Insn insn;
          insn.op = e.op == lang::BinaryOp::kAnd ? Insn::Op::kAnd
                                                 : Insn::Op::kOr;
          insn.dst = static_cast<uint8_t>(dst);
          insn.a = static_cast<uint8_t>(a);
          insn.b = static_cast<uint8_t>(b);
          out_->insns_.push_back(insn);
          return dst;
        }
        if (IsComparison(e.op)) return CompileComparison(e);
        return -1;  // Arithmetic: interpreter fallback.
      }
    }
    return -1;
  }

  const algebra::GraphPattern& pattern_;
  NodeId u_;
  PredProgram* out_;
  int next_reg_ = 0;
};

std::optional<PredProgram> PredProgram::CompileNodePred(
    const algebra::GraphPattern& pattern, NodeId u, const lang::Expr& pred) {
  PredProgram prog;
  Compiler compiler(pattern, u, &prog);
  if (!compiler.Compile(pred)) return std::nullopt;
  return prog;
}

Tri PredProgram::Eval(std::span<const GraphSnapshot::Column* const> cols,
                      int32_t v) const {
  static const Value kNullValue;
  Tri regs[kMaxRegs];
  auto attr_value = [&](uint16_t slot) -> const Value* {
    const GraphSnapshot::Column* col = cols[slot];
    if (col == nullptr) return &kNullValue;  // Absent attribute: null.
    const Value* got = col->Find(v);
    return got != nullptr ? got : &kNullValue;
  };
  for (const Insn& insn : insns_) {
    switch (insn.op) {
      case Insn::Op::kConst:
        regs[insn.dst] = insn.imm;
        break;
      case Insn::Op::kAttrTruthy:
        regs[insn.dst] = TriOf(attr_value(insn.slot)->Truthy());
        break;
      case Insn::Op::kEqSym: {
        // Equal iff the stored value is the same interned string; absent
        // (null never equals) and non-string (kind mismatch) both yield
        // kNoSymbol, which a real symbol never equals.
        const GraphSnapshot::Column* col = cols[insn.slot];
        SymbolId got = col != nullptr ? col->FindValSym(v) : kNoSymbol;
        regs[insn.dst] = TriOf(got == insn.sym);
        break;
      }
      case Insn::Op::kNeSym: {
        const GraphSnapshot::Column* col = cols[insn.slot];
        SymbolId got = col != nullptr ? col->FindValSym(v) : kNoSymbol;
        regs[insn.dst] = TriOf(got != insn.sym);
        break;
      }
      case Insn::Op::kCmp: {
        const Value* lv =
            insn.lhs_is_attr ? attr_value(insn.lhs) : &consts_[insn.lhs];
        const Value* rv =
            insn.rhs_is_attr ? attr_value(insn.rhs) : &consts_[insn.rhs];
        Tri verdict;
        switch (insn.cmp) {
          case lang::BinaryOp::kEq:
            verdict = (lv->is_null() || rv->is_null())
                          ? Tri::kFalse
                          : TriOf(*lv == *rv);
            break;
          case lang::BinaryOp::kNe:
            verdict = (lv->is_null() || rv->is_null())
                          ? Tri::kTrue
                          : TriOf(*lv != *rv);
            break;
          case lang::BinaryOp::kLt:
          case lang::BinaryOp::kLe:
          case lang::BinaryOp::kGt:
          case lang::BinaryOp::kGe: {
            if (lv->is_null() || rv->is_null()) {
              verdict = Tri::kFalse;
              break;
            }
            // kGt/kGe evaluate as Less/LessEq with the operands swapped,
            // exactly as EvalExpr does.
            const Value* a = lv;
            const Value* b = rv;
            if (insn.cmp == lang::BinaryOp::kGt ||
                insn.cmp == lang::BinaryOp::kGe) {
              std::swap(a, b);
            }
            Result<bool> r = (insn.cmp == lang::BinaryOp::kLt ||
                              insn.cmp == lang::BinaryOp::kGt)
                                 ? Value::Less(*a, *b)
                                 : Value::LessEq(*a, *b);
            verdict = r.ok() ? TriOf(r.value()) : Tri::kError;
            break;
          }
          default:
            verdict = Tri::kError;  // Unreachable: compiler gates ops.
            break;
        }
        regs[insn.dst] = verdict;
        break;
      }
      case Insn::Op::kAnd:
        regs[insn.dst] = And3(regs[insn.a], regs[insn.b]);
        break;
      case Insn::Op::kOr:
        regs[insn.dst] = Or3(regs[insn.a], regs[insn.b]);
        break;
    }
  }
  return insns_.empty() ? Tri::kError : regs[insns_.back().dst];
}

NodePredPlan BuildNodePredPlan(const algebra::GraphPattern& pattern, NodeId u,
                               const GraphSnapshot& snap,
                               uint64_t* compiled_count,
                               uint64_t* fallback_count) {
  NodePredPlan plan;
  const std::vector<lang::ExprPtr>& preds = pattern.NodePreds(u);
  for (size_t i = 0; i < preds.size(); ++i) {
    std::optional<PredProgram> prog =
        PredProgram::CompileNodePred(pattern, u, *preds[i]);
    if (!prog) {
      plan.residual.push_back(static_cast<uint32_t>(i));
      if (fallback_count != nullptr) ++*fallback_count;
      continue;
    }
    NodePredPlan::Compiled c;
    c.program = std::move(*prog);
    c.cols.reserve(c.program.attr_syms().size());
    for (SymbolId sym : c.program.attr_syms()) {
      c.cols.push_back(snap.NodeColumn(sym));
    }
    plan.compiled.push_back(std::move(c));
    if (compiled_count != nullptr) ++*compiled_count;
  }
  return plan;
}

}  // namespace graphql::match
