#include "obs/clock.h"

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace graphql::obs {

int64_t ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
#else
  return 0;
#endif
}

}  // namespace graphql::obs
