#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "obs/clock.h"
#include "obs/json.h"

namespace graphql::obs {

const TraceNode* TraceNode::Child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

int64_t TraceNode::Attr(std::string_view key, int64_t fallback) const {
  for (const TraceAttr& a : attrs) {
    if (a.is_num && a.key == key) return a.num;
  }
  return fallback;
}

void TraceNode::SetAttr(std::string_view key, int64_t value) {
  TraceAttr a;
  a.key = std::string(key);
  a.num = value;
  a.is_num = true;
  attrs.push_back(std::move(a));
}

void TraceNode::SetAttr(std::string_view key, std::string_view value) {
  TraceAttr a;
  a.key = std::string(key);
  a.text = std::string(value);
  attrs.push_back(std::move(a));
}

void Tracer::Reset() {
  roots_.clear();
  stack_.clear();
  num_nodes_ = 0;
  dropped_ = 0;
}

TraceNode* Tracer::BeginSpan(std::string_view name, int64_t start_us) {
  if (!enabled_) return nullptr;
  if (num_nodes_ >= max_nodes_) {
    ++dropped_;
    return nullptr;
  }
  auto node = std::make_unique<TraceNode>();
  node->name = std::string(name);
  node->start_us = start_us;
  TraceNode* raw = node.get();
  if (stack_.empty()) {
    roots_.push_back(std::move(node));
  } else {
    stack_.back()->children.push_back(std::move(node));
  }
  stack_.push_back(raw);
  ++num_nodes_;
  return raw;
}

TraceNode* Tracer::AddCompleted(std::string_view name, int64_t start_us,
                                int64_t duration_us) {
  if (!enabled_) return nullptr;
  if (num_nodes_ >= max_nodes_) {
    ++dropped_;
    return nullptr;
  }
  auto node = std::make_unique<TraceNode>();
  node->name = std::string(name);
  node->start_us = start_us;
  node->duration_us = duration_us;
  TraceNode* raw = node.get();
  if (stack_.empty()) {
    roots_.push_back(std::move(node));
  } else {
    stack_.back()->children.push_back(std::move(node));
  }
  ++num_nodes_;
  return raw;
}

void Tracer::EndSpan(TraceNode* node) {
  // Well-nested RAII spans end in reverse begin order; pop defensively in
  // case an inner span outlived its parent.
  while (!stack_.empty()) {
    TraceNode* top = stack_.back();
    stack_.pop_back();
    if (top == node) break;
  }
}

namespace {

void AppendDuration(int64_t us, std::string* out) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(us) / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "us", us);
  }
  out->append(buf);
}

void NodeToText(const TraceNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.name);
  out->append("  ");
  AppendDuration(node.duration_us, out);
  for (const TraceAttr& a : node.attrs) {
    out->append("  ");
    out->append(a.key);
    out->push_back('=');
    if (a.is_num) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%" PRId64, a.num);
      out->append(buf);
    } else {
      out->append(a.text);
    }
  }
  out->push_back('\n');
  for (const auto& c : node.children) NodeToText(*c, depth + 1, out);
}

void NodeToJson(const TraceNode& node, std::string* out) {
  char buf[32];
  out->append("{\"name\":");
  AppendJsonString(node.name, out);
  std::snprintf(buf, sizeof(buf), ",\"start_us\":%" PRId64, node.start_us);
  out->append(buf);
  std::snprintf(buf, sizeof(buf), ",\"us\":%" PRId64, node.duration_us);
  out->append(buf);
  if (!node.attrs.empty()) {
    out->append(",\"attrs\":{");
    bool first = true;
    for (const TraceAttr& a : node.attrs) {
      if (!first) out->push_back(',');
      first = false;
      AppendJsonString(a.key, out);
      out->push_back(':');
      if (a.is_num) {
        std::snprintf(buf, sizeof(buf), "%" PRId64, a.num);
        out->append(buf);
      } else {
        AppendJsonString(a.text, out);
      }
    }
    out->push_back('}');
  }
  if (!node.children.empty()) {
    out->append(",\"children\":[");
    bool first = true;
    for (const auto& c : node.children) {
      if (!first) out->push_back(',');
      first = false;
      NodeToJson(*c, out);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

}  // namespace

std::string Tracer::ToText() const {
  std::string out;
  for (const auto& r : roots_) NodeToText(*r, 0, &out);
  if (dropped_ > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "(%zu spans dropped over node cap)\n",
                  dropped_);
    out.append(buf);
  }
  return out;
}

std::string Tracer::ToJson() const {
  std::string out = "[";
  bool first = true;
  for (const auto& r : roots_) {
    if (!first) out.push_back(',');
    first = false;
    NodeToJson(*r, &out);
  }
  out.push_back(']');
  return out;
}

Span::Span(Tracer* tracer, std::string_view name, Timing timing)
    : tracer_(tracer) {
  bool active = tracer != nullptr && tracer->enabled();
  timed_ = active || timing == Timing::kAlways;
  if (!timed_) return;
  start_us_ = NowMicros();
  if (active) node_ = tracer_->BeginSpan(name, start_us_);
}

void Span::SetAttr(std::string_view key, int64_t value) {
  if (node_ == nullptr) return;
  TraceAttr a;
  a.key = std::string(key);
  a.num = value;
  a.is_num = true;
  node_->attrs.push_back(std::move(a));
}

void Span::SetAttr(std::string_view key, std::string_view value) {
  if (node_ == nullptr) return;
  TraceAttr a;
  a.key = std::string(key);
  a.text = std::string(value);
  node_->attrs.push_back(std::move(a));
}

void Span::End() {
  if (ended_) return;
  ended_ = true;
  if (timed_) duration_us_ = NowMicros() - start_us_;
  if (node_ != nullptr) {
    node_->duration_us = duration_us_;
    tracer_->EndSpan(node_);
    node_ = nullptr;
  }
}

}  // namespace graphql::obs
