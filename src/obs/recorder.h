#ifndef GRAPHQL_OBS_RECORDER_H_
#define GRAPHQL_OBS_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace graphql::obs {

class Tracer;

/// Everything the flight recorder keeps about one query execution. Small
/// and self-contained (a few ints plus the normalized query shape), so a
/// full ring of them costs on the order of tens of kilobytes.
struct QueryRecord {
  uint64_t id = 0;        ///< Monotonic per-recorder sequence number.
  int64_t start_us = 0;   ///< NowMicros() when the run began.
  /// Session/connection label ("s17" for server connection 17, "shell"
  /// for gqlsh). Empty for unattributed embedded use. With a recorder
  /// shared across server sessions this is what makes `:recent`/`:slow`
  /// and the slow-query log attributable per client.
  std::string session;
  /// Query text with literals replaced by `?`, so executions of the same
  /// statement with different constants aggregate together (`:top`).
  std::string shape;
  uint64_t shape_hash = 0;  ///< FNV-1a of `shape`.
  int64_t wall_us = 0;      ///< Wall-clock duration of the whole program.
  int64_t cpu_us = 0;       ///< Coordinator-thread CPU time consumed.
  /// Per-stage wall micros summed over the program's FLWR selections
  /// (lifted from the retrieve/refine/order/search span durations).
  int64_t us_retrieve = 0;
  int64_t us_refine = 0;
  int64_t us_order = 0;
  int64_t us_search = 0;
  uint64_t steps = 0;              ///< Governor steps charged.
  uint64_t peak_memory_bytes = 0;  ///< Governor peak reserved bytes.
  int threads = 0;                 ///< Max workers across selections.
  uint64_t tasks_stolen = 0;       ///< Work-stealing events, all stages.
  uint64_t matches = 0;            ///< Subgraphs matched by selections.
  uint64_t returned = 0;           ///< Graphs in QueryResult::returned.
  bool ok = true;                  ///< Run finished without an error Status.
  bool tripped = false;            ///< A governor limit ended the query.
  bool truncated = false;          ///< A selection hit max_matches.
  bool degraded = false;           ///< Graceful degradation occurred.
  std::string trip;  ///< "kind@point" when tripped, else empty.
  std::string error;  ///< Error Status message when !ok.

  /// Single-line rendering for `:recent` style listings.
  std::string ToLine() const;
  /// One JSON object (the admin-endpoint export unit).
  std::string ToJson() const;
};

/// Aggregate of every recorded execution of one query shape (`:top`).
struct ShapeAggregate {
  std::string shape;
  uint64_t shape_hash = 0;
  uint64_t count = 0;
  int64_t total_us = 0;
  int64_t max_us = 0;
  uint64_t tripped = 0;  ///< Executions that hit a governor limit.

  int64_t MeanMicros() const {
    return count == 0 ? 0 : total_us / static_cast<int64_t>(count);
  }
};

/// A slow-query-log entry: the record plus the full trace tree captured
/// at completion (text for shells, JSON for exports) and the profile JSON
/// when the run was profiled.
struct SlowQueryEntry {
  QueryRecord record;
  std::string trace_text;
  std::string trace_json;
  std::string profile_json;
};

/// Fixed-capacity, thread-safe ring buffer of per-query telemetry — the
/// always-on flight recorder every Evaluator::Run appends to. Appends are
/// a mutex acquire plus a couple of copies; there is no per-query
/// allocation beyond the record itself, so recording is cheap enough to
/// leave on in production (see bench_storage_snapshot's recorder lane).
///
/// Three views over the stream:
///  - Recent(n): the last n records, newest first (`:recent`).
///  - Slow(n):  the retained slow-query entries with full traces
///    (`:slow`) — a query is retained when its wall time reaches
///    slow_threshold_us, or when it tripped a governor limit.
///  - Top(n):   per-shape aggregates over the recorder's whole history,
///    by total wall time (`:top`).
///
/// Environment defaults: GQL_RECORDER_CAPACITY (records kept),
/// GQL_SLOW_QUERY_MS (slow threshold; 0 disables the wall-time trigger —
/// limit trips are always retained).
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;
  static constexpr size_t kDefaultSlowCapacity = 32;
  /// Shape aggregation is bounded; the least-recently-created shapes fold
  /// into an "(other)" bucket once the table is full.
  static constexpr size_t kMaxShapes = 1024;

  /// Capacities <= 0 fall back to the defaults; env knobs override.
  FlightRecorder();
  FlightRecorder(size_t capacity, size_t slow_capacity);

  void set_enabled(bool on);
  bool enabled() const;

  /// Wall-time threshold for slow-log retention; 0 disables it (limit
  /// trips are still retained).
  void set_slow_threshold_us(int64_t us);
  int64_t slow_threshold_us() const;

  /// True when an upcoming query should run with tracing enabled so a
  /// slow-log entry can carry its full trace: the recorder is on and
  /// either the wall-time trigger or the governed-query trigger is in
  /// scope. `governed` says whether the query runs under resource limits.
  bool WantsTrace(bool governed) const;

  /// Records one finished query. Fills record.id, appends to the ring,
  /// folds the shape aggregate, and — when the record qualifies as slow —
  /// retains a SlowQueryEntry rendering the tracer's current tree
  /// (`tracer` may be null; `profile_json` may be empty). Returns the
  /// assigned id.
  uint64_t Append(QueryRecord record, const Tracer* tracer,
                  std::string profile_json);

  /// The last min(n, size) records, newest first.
  std::vector<QueryRecord> Recent(size_t n) const;
  /// Retained slow-query entries, newest first.
  std::vector<SlowQueryEntry> Slow(size_t n) const;
  /// Shape aggregates ordered by total wall time, heaviest first.
  std::vector<ShapeAggregate> Top(size_t n) const;
  /// Snapshot of the wall-time histogram over every recorded query
  /// (P50/P95/P99 for `:top` footers and admin endpoints).
  HistogramSnapshot WallHistogram() const;

  size_t size() const;
  size_t capacity() const;
  /// Records that fell off the ring so far.
  uint64_t dropped() const;
  size_t slow_size() const;

  /// Clears records, slow entries, and aggregates (capacity, threshold,
  /// and the id sequence are unchanged).
  void Clear();

  /// {"records":[...],"slow_count":N,...} for admin-style consumers.
  std::string ToJson(size_t n) const;

  /// FNV-1a, the shape hash used by QueryRecord.
  static uint64_t HashShape(std::string_view shape);

 private:
  void FoldShapeLocked(const QueryRecord& record) GQL_REQUIRES(mu_);

  mutable Mutex mu_;
  bool enabled_ GQL_GUARDED_BY(mu_) = true;
  size_t capacity_ GQL_GUARDED_BY(mu_);
  size_t slow_capacity_ GQL_GUARDED_BY(mu_);
  int64_t slow_threshold_us_ GQL_GUARDED_BY(mu_) = 0;
  uint64_t next_id_ GQL_GUARDED_BY(mu_) = 1;
  uint64_t dropped_ GQL_GUARDED_BY(mu_) = 0;
  std::deque<QueryRecord> records_ GQL_GUARDED_BY(mu_);  ///< Oldest first.
  std::deque<SlowQueryEntry> slow_ GQL_GUARDED_BY(mu_);  ///< Oldest first.
  std::unordered_map<uint64_t, ShapeAggregate> shapes_ GQL_GUARDED_BY(mu_);
  Histogram wall_us_ GQL_GUARDED_BY(mu_);
};

}  // namespace graphql::obs

#endif  // GRAPHQL_OBS_RECORDER_H_
