#include "obs/recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"
#include "obs/trace.h"

namespace graphql::obs {

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) read-only env lookup; no setenv anywhere
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long n = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || n <= 0) return fallback;
  return static_cast<size_t>(n);
}

int64_t EnvSlowThresholdUs() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) read-only env lookup; no setenv anywhere
  const char* v = std::getenv("GQL_SLOW_QUERY_MS");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  long long n = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || n < 0) return 0;
  return n * 1000;
}

void AppendDurationMs(int64_t us, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(us) / 1e3);
  out->append(buf);
}

}  // namespace

uint64_t FlightRecorder::HashShape(std::string_view shape) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis.
  for (char c : shape) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime.
  }
  return h;
}

std::string QueryRecord::ToLine() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "#%-4" PRIu64 " ", id);
  out.append(buf);
  if (!session.empty()) {
    out.append("[");
    out.append(session);
    out.append("] ");
  }
  AppendDurationMs(wall_us, &out);
  std::snprintf(buf, sizeof(buf),
                "  steps=%" PRIu64 "  matches=%" PRIu64 "  threads=%d",
                steps, matches, threads);
  out.append(buf);
  if (!ok) out.append("  ERROR");
  if (tripped) {
    out.append("  tripped:");
    out.append(trip);
  }
  if (truncated) out.append("  truncated");
  if (degraded) out.append("  degraded");
  out.append("  ");
  constexpr size_t kMaxShape = 72;
  if (shape.size() > kMaxShape) {
    out.append(shape, 0, kMaxShape - 3);
    out.append("...");
  } else {
    out.append(shape);
  }
  return out;
}

std::string QueryRecord::ToJson() const {
  std::string out = "{\"id\":";
  char buf[64];
  auto num = [&](const char* key, int64_t v) {
    std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRId64, key, v);
    out.append(buf);
  };
  std::snprintf(buf, sizeof(buf), "%" PRIu64, id);
  out.append(buf);
  out.append(",\"shape\":");
  AppendJsonString(shape, &out);
  std::snprintf(buf, sizeof(buf), ",\"shape_hash\":%" PRIu64, shape_hash);
  out.append(buf);
  num("start_us", start_us);
  num("wall_us", wall_us);
  num("cpu_us", cpu_us);
  num("us_retrieve", us_retrieve);
  num("us_refine", us_refine);
  num("us_order", us_order);
  num("us_search", us_search);
  num("steps", static_cast<int64_t>(steps));
  num("peak_memory_bytes", static_cast<int64_t>(peak_memory_bytes));
  num("threads", threads);
  num("tasks_stolen", static_cast<int64_t>(tasks_stolen));
  num("matches", static_cast<int64_t>(matches));
  num("returned", static_cast<int64_t>(returned));
  out.append(",\"ok\":");
  out.append(ok ? "true" : "false");
  out.append(",\"tripped\":");
  out.append(tripped ? "true" : "false");
  out.append(",\"truncated\":");
  out.append(truncated ? "true" : "false");
  out.append(",\"degraded\":");
  out.append(degraded ? "true" : "false");
  if (!trip.empty()) {
    out.append(",\"trip\":");
    AppendJsonString(trip, &out);
  }
  if (!error.empty()) {
    out.append(",\"error\":");
    AppendJsonString(error, &out);
  }
  if (!session.empty()) {
    out.append(",\"session\":");
    AppendJsonString(session, &out);
  }
  out.push_back('}');
  return out;
}

FlightRecorder::FlightRecorder() : FlightRecorder(0, 0) {}

FlightRecorder::FlightRecorder(size_t capacity, size_t slow_capacity)
    : capacity_(capacity > 0
                    ? capacity
                    : EnvSize("GQL_RECORDER_CAPACITY", kDefaultCapacity)),
      slow_capacity_(slow_capacity > 0 ? slow_capacity
                                       : kDefaultSlowCapacity),
      slow_threshold_us_(EnvSlowThresholdUs()) {}

void FlightRecorder::set_enabled(bool on) {
  MutexLock lock(&mu_);
  enabled_ = on;
}

bool FlightRecorder::enabled() const {
  MutexLock lock(&mu_);
  return enabled_;
}

void FlightRecorder::set_slow_threshold_us(int64_t us) {
  MutexLock lock(&mu_);
  slow_threshold_us_ = us < 0 ? 0 : us;
}

int64_t FlightRecorder::slow_threshold_us() const {
  MutexLock lock(&mu_);
  return slow_threshold_us_;
}

bool FlightRecorder::WantsTrace(bool governed) const {
  MutexLock lock(&mu_);
  if (!enabled_) return false;
  return slow_threshold_us_ > 0 || governed;
}

void FlightRecorder::FoldShapeLocked(const QueryRecord& record) {
  uint64_t key = record.shape_hash;
  auto it = shapes_.find(key);
  if (it == shapes_.end()) {
    if (shapes_.size() >= kMaxShapes) {
      // Table full: fold into the shared overflow bucket.
      key = HashShape("(other)");
      it = shapes_.find(key);
      if (it == shapes_.end()) {
        ShapeAggregate other;
        other.shape = "(other)";
        other.shape_hash = key;
        it = shapes_.emplace(key, std::move(other)).first;
      }
    } else {
      ShapeAggregate agg;
      agg.shape = record.shape;
      agg.shape_hash = key;
      it = shapes_.emplace(key, std::move(agg)).first;
    }
  }
  ShapeAggregate& agg = it->second;
  ++agg.count;
  agg.total_us += record.wall_us;
  agg.max_us = std::max(agg.max_us, record.wall_us);
  if (record.tripped) ++agg.tripped;
}

uint64_t FlightRecorder::Append(QueryRecord record, const Tracer* tracer,
                                std::string profile_json) {
  MutexLock lock(&mu_);
  if (!enabled_) return 0;
  record.id = next_id_++;
  wall_us_.Record(static_cast<uint64_t>(std::max<int64_t>(record.wall_us, 0)));
  FoldShapeLocked(record);

  const bool slow =
      (slow_threshold_us_ > 0 && record.wall_us >= slow_threshold_us_) ||
      record.tripped;
  if (slow) {
    SlowQueryEntry entry;
    entry.record = record;
    if (tracer != nullptr) {
      entry.trace_text = tracer->ToText();
      entry.trace_json = tracer->ToJson();
    }
    entry.profile_json = std::move(profile_json);
    slow_.push_back(std::move(entry));
    while (slow_.size() > slow_capacity_) slow_.pop_front();
  }

  uint64_t id = record.id;
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  return id;
}

std::vector<QueryRecord> FlightRecorder::Recent(size_t n) const {
  MutexLock lock(&mu_);
  std::vector<QueryRecord> out;
  size_t take = std::min(n, records_.size());
  out.reserve(take);
  for (auto it = records_.rbegin(); it != records_.rend() && take > 0;
       ++it, --take) {
    out.push_back(*it);
  }
  return out;
}

std::vector<SlowQueryEntry> FlightRecorder::Slow(size_t n) const {
  MutexLock lock(&mu_);
  std::vector<SlowQueryEntry> out;
  size_t take = std::min(n, slow_.size());
  out.reserve(take);
  for (auto it = slow_.rbegin(); it != slow_.rend() && take > 0;
       ++it, --take) {
    out.push_back(*it);
  }
  return out;
}

std::vector<ShapeAggregate> FlightRecorder::Top(size_t n) const {
  std::vector<ShapeAggregate> out;
  {
    MutexLock lock(&mu_);
    out.reserve(shapes_.size());
    for (const auto& [hash, agg] : shapes_) out.push_back(agg);
  }
  std::sort(out.begin(), out.end(),
            [](const ShapeAggregate& a, const ShapeAggregate& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.shape < b.shape;  // Deterministic tie-break.
            });
  if (out.size() > n) out.resize(n);
  return out;
}

HistogramSnapshot FlightRecorder::WallHistogram() const {
  MutexLock lock(&mu_);
  HistogramSnapshot s;
  s.count = wall_us_.Count();
  s.sum = wall_us_.Sum();
  s.min = wall_us_.Min();
  s.max = wall_us_.Max();
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    s.buckets[i] = wall_us_.BucketCount(i);
  }
  return s;
}

size_t FlightRecorder::size() const {
  MutexLock lock(&mu_);
  return records_.size();
}

size_t FlightRecorder::capacity() const {
  MutexLock lock(&mu_);
  return capacity_;
}

uint64_t FlightRecorder::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

size_t FlightRecorder::slow_size() const {
  MutexLock lock(&mu_);
  return slow_.size();
}

void FlightRecorder::Clear() {
  MutexLock lock(&mu_);
  records_.clear();
  slow_.clear();
  shapes_.clear();
  dropped_ = 0;
  wall_us_.Reset();
}

std::string FlightRecorder::ToJson(size_t n) const {
  std::vector<QueryRecord> recent = Recent(n);
  std::string out = "{\"records\":[";
  bool first = true;
  for (const QueryRecord& r : recent) {
    if (!first) out.push_back(',');
    first = false;
    out.append(r.ToJson());
  }
  out.append("],\"slow_count\":");
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%zu", slow_size());
  out.append(buf);
  std::snprintf(buf, sizeof(buf), ",\"dropped\":%" PRIu64, dropped());
  out.append(buf);
  out.append(",\"wall_us\":");
  HistogramSnapshot wall = WallHistogram();
  std::snprintf(buf, sizeof(buf),
                "{\"p50\":%" PRIu64 ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64
                "}",
                wall.P50(), wall.P95(), wall.P99());
  out.append(buf);
  out.push_back('}');
  return out;
}

}  // namespace graphql::obs
