#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>

#include "obs/json.h"

namespace graphql::obs {

namespace {

void AppendComma(std::string* out) {
  if (!out->empty()) out->push_back(',');
}

void AppendEventHeader(std::string_view name, char phase, int64_t ts,
                       int64_t pid, int64_t tid, std::string* out) {
  out->append("{\"name\":");
  AppendJsonString(name, out);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ",\"cat\":\"gql\",\"ph\":\"%c\",\"ts\":%" PRId64
                ",\"pid\":%" PRId64 ",\"tid\":%" PRId64,
                phase, ts, pid, tid);
  out->append(buf);
}

void AppendMetadata(std::string_view kind, std::string_view value,
                    int64_t pid, int64_t tid, std::string* out) {
  AppendComma(out);
  out->append("{\"name\":");
  AppendJsonString(kind, out);
  char buf[64];
  std::snprintf(buf, sizeof(buf),
                ",\"ph\":\"M\",\"pid\":%" PRId64 ",\"tid\":%" PRId64
                ",\"args\":{\"name\":",
                pid, tid);
  out->append(buf);
  AppendJsonString(value, out);
  out->append("}}");
}

struct ExportState {
  const ChromeTraceOptions* options;
  std::string* events;
  std::set<int64_t> worker_tids;
};

void ExportNode(const TraceNode& node, int64_t inherited_tid,
                ExportState* state) {
  int64_t tid = node.Attr("tid", inherited_tid);
  if (tid != inherited_tid) state->worker_tids.insert(tid);
  std::string* out = state->events;

  AppendComma(out);
  AppendEventHeader(node.name, 'B', node.start_us, state->options->pid, tid,
                    out);
  if (!node.attrs.empty()) {
    out->append(",\"args\":{");
    bool first = true;
    char buf[32];
    for (const TraceAttr& a : node.attrs) {
      if (!first) out->push_back(',');
      first = false;
      AppendJsonString(a.key, out);
      out->push_back(':');
      if (a.is_num) {
        std::snprintf(buf, sizeof(buf), "%" PRId64, a.num);
        out->append(buf);
      } else {
        AppendJsonString(a.text, out);
      }
    }
    out->push_back('}');
  }
  out->push_back('}');

  for (const auto& child : node.children) {
    ExportNode(*child, tid, state);
  }

  AppendComma(out);
  AppendEventHeader(node.name, 'E', node.start_us + node.duration_us,
                    state->options->pid, tid, out);
  out->push_back('}');
}

}  // namespace

void AppendChromeTraceEvents(const Tracer& tracer,
                             const ChromeTraceOptions& options,
                             std::string* events) {
  ExportState state;
  state.options = &options;
  state.events = events;
  for (const auto& root : tracer.roots()) {
    ExportNode(*root, options.default_tid, &state);
  }
  // Lane labels. Re-emitted per call; trace viewers take the last value.
  AppendMetadata("process_name", "gql", options.pid, options.default_tid,
                 events);
  AppendMetadata("thread_name", "evaluator", options.pid,
                 options.default_tid, events);
  char buf[48];
  for (int64_t tid : state.worker_tids) {
    std::snprintf(buf, sizeof(buf), "worker-%" PRId64, tid);
    AppendMetadata("thread_name", buf, options.pid, tid, events);
  }
}

std::string WrapChromeTrace(std::string_view events) {
  std::string out = "{\"traceEvents\":[";
  out.append(events);
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

bool WriteChromeTraceFile(const std::string& path, std::string_view events,
                          std::string* error) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  std::string doc = WrapChromeTrace(events);
  file.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  file.flush();
  if (!file) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace graphql::obs
