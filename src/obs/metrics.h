#ifndef GRAPHQL_OBS_METRICS_H_
#define GRAPHQL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/thread_annotations.h"

namespace graphql::obs {

/// Monotonic counter with thread-safe, wait-free increments. Obtained from
/// (and owned by) a MetricsRegistry; pointers stay valid for the
/// registry's lifetime, so hot paths may cache them.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

struct HistogramSnapshot;

/// Log2-bucketed latency/size histogram: bucket 0 holds the value 0 and
/// bucket i (1..63) holds values in [2^(i-1), 2^i). Recording is a couple
/// of relaxed atomic adds, safe from any thread.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(uint64_t value);
  /// Folds a snapshot of another histogram into this one (bucket-wise
  /// adds). Used to merge per-worker metric shards after a parallel stage.
  void Merge(const HistogramSnapshot& other);
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest value recorded so far; 0 when empty.
  uint64_t Min() const;
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

  /// Index of the bucket a value falls into.
  static int BucketOf(uint64_t value);
  /// Inclusive upper bound of a bucket's value range.
  static uint64_t BucketUpperBound(int i);
  /// Smallest value a bucket can hold (2^(i-1) for i >= 1, else 0).
  static uint64_t BucketLowerBound(int i);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  /// Exact extrema of the recorded values (min_ is UINT64_MAX while
  /// empty); they bound the interpolated percentile estimates below.
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Exact extrema of the recorded values (both 0 when empty).
  uint64_t min = 0;
  uint64_t max = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};

  double Mean() const;
  /// Approximate percentile (p in [0,100]): linear interpolation within
  /// the log2 bucket holding the requested rank, clamped to the exact
  /// [min, max] recorded. (The former upper-bound-only estimate overstated
  /// p50/p99 by up to 2x.) 0 when empty.
  uint64_t Percentile(double p) const;
  uint64_t P50() const { return Percentile(50); }
  uint64_t P95() const { return Percentile(95); }
  uint64_t P99() const { return Percentile(99); }
};

/// Point-in-time copy of a whole registry; also the unit of export.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Per-metric difference against an earlier snapshot of the same
  /// registry (counters and buckets subtract; metrics absent from `base`
  /// pass through). Used for per-query PROFILE deltas.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;

  /// {"counters": {...}, "histograms": {name: {count, sum, buckets}}}.
  std::string ToJson() const;
  /// Human-readable table: one line per counter, one per histogram with
  /// count/mean/p50/p90/p99.
  std::string ToText() const;
};

/// Named metric registry. Lookup takes a mutex; increments on the returned
/// objects are lock-free. Metric names are dot-separated hierarchies,
/// lowest level last, e.g. "match.search.steps" (see DESIGN.md,
/// Observability).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. A name must stay one kind.
  Counter* GetCounter(std::string_view name) GQL_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name) GQL_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const GQL_EXCLUDES(mu_);
  /// Adds every metric in `shard` into this registry (counters add,
  /// histograms merge bucket-wise), creating metrics as needed. The
  /// parallel pipeline stages give each worker a private registry and fold
  /// the shards back here so hot loops never contend on shared counters.
  void Merge(const MetricsSnapshot& shard);
  /// Zeroes every registered metric (names stay registered, and cached
  /// pointers stay valid).
  void Reset();

  std::string ToJson() const { return Snapshot().ToJson(); }
  std::string ToText() const { return Snapshot().ToText(); }

  /// Process-wide default registry; PipelineOptions points here unless
  /// redirected (the Evaluator uses its own instance per session).
  static MetricsRegistry& Global();

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_
      GQL_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_
      GQL_GUARDED_BY(mu_);
};

}  // namespace graphql::obs

#endif  // GRAPHQL_OBS_METRICS_H_
