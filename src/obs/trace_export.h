#ifndef GRAPHQL_OBS_TRACE_EXPORT_H_
#define GRAPHQL_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/trace.h"

namespace graphql::obs {

/// Serialization of Tracer span trees to the Chrome trace-event JSON
/// format (chrome://tracing, Perfetto). Each span becomes a B/E event
/// pair; a span carrying a numeric "tid" attribute — the per-worker lanes
/// the parallel pipeline stages record — lands on that thread lane, other
/// spans inherit their parent's lane (ultimately `default_tid`, the
/// evaluating thread). Thread-name metadata events label the lanes.
struct ChromeTraceOptions {
  int64_t pid = 1;
  /// Lane for spans without a worker tid; pass the evaluating thread's
  /// CurrentOsThreadId() so the coordinator lane is a real thread id too.
  int64_t default_tid = 1;
};

/// Appends the tracer's recorded span trees as comma-separated Chrome
/// trace events (no enclosing brackets) to *events. May be called after
/// every run with the same buffer: a session accumulates one growing
/// event stream on a shared monotonic clock.
void AppendChromeTraceEvents(const Tracer& tracer,
                             const ChromeTraceOptions& options,
                             std::string* events);

/// Wraps an accumulated event stream into the full JSON document:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}.
std::string WrapChromeTrace(std::string_view events);

/// Writes WrapChromeTrace(events) to `path`, replacing any existing file.
/// False on I/O failure, with *error describing it (error may be null).
bool WriteChromeTraceFile(const std::string& path, std::string_view events,
                          std::string* error = nullptr);

}  // namespace graphql::obs

#endif  // GRAPHQL_OBS_TRACE_EXPORT_H_
