#ifndef GRAPHQL_OBS_CLOCK_H_
#define GRAPHQL_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace graphql::obs {

/// Monotonic wall-clock in microseconds. The single timing primitive shared
/// by the selection pipeline, the collection index, the tracer, and the
/// benchmarks (replaces the per-file chrono lambdas).
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace graphql::obs

#endif  // GRAPHQL_OBS_CLOCK_H_
