#ifndef GRAPHQL_OBS_CLOCK_H_
#define GRAPHQL_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace graphql::obs {

/// Monotonic wall-clock in microseconds. The single timing primitive shared
/// by the selection pipeline, the collection index, the tracer, and the
/// benchmarks (replaces the per-file chrono lambdas).
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU time consumed by the calling thread, in microseconds; 0 where the
/// platform offers no thread CPU clock. Used by the flight recorder to
/// report wall vs. CPU micros per query.
int64_t ThreadCpuMicros();

}  // namespace graphql::obs

#endif  // GRAPHQL_OBS_CLOCK_H_
