#ifndef GRAPHQL_OBS_JSON_H_
#define GRAPHQL_OBS_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace graphql::obs {

/// Appends `s` to `out` as a quoted JSON string (escapes quotes,
/// backslashes, and control characters).
inline void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace graphql::obs

#endif  // GRAPHQL_OBS_JSON_H_
