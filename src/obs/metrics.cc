#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json.h"

namespace graphql::obs {

namespace {

std::string FormatU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int Histogram::BucketOf(uint64_t value) {
  if (value == 0) return 0;
  // Bucket i (i >= 1) holds [2^(i-1), 2^i): i = floor(log2(value)) + 1.
  // Values >= 2^62 share the last bucket, which is therefore
  // [2^62, 2^64) rather than a clean power-of-two range.
  return std::min(64 - __builtin_clzll(value), kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= kNumBuckets - 1) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

uint64_t Histogram::BucketLowerBound(int i) {
  if (i <= 0) return 0;
  return uint64_t{1} << (i - 1);
}

namespace {

void AtomicStoreMin(std::atomic<uint64_t>* a, uint64_t value) {
  uint64_t prev = a->load(std::memory_order_relaxed);
  while (value < prev &&
         !a->compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

void AtomicStoreMax(std::atomic<uint64_t>* a, uint64_t value) {
  uint64_t prev = a->load(std::memory_order_relaxed);
  while (value > prev &&
         !a->compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

uint64_t Histogram::Min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicStoreMin(&min_, value);
  AtomicStoreMax(&max_, value);
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Merge(const HistogramSnapshot& other) {
  count_.fetch_add(other.count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
  if (other.count != 0) {
    AtomicStoreMin(&min_, other.min);
    AtomicStoreMax(&max_, other.max);
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    if (other.buckets[i] != 0) {
      buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
    }
  }
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile, at least 1 so p=0 hits the first
  // populated bucket.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    uint64_t before = seen;
    seen += buckets[i];
    if (seen < rank) continue;
    // Interpolate linearly within the bucket: the rank-th recording is
    // (rank - before) of this bucket's `buckets[i]` values. The exact
    // extrema clamp the estimate (in particular for the open-ended last
    // bucket, whose nominal upper bound is UINT64_MAX).
    uint64_t lo = std::max(Histogram::BucketLowerBound(i), min);
    uint64_t hi = std::min(Histogram::BucketUpperBound(i), max);
    if (hi <= lo) return std::clamp(lo, min, max);
    double fraction = static_cast<double>(rank - before) /
                      static_cast<double>(buckets[i]);
    uint64_t v = lo + static_cast<uint64_t>(
                          static_cast<double>(hi - lo) * fraction + 0.5);
    return std::clamp(v, min, max);
  }
  return max;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = base.counters.find(name);
    uint64_t before = it == base.counters.end() ? 0 : it->second;
    out.counters[name] = value >= before ? value - before : value;
  }
  for (const auto& [name, hist] : histograms) {
    auto it = base.histograms.find(name);
    if (it == base.histograms.end()) {
      out.histograms[name] = hist;
      continue;
    }
    const HistogramSnapshot& before = it->second;
    HistogramSnapshot d;
    d.count = hist.count >= before.count ? hist.count - before.count : 0;
    d.sum = hist.sum >= before.sum ? hist.sum - before.sum : 0;
    // Extrema are not invertible: the delta carries the whole-history
    // min/max (a conservative envelope for the interval's recordings).
    if (d.count != 0) {
      d.min = hist.min;
      d.max = hist.max;
    }
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      d.buckets[i] = hist.buckets[i] >= before.buckets[i]
                         ? hist.buckets[i] - before.buckets[i]
                         : 0;
    }
    out.histograms[name] = d;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    out.append(FormatU64(value));
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.append(":{\"count\":");
    out.append(FormatU64(hist.count));
    out.append(",\"sum\":");
    out.append(FormatU64(hist.sum));
    out.append(",\"min\":");
    out.append(FormatU64(hist.min));
    out.append(",\"max\":");
    out.append(FormatU64(hist.max));
    out.append(",\"buckets\":[");
    // Trailing empty buckets are elided; bucket i covers [2^(i-1), 2^i).
    int last = Histogram::kNumBuckets - 1;
    while (last > 0 && hist.buckets[last] == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (i > 0) out.push_back(',');
      out.append(FormatU64(hist.buckets[i]));
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out.append(name);
    out.append(" = ");
    out.append(FormatU64(value));
    out.push_back('\n');
  }
  for (const auto& [name, hist] : histograms) {
    out.append(name);
    out.append(": count=");
    out.append(FormatU64(hist.count));
    out.append(" sum=");
    out.append(FormatU64(hist.sum));
    out.append(" mean=");
    out.append(FormatDouble(hist.Mean()));
    out.append(" min=");
    out.append(FormatU64(hist.min));
    out.append(" p50~");
    out.append(FormatU64(hist.Percentile(50)));
    out.append(" p90~");
    out.append(FormatU64(hist.Percentile(90)));
    out.append(" p99~");
    out.append(FormatU64(hist.Percentile(99)));
    out.append(" max=");
    out.append(FormatU64(hist.max));
    out.push_back('\n');
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(std::string(name));
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot s;
    s.count = hist->Count();
    s.sum = hist->Sum();
    s.min = hist->Min();
    s.max = hist->Max();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      s.buckets[i] = hist->BucketCount(i);
    }
    out.histograms[name] = s;
  }
  return out;
}

void MetricsRegistry::Merge(const MetricsSnapshot& shard) {
  for (const auto& [name, value] : shard.counters) {
    if (value != 0) GetCounter(name)->Increment(value);
  }
  for (const auto& [name, hist] : shard.histograms) {
    if (hist.count != 0) GetHistogram(name)->Merge(hist);
  }
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const kGlobal = new MetricsRegistry();
  return *kGlobal;
}

}  // namespace graphql::obs
