#ifndef GRAPHQL_OBS_TRACE_H_
#define GRAPHQL_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace graphql::obs {

/// One key/value pair attached to a span: either an integer (candidate-set
/// sizes, step counts) or a short string (mode names, pattern names).
struct TraceAttr {
  std::string key;
  std::string text;
  int64_t num = 0;
  bool is_num = false;
};

/// One node of the per-query trace tree.
struct TraceNode {
  std::string name;
  int64_t start_us = 0;     ///< NowMicros() at span begin.
  int64_t duration_us = 0;  ///< Filled when the span ends.
  std::vector<TraceAttr> attrs;
  std::vector<std::unique_ptr<TraceNode>> children;

  /// First direct child with this name; null if none.
  const TraceNode* Child(std::string_view child_name) const;
  /// Value of a numeric attribute; `fallback` if absent.
  int64_t Attr(std::string_view key, int64_t fallback = 0) const;
  /// Appends a numeric / string attribute (see Span::SetAttr for the RAII
  /// path; this direct form serves Tracer::AddCompleted nodes).
  void SetAttr(std::string_view key, int64_t value);
  void SetAttr(std::string_view key, std::string_view value);
};

/// Collects a tree of spans for one query/program. Not thread-safe: one
/// tracer belongs to one evaluating thread (the registry handles
/// cross-thread aggregation). When disabled, BeginSpan returns null and
/// spans degrade to no-ops.
class Tracer {
 public:
  explicit Tracer(bool enabled = true) : enabled_(enabled) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Hard cap on recorded nodes (a PROFILE over a large collection would
  /// otherwise record one subtree per member graph). Further spans become
  /// no-ops; dropped_spans() reports how many.
  void set_max_nodes(size_t n) { max_nodes_ = n; }
  size_t dropped_spans() const { return dropped_; }
  size_t num_nodes() const { return num_nodes_; }

  /// Discards all recorded spans (the enabled flag is unchanged).
  void Reset();

  const std::vector<std::unique_ptr<TraceNode>>& roots() const {
    return roots_;
  }

  /// Indented tree, one line per span: name, duration, attributes.
  std::string ToText() const;
  /// [{"name":..., "start_us":..., "us":..., "attrs":{...},
  ///   "children":[...]}, ...]
  std::string ToJson() const;

  // Span internals (use the Span RAII type instead of calling these).
  TraceNode* BeginSpan(std::string_view name, int64_t start_us);
  void EndSpan(TraceNode* node);

  /// Appends an already-measured span as a child of the innermost open
  /// span (or as a root) without touching the open-span stack. Used by
  /// coordinators to record per-worker lanes after a parallel stage: the
  /// workers ran while the stage span was open, but only the coordinator
  /// may write the (single-threaded) tracer. Returns null when disabled
  /// or over the node cap.
  TraceNode* AddCompleted(std::string_view name, int64_t start_us,
                          int64_t duration_us);

 private:
  bool enabled_;
  size_t max_nodes_ = 20000;
  size_t num_nodes_ = 0;
  size_t dropped_ = 0;
  std::vector<std::unique_ptr<TraceNode>> roots_;
  std::vector<TraceNode*> stack_;  ///< Open spans, innermost last.
};

/// RAII span. With a null or disabled tracer the constructor does nothing
/// (no clock read, no allocation) unless kAlways timing is requested, so
/// instrumented hot paths pay ~zero cost when tracing is off.
class Span {
 public:
  enum class Timing {
    kIfActive,  ///< Measure time only when the span is recorded.
    kAlways,    ///< Measure even without a tracer (DurationMicros() is
                ///< then still meaningful; used to fill PipelineStats).
  };

  Span(Tracer* tracer, std::string_view name,
       Timing timing = Timing::kIfActive);
  ~Span() { End(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return node_ != nullptr; }

  void SetAttr(std::string_view key, int64_t value);
  void SetAttr(std::string_view key, std::string_view value);

  /// Closes the span (idempotent; the destructor calls it).
  void End();

  /// Elapsed microseconds; valid after End() when recorded or kAlways.
  int64_t DurationMicros() const { return duration_us_; }

 private:
  Tracer* tracer_ = nullptr;
  TraceNode* node_ = nullptr;
  int64_t start_us_ = 0;
  int64_t duration_us_ = 0;
  bool timed_ = false;
  bool ended_ = false;
};

}  // namespace graphql::obs

#endif  // GRAPHQL_OBS_TRACE_H_
