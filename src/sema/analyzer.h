#ifndef GRAPHQL_SEMA_ANALYZER_H_
#define GRAPHQL_SEMA_ANALYZER_H_

#include <functional>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "motif/builder.h"
#include "sema/diagnostic.h"

namespace graphql::sema {

/// Session context the analyzer checks a program against. All hooks are
/// optional: a null `motifs` means no pre-registered motifs, a null
/// `doc_exists` skips document checks entirely (a standalone linter cannot
/// know which documents a session will register), and a null
/// `variable_exists` means only variables assigned by the program itself
/// are in scope.
struct AnalyzeOptions {
  const motif::MotifRegistry* motifs = nullptr;
  std::function<bool(const std::string&)> doc_exists;
  std::function<bool(const std::string&)> variable_exists;
  /// Recursion-depth / derivation limits used by the explosion lint; keep
  /// in sync with the evaluator's build options.
  motif::BuildOptions build;
};

/// Per-statement facts the analysis proves, consumed by the evaluator
/// (unsat pruning) and EXPLAIN (language-fragment classification).
struct StatementInfo {
  /// The statement's pattern composes motifs recursively (Section 2.3).
  bool recursive = false;
  /// The recursion has a base case: its derivation fixpoint is non-empty.
  bool terminates = true;
  /// The statement's selection is provably empty: a predicate folds to
  /// constant false, or some pattern entity carries contradictory
  /// constraints. The evaluator may skip the match pipeline.
  bool unsatisfiable = false;
  std::string unsat_reason;

  /// Non-recursive fragment: equivalent to relational algebra
  /// (Theorem 4.5); recursive statements need the Datalog fixpoint
  /// (Theorem 4.6).
  bool nr() const { return !recursive; }
};

/// The result of analyzing one program: diagnostics (errors, warnings) in
/// statement order plus one StatementInfo per program statement.
struct Analysis {
  std::vector<Diagnostic> diagnostics;
  std::vector<StatementInfo> statements;

  bool ok() const { return !HasErrors(diagnostics); }
  /// The first error as a Status (mirroring the runtime failure the error
  /// predicts), or OK when the program is clean.
  Status ToStatus() const;
};

/// Statically analyzes a parsed program: name/scope resolution for every
/// motif member, edge endpoint, unify/export target, and predicate name;
/// constant folding and per-entity interval analysis for satisfiability;
/// recursion classification (nr-GraphQL vs fixpoint, base-case
/// verification); and structural lints (disconnected motifs, unused
/// bindings, derivation explosion).
///
/// Design rule: an *error* means the runtime would fail (with the same
/// status code) if it reached the diagnosed construct. Issues inside
/// `graph X {...};` registration statements surface as errors only when
/// some statement actually uses the motif — registration itself never
/// fails at runtime — and stay warnings otherwise.
Analysis Analyze(const lang::Program& program,
                 const AnalyzeOptions& options = {});

}  // namespace graphql::sema

#endif  // GRAPHQL_SEMA_ANALYZER_H_
