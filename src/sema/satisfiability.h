#ifndef GRAPHQL_SEMA_SATISFIABILITY_H_
#define GRAPHQL_SEMA_SATISFIABILITY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "lang/ast.h"

namespace graphql::sema {

/// Constant-folds an expression bottom-up: literals, arithmetic,
/// comparisons, and boolean connectives over constant operands. Returns
/// nullopt when the expression references names or when evaluation would
/// error (division by zero, mixed types) — folding never reports errors,
/// it only answers "is this provably a constant, and which one".
///
/// Folding builds fresh values and never mutates the (shared) AST.
std::optional<Value> FoldConst(const lang::Expr& expr);

/// Conjunction of constraints on the attributes of a single entity (one
/// pattern node or edge). Built from tuple equalities, inline `where`
/// clauses, and single-entity conjuncts routed from graph-wide predicates;
/// detects provable unsatisfiability by interval analysis:
///   - pinned-value conflicts        (a = 1 AND a = 2)
///   - equality outside an interval  (a = 5 AND a < 3)
///   - empty intervals               (a > 5 AND a < 3, a < 3 AND a >= 3)
///   - excluded pins                 (a = 1 AND a != 1)
///   - kind conflicts                (a = "x" AND a > 3)
class ConstraintSet {
 public:
  /// Adds `attr <op> literal` (op one of ==, !=, <, <=, >, >=). Returns
  /// false — and records a reason — when the set becomes unsatisfiable.
  /// Non-orderable combinations (e.g. `<` on a bool) add nothing: runtime
  /// evaluation of such predicates is an error or a non-match, never a
  /// reason to prune statically.
  bool Add(const std::string& attr, lang::BinaryOp op, const Value& value);

  bool unsat() const { return unsat_; }
  const std::string& reason() const { return reason_; }

 private:
  /// The value-kind class a constraint commits an attribute to. Numeric
  /// spans int and double (Value compares them numerically).
  enum class KindClass { kNumeric, kString, kBool };

  struct AttrConstraint {
    std::optional<KindClass> kind;
    std::optional<Value> eq;       ///< Pinned value.
    std::vector<Value> ne;         ///< Excluded values.
    // Numeric interval; open/closed per end.
    double lo = 0, hi = 0;
    bool has_lo = false, has_hi = false;
    bool lo_open = false, hi_open = false;
  };

  bool Fail(const std::string& attr, const std::string& why);

  std::map<std::string, AttrConstraint> attrs_;
  bool unsat_ = false;
  std::string reason_;
};

}  // namespace graphql::sema

#endif  // GRAPHQL_SEMA_SATISFIABILITY_H_
