#include "sema/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/strings.h"
#include "sema/recursion.h"
#include "sema/satisfiability.h"

namespace graphql::sema {

Status Analysis::ToStatus() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return d.ToStatus();
  }
  return Status::OK();
}

namespace {

constexpr size_t kMaxNesting = 64;

/// Names visible inside one motif context: dotted node and edge names,
/// unioned over all disjunction alternatives. `dynamic` is set when
/// recursion or an unresolved reference makes the full name set unknowable
/// statically; name-resolution errors are then suppressed.
struct Scope {
  std::set<std::string> nodes;
  std::set<std::string> edges;
  bool dynamic = false;

  /// True when `root` is a node/edge name or a prefix of a nested name
  /// ("X" resolves when "X.v1" exists).
  bool RootResolves(const std::string& root) const {
    if (nodes.count(root) || edges.count(root)) return true;
    std::string prefix = root + ".";
    auto it = nodes.lower_bound(prefix);
    if (it != nodes.end() && it->compare(0, prefix.size(), prefix) == 0) {
      return true;
    }
    auto ie = edges.lower_bound(prefix);
    return ie != edges.end() && ie->compare(0, prefix.size(), prefix) == 0;
  }
};

bool ExprHasName(const lang::Expr& e) {
  switch (e.kind) {
    case lang::Expr::Kind::kName:
      return true;
    case lang::Expr::Kind::kBinary:
      return (e.lhs != nullptr && ExprHasName(*e.lhs)) ||
             (e.rhs != nullptr && ExprHasName(*e.rhs));
    default:
      return false;
  }
}

void CollectNameExprs(const lang::Expr& e,
                      std::vector<const lang::Expr*>* out) {
  if (e.kind == lang::Expr::Kind::kName) {
    out->push_back(&e);
  } else if (e.kind == lang::Expr::Kind::kBinary) {
    if (e.lhs != nullptr) CollectNameExprs(*e.lhs, out);
    if (e.rhs != nullptr) CollectNameExprs(*e.rhs, out);
  }
}

void SplitAnd(const lang::ExprPtr& e, std::vector<const lang::Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == lang::Expr::Kind::kBinary && e->op == lang::BinaryOp::kAnd) {
    SplitAnd(e->lhs, out);
    SplitAnd(e->rhs, out);
  } else {
    out->push_back(e.get());
  }
}

/// Mirrors a comparison when the constant sits on the left-hand side:
/// `3 < a.x` constrains x with `> 3`.
lang::BinaryOp MirrorCmp(lang::BinaryOp op) {
  using lang::BinaryOp;
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // ==, != are symmetric.
  }
}

bool IsCmp(lang::BinaryOp op) {
  using lang::BinaryOp;
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// Strips the enclosing pattern's name from a dotted path (the runtime
/// binds the pattern name as an alias of the whole scope, so `P.v.x` and
/// `v.x` are the same reference).
std::vector<std::string> StripPattern(const std::vector<std::string>& path,
                                      const std::string& pattern_name) {
  if (path.size() >= 2 && !pattern_name.empty() &&
      path[0] == pattern_name) {
    return std::vector<std::string>(path.begin() + 1, path.end());
  }
  return path;
}

bool BodyHasUnifyOrExport(const lang::GraphBody& body) {
  for (const lang::MemberDecl& m : body.members) {
    if (m.kind == lang::MemberDecl::Kind::kUnify ||
        m.kind == lang::MemberDecl::Kind::kExport) {
      return true;
    }
    if (m.kind == lang::MemberDecl::Kind::kDisjunction) {
      for (const auto& alt : m.alternatives) {
        if (BodyHasUnifyOrExport(*alt)) return true;
      }
    }
  }
  return false;
}

bool BodyHasGraphRef(const lang::GraphBody& body) {
  for (const lang::MemberDecl& m : body.members) {
    if (m.kind == lang::MemberDecl::Kind::kGraphRef) return true;
    if (m.kind == lang::MemberDecl::Kind::kDisjunction) {
      for (const auto& alt : m.alternatives) {
        if (BodyHasGraphRef(*alt)) return true;
      }
    }
  }
  return false;
}

/// The analysis engine. One instance per Analyze() call; statements are
/// processed in program order, mirroring the evaluator's incremental
/// registration of motifs and binding of variables.
class Analyzer {
 public:
  Analyzer(const lang::Program& program, const AnalyzeOptions& options)
      : program_(program), options_(options) {}

  Analysis Run() {
    result_.statements.resize(program_.statements.size());
    for (size_t i = 0; i < program_.statements.size(); ++i) {
      const lang::Statement& stmt = program_.statements[i];
      switch (stmt.kind) {
        case lang::Statement::Kind::kGraphDecl:
          ProcessGraphDecl(stmt, i);
          break;
        case lang::Statement::Kind::kAssign:
          ProcessAssign(stmt, i);
          break;
        case lang::Statement::Kind::kFlwr:
          ProcessFlwr(stmt, i);
          break;
      }
    }
    Finalize();
    return std::move(result_);
  }

 private:
  /// Issues found inside a `graph X {...};` registration statement.
  /// Registration itself never fails at runtime, so these surface as
  /// errors only when some statement actually uses the motif.
  struct DeclRecord {
    std::string name;
    size_t statement = 0;
    std::vector<Diagnostic> issues;  ///< Error when used, warning otherwise.
    std::vector<Diagnostic> lints;   ///< Always warnings.
  };

  const lang::GraphDecl* Lookup(const std::string& name) const {
    auto it = local_decls_.find(name);
    if (it != local_decls_.end()) return it->second;
    return options_.motifs != nullptr ? options_.motifs->Find(name) : nullptr;
  }

  MotifLookup AsLookup() const {
    return [this](const std::string& n) { return Lookup(n); };
  }

  bool VarExists(const std::string& name) const {
    return local_vars_.count(name) > 0 ||
           (options_.variable_exists && options_.variable_exists(name));
  }

  static void Emit(std::vector<Diagnostic>* out, Severity severity,
                   std::string code, std::string message,
                   lang::SourceSpan span, StatusCode status, size_t stmt) {
    Diagnostic d;
    d.severity = severity;
    d.code = std::move(code);
    d.message = std::move(message);
    d.span = span;
    d.status = status;
    d.statement = stmt;
    out->push_back(std::move(d));
  }

  // ---------------------------------------------------------------- scope

  /// Unions every name any derivation of `body` can expose (all
  /// disjunction alternatives; nested motifs under their dotted prefix).
  void CollectInto(const lang::GraphBody& body, const std::string& prefix,
                   std::vector<std::string>* stack, Scope* scope) const {
    for (const lang::MemberDecl& m : body.members) {
      switch (m.kind) {
        case lang::MemberDecl::Kind::kNode:
          if (!m.node.name.empty()) scope->nodes.insert(prefix + m.node.name);
          break;
        case lang::MemberDecl::Kind::kEdge:
          if (!m.edge.name.empty()) scope->edges.insert(prefix + m.edge.name);
          break;
        case lang::MemberDecl::Kind::kExport:
          if (!m.export_decl.as.empty()) {
            scope->nodes.insert(prefix + m.export_decl.as);
          }
          break;
        case lang::MemberDecl::Kind::kGraphRef: {
          const std::string& name = m.graph_ref.graph_name;
          if (std::find(stack->begin(), stack->end(), name) != stack->end() ||
              stack->size() > kMaxNesting) {
            scope->dynamic = true;  // Repetition: deeper names exist.
            break;
          }
          const lang::GraphDecl* target = Lookup(name);
          if (target == nullptr) {
            scope->dynamic = true;  // Reported by the structural check.
            break;
          }
          stack->push_back(name);
          std::string nested =
              prefix + (m.graph_ref.alias.empty() ? name : m.graph_ref.alias) +
              ".";
          CollectInto(target->body, nested, stack, scope);
          stack->pop_back();
          break;
        }
        case lang::MemberDecl::Kind::kUnify:
          break;
        case lang::MemberDecl::Kind::kDisjunction:
          for (const auto& alt : m.alternatives) {
            CollectInto(*alt, prefix, stack, scope);
          }
          break;
      }
    }
  }

  Scope ScopeOf(const lang::GraphDecl& decl) const {
    Scope s;
    std::vector<std::string> stack;
    if (!decl.name.empty()) stack.push_back(decl.name);
    CollectInto(decl.body, "", &stack, &s);
    return s;
  }

  // ------------------------------------------------- pattern/motif checks

  void CheckTupleConst(const lang::TupleLit& tuple,
                       std::vector<Diagnostic>* out, size_t stmt) const {
    for (const auto& [key, expr] : tuple.entries) {
      if (expr == nullptr || FoldConst(*expr)) continue;
      bool named = ExprHasName(*expr);
      Emit(out, Severity::kError, "sema.nonconst-tuple",
           named ? "tuple value for '" + key +
                       "' must be a constant expression in a pattern "
                       "(names are not allowed here)"
                 : "tuple value for '" + key +
                       "' does not evaluate to a constant",
           expr->span, StatusCode::kInvalidArgument, stmt);
    }
  }

  /// Ordered structural walk mirroring motif::MotifBuilder::ExpandMember:
  /// edge endpoints, unify targets, and export sources resolve against the
  /// names accumulated so far; disjunction forks the scope per alternative.
  void CheckPatternBody(const lang::GraphBody& body, const std::string& prefix,
                        Scope* scope, std::vector<std::string>* stack,
                        std::vector<Diagnostic>* out, size_t stmt) const {
    for (const lang::MemberDecl& m : body.members) {
      switch (m.kind) {
        case lang::MemberDecl::Kind::kNode:
          if (m.node.tuple) CheckTupleConst(*m.node.tuple, out, stmt);
          if (!m.node.name.empty()) scope->nodes.insert(prefix + m.node.name);
          break;
        case lang::MemberDecl::Kind::kEdge: {
          const lang::EdgeDecl& e = m.edge;
          if (e.tuple) CheckTupleConst(*e.tuple, out, stmt);
          auto endpoint = [&](const std::vector<std::string>& path,
                             const lang::SourceSpan& span) {
            if (path.empty()) return;
            std::string full = prefix + Join(path, ".");
            if (!scope->dynamic && scope->nodes.count(full) == 0) {
              Emit(out, Severity::kError, "sema.undeclared-node",
                   "edge endpoint '" + Join(path, ".") +
                       "' is not a declared node",
                   span, StatusCode::kNotFound, stmt);
            }
          };
          endpoint(e.src, e.src_span);
          endpoint(e.dst, e.dst_span);
          if (!e.name.empty()) scope->edges.insert(prefix + e.name);
          break;
        }
        case lang::MemberDecl::Kind::kGraphRef: {
          const lang::GraphRefDecl& r = m.graph_ref;
          if (std::find(stack->begin(), stack->end(), r.graph_name) !=
                  stack->end() ||
              stack->size() > kMaxNesting) {
            scope->dynamic = true;  // Recursive reference: repetition.
            break;
          }
          const lang::GraphDecl* target = Lookup(r.graph_name);
          if (target == nullptr) {
            Emit(out, Severity::kError, "sema.unknown-motif",
                 "graph member '" + r.graph_name +
                     "' is not a registered motif",
                 r.span, StatusCode::kNotFound, stmt);
            scope->dynamic = true;  // Suppress cascading name errors.
            break;
          }
          stack->push_back(r.graph_name);
          std::string nested =
              prefix + (r.alias.empty() ? r.graph_name : r.alias) + ".";
          CollectInto(target->body, nested, stack, scope);
          stack->pop_back();
          break;
        }
        case lang::MemberDecl::Kind::kUnify: {
          const lang::UnifyDecl& u = m.unify;
          for (size_t i = 0; i < u.names.size(); ++i) {
            std::string full = prefix + Join(u.names[i], ".");
            if (!scope->dynamic && scope->nodes.count(full) == 0) {
              lang::SourceSpan span =
                  i < u.name_spans.size() ? u.name_spans[i] : u.span;
              Emit(out, Severity::kError, "sema.undeclared-node",
                   "unify target '" + Join(u.names[i], ".") +
                       "' is not a declared node",
                   span, StatusCode::kNotFound, stmt);
            }
          }
          break;
        }
        case lang::MemberDecl::Kind::kExport: {
          const lang::ExportDecl& x = m.export_decl;
          std::string full = prefix + Join(x.source, ".");
          if (!scope->dynamic && scope->nodes.count(full) == 0) {
            Emit(out, Severity::kError, "sema.undeclared-node",
                 "export source '" + Join(x.source, ".") +
                     "' is not a declared node",
                 x.span, StatusCode::kNotFound, stmt);
          }
          if (!x.as.empty()) scope->nodes.insert(prefix + x.as);
          break;
        }
        case lang::MemberDecl::Kind::kDisjunction: {
          if (m.alternatives.size() == 1) {
            // Parser encoding for grouping / multi-declarator statements:
            // the names persist in the enclosing scope.
            CheckPatternBody(*m.alternatives[0], prefix, scope, stack, out,
                             stmt);
            break;
          }
          Scope merged = *scope;
          for (const auto& alt : m.alternatives) {
            Scope branch = *scope;
            CheckPatternBody(*alt, prefix, &branch, stack, out, stmt);
            merged.nodes.insert(branch.nodes.begin(), branch.nodes.end());
            merged.edges.insert(branch.edges.begin(), branch.edges.end());
            merged.dynamic |= branch.dynamic;
          }
          *scope = std::move(merged);
          break;
        }
      }
    }
  }

  /// Flags names in a predicate whose root is neither a pattern entity nor
  /// the pattern's own name. Such a reference reaches the runtime's
  /// Bindings::ResolvePath, which fails with NotFound.
  void CheckPredNames(const lang::Expr& expr, const Scope& scope,
                      const std::string& pattern_name,
                      std::vector<Diagnostic>* out, size_t stmt) const {
    if (scope.dynamic) return;
    std::vector<const lang::Expr*> names;
    CollectNameExprs(expr, &names);
    for (const lang::Expr* n : names) {
      const std::vector<std::string>& p = n->path;
      if (p.empty()) continue;
      bool ok = scope.RootResolves(p[0]);
      if (!ok && !pattern_name.empty() && p[0] == pattern_name) {
        ok = p.size() == 1 || scope.RootResolves(p[1]);
      }
      if (!ok) {
        Emit(out, Severity::kError, "sema.unbound-name",
             "cannot resolve '" + Join(p, ".") + "': '" + p[0] +
                 "' is not a declared node or edge",
             n->span, StatusCode::kNotFound, stmt);
      }
    }
  }

  /// Walks every inline `where` of a body (all alternatives) against the
  /// full scope. `unify ... where` is skipped: its condition has
  /// template-instantiation semantics, not pattern semantics.
  void CheckBodyWheres(const lang::GraphBody& body, const Scope& scope,
                       const std::string& pattern_name,
                       std::vector<Diagnostic>* out, size_t stmt) const {
    for (const lang::MemberDecl& m : body.members) {
      switch (m.kind) {
        case lang::MemberDecl::Kind::kNode:
          if (m.node.where) {
            CheckPredNames(*m.node.where, scope, pattern_name, out, stmt);
          }
          break;
        case lang::MemberDecl::Kind::kEdge:
          if (m.edge.where) {
            CheckPredNames(*m.edge.where, scope, pattern_name, out, stmt);
          }
          break;
        case lang::MemberDecl::Kind::kDisjunction:
          for (const auto& alt : m.alternatives) {
            CheckBodyWheres(*alt, scope, pattern_name, out, stmt);
          }
          break;
        default:
          break;
      }
    }
  }

  /// Full check of a declaration in motif/pattern position: ordered
  /// structure, constant tuples, and predicate name resolution.
  void CheckPatternDecl(const lang::GraphDecl& decl,
                        std::vector<Diagnostic>* out, size_t stmt) const {
    std::vector<std::string> stack;
    if (!decl.name.empty()) stack.push_back(decl.name);
    Scope ordered;
    CheckPatternBody(decl.body, "", &ordered, &stack, out, stmt);
    if (decl.tuple) CheckTupleConst(*decl.tuple, out, stmt);
    Scope full = ScopeOf(decl);
    CheckBodyWheres(decl.body, full, decl.name, out, stmt);
    if (decl.where) {
      CheckPredNames(*decl.where, full, decl.name, out, stmt);
    }
  }

  // --------------------------------------------------------------- unsat

  /// Feeds one `attr <cmp> const` (either orientation) into `cs`. Only
  /// conjuncts whose name side resolves (after pattern-name stripping) to
  /// `entity` contribute.
  static void ApplyCmp(const lang::Expr& conjunct, const std::string& entity,
                       const std::string& pattern_name, ConstraintSet* cs) {
    if (conjunct.kind != lang::Expr::Kind::kBinary || !IsCmp(conjunct.op) ||
        conjunct.lhs == nullptr || conjunct.rhs == nullptr) {
      return;
    }
    const lang::Expr* name = nullptr;
    const lang::Expr* other = nullptr;
    lang::BinaryOp op = conjunct.op;
    if (conjunct.lhs->kind == lang::Expr::Kind::kName) {
      name = conjunct.lhs.get();
      other = conjunct.rhs.get();
    } else if (conjunct.rhs->kind == lang::Expr::Kind::kName) {
      name = conjunct.rhs.get();
      other = conjunct.lhs.get();
      op = MirrorCmp(op);
    } else {
      return;
    }
    std::vector<std::string> path = StripPattern(name->path, pattern_name);
    if (path.size() < 2) return;
    std::string prefix = Join(
        std::vector<std::string>(path.begin(), path.end() - 1), ".");
    if (prefix != entity) return;
    std::optional<Value> constant = FoldConst(*other);
    if (!constant) return;
    cs->Add(path.back(), op, *constant);
  }

  /// True when every name of `conjunct` refers to `entity` — the mirror of
  /// GraphPattern::RouteConjunct routing the conjunct to a single node or
  /// edge, where evaluation failures are swallowed as non-matches (which
  /// makes pruning on a provable contradiction behavior-preserving).
  static bool ConjunctTargets(const lang::Expr& conjunct,
                              const std::string& entity,
                              const std::string& pattern_name) {
    std::vector<const lang::Expr*> names;
    CollectNameExprs(conjunct, &names);
    if (names.empty()) return false;
    for (const lang::Expr* n : names) {
      std::vector<std::string> path = StripPattern(n->path, pattern_name);
      if (path.size() < 2) return false;
      std::string prefix = Join(
          std::vector<std::string>(path.begin(), path.end() - 1), ".");
      if (prefix != entity) return false;
    }
    return true;
  }

  /// A top-level pattern node or edge (present in every derivation).
  struct Entity {
    const lang::NodeDecl* node = nullptr;
    const lang::EdgeDecl* edge = nullptr;
    lang::SourceSpan span;
  };

  static void CollectTopEntities(const lang::GraphBody& body,
                                 std::map<std::string, Entity>* entities,
                                 std::set<std::string>* duplicates) {
    for (const lang::MemberDecl& m : body.members) {
      switch (m.kind) {
        case lang::MemberDecl::Kind::kNode: {
          const std::string& name = m.node.name;
          if (name.empty()) break;
          if (entities->count(name) || duplicates->count(name)) {
            duplicates->insert(name);
            break;
          }
          Entity e;
          e.node = &m.node;
          e.span = m.node.span;
          (*entities)[name] = e;
          break;
        }
        case lang::MemberDecl::Kind::kEdge: {
          const std::string& name = m.edge.name;
          if (name.empty()) break;
          if (entities->count(name) || duplicates->count(name)) {
            duplicates->insert(name);
            break;
          }
          Entity e;
          e.edge = &m.edge;
          e.span = m.edge.span;
          (*entities)[name] = e;
          break;
        }
        case lang::MemberDecl::Kind::kDisjunction:
          // Multi-declarator grouping only; forked alternatives are not
          // part of every derivation and are skipped.
          if (m.alternatives.size() == 1) {
            CollectTopEntities(*m.alternatives[0], entities, duplicates);
          }
          break;
        default:
          break;
      }
    }
  }

  /// Satisfiability analysis for a pattern plus an optional FLWR-level
  /// predicate (the runtime folds the latter into the pattern's `where`).
  /// Sound by construction: only top-level entities (present in every
  /// derivation) are constrained, and only from predicate forms the
  /// matcher evaluates per-entity with error-swallowing semantics.
  void AnalyzeUnsat(const lang::GraphDecl& decl,
                    const lang::ExprPtr& extra_where,
                    const std::string& pattern_name, StatementInfo* info,
                    std::vector<Diagnostic>* out, size_t stmt) const {
    auto mark = [&](std::string reason, lang::SourceSpan span) {
      info->unsatisfiable = true;
      info->unsat_reason = reason;
      Emit(out, Severity::kWarning, "sema.unsat",
           reason + "; the selection is provably empty", span,
           StatusCode::kOk, stmt);
    };

    for (const lang::ExprPtr& w : {decl.where, extra_where}) {
      if (w == nullptr) continue;
      std::optional<Value> v = FoldConst(*w);
      if (v && !v->Truthy()) {
        mark("where clause is constant false", w->span);
        return;
      }
    }

    // Unification/export can merge entities and rewrite their attribute
    // tuples, which invalidates per-entity reasoning; skip it then.
    if (BodyHasUnifyOrExport(decl.body)) return;

    // Top-level named entities (present in every derivation).
    std::map<std::string, Entity> entities;
    std::set<std::string> duplicates;
    CollectTopEntities(decl.body, &entities, &duplicates);
    for (const std::string& d : duplicates) entities.erase(d);
    if (entities.empty()) return;

    std::vector<const lang::Expr*> conjuncts;
    SplitAnd(decl.where, &conjuncts);
    SplitAnd(extra_where, &conjuncts);

    for (auto& [name, entity] : entities) {
      ConstraintSet cs;
      const std::optional<lang::TupleLit>& tuple =
          entity.node != nullptr ? entity.node->tuple : entity.edge->tuple;
      const lang::ExprPtr& inline_where =
          entity.node != nullptr ? entity.node->where : entity.edge->where;

      if (tuple) {
        // Later duplicate keys overwrite earlier ones in AttrTuple.
        std::map<std::string, const lang::Expr*> last;
        for (const auto& [key, expr] : tuple->entries) {
          if (expr != nullptr) last[key] = expr.get();
        }
        for (const auto& [key, expr] : last) {
          std::optional<Value> v = FoldConst(*expr);
          if (v) cs.Add(key, lang::BinaryOp::kEq, *v);
        }
      }

      if (inline_where) {
        std::optional<Value> v = FoldConst(*inline_where);
        if (v && !v->Truthy()) {
          mark("pattern " +
                   std::string(entity.node != nullptr ? "node" : "edge") +
                   " '" + name + "' has a constant-false where clause",
               entity.span);
          return;
        }
        std::vector<const lang::Expr*> own;
        SplitAnd(inline_where, &own);
        for (const lang::Expr* c : own) {
          if (ConjunctTargets(*c, name, pattern_name)) {
            ApplyCmp(*c, name, pattern_name, &cs);
          }
        }
      }

      for (const lang::Expr* c : conjuncts) {
        if (ConjunctTargets(*c, name, pattern_name)) {
          ApplyCmp(*c, name, pattern_name, &cs);
        }
      }

      if (cs.unsat()) {
        mark("pattern " +
                 std::string(entity.node != nullptr ? "node" : "edge") +
                 " '" + name + "' can never match: " + cs.reason(),
             entity.span);
        return;
      }
    }
  }

  // ------------------------------------------------------------ templates

  using ParamFn = std::function<bool(const std::string&)>;

  struct TemplateCtx {
    std::set<std::string> nodes;    ///< Declared node names, verbatim.
    std::set<std::string> aliases;  ///< Roots of absorbed parameter graphs.
    bool dyn = false;               ///< A parameter graph was absorbed.

    bool NodeResolves(const std::string& name) const {
      if (nodes.count(name)) return true;
      std::string prefix = name + ".";
      auto it = nodes.lower_bound(prefix);
      return it != nodes.end() && it->compare(0, prefix.size(), prefix) == 0;
    }
  };

  void CollectTemplateNames(const lang::GraphBody& body,
                            TemplateCtx* ctx) const {
    for (const lang::MemberDecl& m : body.members) {
      switch (m.kind) {
        case lang::MemberDecl::Kind::kNode:
          if (!m.node.name.empty()) ctx->nodes.insert(m.node.name);
          break;
        case lang::MemberDecl::Kind::kExport:
          if (!m.export_decl.as.empty()) ctx->nodes.insert(m.export_decl.as);
          break;
        case lang::MemberDecl::Kind::kGraphRef:
          ctx->aliases.insert(m.graph_ref.alias.empty()
                                  ? m.graph_ref.graph_name
                                  : m.graph_ref.alias);
          ctx->dyn = true;
          break;
        case lang::MemberDecl::Kind::kDisjunction:
          for (const auto& alt : m.alternatives) {
            CollectTemplateNames(*alt, ctx);
          }
          break;
        default:
          break;
      }
    }
  }

  /// Names in template expressions resolve against the supplied parameters
  /// (the runtime evaluates tuple values and conditions with parameter
  /// bindings only); declared nodes and absorbed aliases are accepted
  /// conservatively.
  void CheckTemplateExpr(const lang::Expr& expr, const TemplateCtx& full,
                         const ParamFn& param_exists,
                         std::vector<Diagnostic>* out, size_t stmt) const {
    std::vector<const lang::Expr*> names;
    CollectNameExprs(expr, &names);
    for (const lang::Expr* n : names) {
      const std::vector<std::string>& p = n->path;
      if (p.size() < 2) continue;  // Bare names: not statically decidable.
      if (param_exists(p[0]) || full.aliases.count(p[0]) ||
          full.NodeResolves(p[0])) {
        continue;
      }
      Emit(out, Severity::kError, "sema.unbound-name",
           "cannot resolve '" + Join(p, ".") + "': '" + p[0] +
               "' is neither a supplied parameter nor a declared node",
           n->span, StatusCode::kNotFound, stmt);
    }
  }

  /// Ordered walk of a template body mirroring GraphTemplate::Instantiate:
  /// parameters must be supplied, endpoints resolve against the assembly
  /// scope built so far, and disjunction is unsupported.
  bool CheckTemplateMembers(const lang::GraphBody& body, TemplateCtx* cur,
                            const TemplateCtx& full,
                            const ParamFn& param_exists,
                            std::vector<Diagnostic>* out, size_t stmt,
                            const lang::SourceSpan& fallback) const {
    for (const lang::MemberDecl& m : body.members) {
      switch (m.kind) {
        case lang::MemberDecl::Kind::kNode:
          if (m.node.tuple) {
            for (const auto& [key, expr] : m.node.tuple->entries) {
              if (expr) CheckTemplateExpr(*expr, full, param_exists, out, stmt);
            }
          }
          if (m.node.where) {
            CheckTemplateExpr(*m.node.where, full, param_exists, out, stmt);
          }
          if (!m.node.name.empty()) cur->nodes.insert(m.node.name);
          break;
        case lang::MemberDecl::Kind::kEdge: {
          const lang::EdgeDecl& e = m.edge;
          auto endpoint = [&](const std::vector<std::string>& path,
                             const lang::SourceSpan& span) {
            if (path.empty() || cur->dyn) return;
            if (!cur->NodeResolves(Join(path, "."))) {
              Emit(out, Severity::kError, "sema.undeclared-node",
                   "template edge endpoint '" + Join(path, ".") +
                       "' is not a declared node",
                   span, StatusCode::kNotFound, stmt);
            }
          };
          endpoint(e.src, e.src_span);
          endpoint(e.dst, e.dst_span);
          if (e.tuple) {
            for (const auto& [key, expr] : e.tuple->entries) {
              if (expr) CheckTemplateExpr(*expr, full, param_exists, out, stmt);
            }
          }
          if (e.where) {
            CheckTemplateExpr(*e.where, full, param_exists, out, stmt);
          }
          break;
        }
        case lang::MemberDecl::Kind::kGraphRef:
          if (!param_exists(m.graph_ref.graph_name)) {
            Emit(out, Severity::kError, "sema.missing-param",
                 "template references parameter '" + m.graph_ref.graph_name +
                     "' which was not supplied",
                 m.graph_ref.span, StatusCode::kNotFound, stmt);
          }
          cur->dyn = true;
          cur->aliases.insert(m.graph_ref.alias.empty()
                                  ? m.graph_ref.graph_name
                                  : m.graph_ref.alias);
          break;
        case lang::MemberDecl::Kind::kUnify: {
          const lang::UnifyDecl& u = m.unify;
          for (size_t i = 0; i < u.names.size(); ++i) {
            if (cur->dyn) break;
            if (!cur->NodeResolves(Join(u.names[i], "."))) {
              lang::SourceSpan span =
                  i < u.name_spans.size() ? u.name_spans[i] : u.span;
              Emit(out, Severity::kError, "sema.undeclared-node",
                   "unify target '" + Join(u.names[i], ".") +
                       "' is not a declared node",
                   span, StatusCode::kNotFound, stmt);
            }
          }
          if (u.where) {
            CheckTemplateExpr(*u.where, full, param_exists, out, stmt);
          }
          break;
        }
        case lang::MemberDecl::Kind::kExport:
          if (!cur->dyn &&
              !cur->NodeResolves(Join(m.export_decl.source, "."))) {
            Emit(out, Severity::kError, "sema.undeclared-node",
                 "export source '" + Join(m.export_decl.source, ".") +
                     "' is not a declared node",
                 m.export_decl.span, StatusCode::kNotFound, stmt);
          }
          if (!m.export_decl.as.empty()) cur->nodes.insert(m.export_decl.as);
          break;
        case lang::MemberDecl::Kind::kDisjunction:
          if (m.alternatives.size() == 1) {
            if (!CheckTemplateMembers(*m.alternatives[0], cur, full,
                                      param_exists, out, stmt, fallback)) {
              return false;
            }
            break;
          }
          Emit(out, Severity::kError, "sema.template-disjunction",
               "graph templates do not support disjunction (instantiation "
               "would be ambiguous)",
               fallback, StatusCode::kUnsupported, stmt);
          return false;
      }
    }
    return true;
  }

  void CheckTemplate(const lang::GraphDecl& decl, const ParamFn& param_exists,
                     std::vector<Diagnostic>* out, size_t stmt,
                     const lang::SourceSpan& fallback) const {
    TemplateCtx full;
    CollectTemplateNames(decl.body, &full);
    if (decl.tuple) {
      for (const auto& [key, expr] : decl.tuple->entries) {
        if (expr) CheckTemplateExpr(*expr, full, param_exists, out, stmt);
      }
    }
    if (decl.where) {
      CheckTemplateExpr(*decl.where, full, param_exists, out, stmt);
    }
    TemplateCtx ordered;
    CheckTemplateMembers(decl.body, &ordered, full, param_exists, out, stmt,
                         fallback.valid() ? fallback : decl.span);
  }

  // ---------------------------------------------------------------- lints

  /// Top-level members with multi-declarator groups unwrapped; false when
  /// the body uses composition or disjunction (component analysis would
  /// need derivation enumeration, so the lint skips those).
  static bool FlattenTop(const lang::GraphBody& body,
                         std::vector<const lang::MemberDecl*>* out) {
    for (const lang::MemberDecl& m : body.members) {
      if (m.kind == lang::MemberDecl::Kind::kGraphRef) return false;
      if (m.kind == lang::MemberDecl::Kind::kDisjunction) {
        if (m.alternatives.size() != 1) return false;
        if (!FlattenTop(*m.alternatives[0], out)) return false;
        continue;
      }
      out->push_back(&m);
    }
    return true;
  }

  void LintCartesian(const lang::GraphDecl& decl,
                     std::vector<Diagnostic>* out, size_t stmt) const {
    std::vector<const lang::MemberDecl*> tops;
    if (!FlattenTop(decl.body, &tops)) return;

    std::vector<int> parent;
    std::map<std::string, int> byname;
    auto add = [&](const std::string& name) {
      int id = static_cast<int>(parent.size());
      parent.push_back(id);
      if (!name.empty()) byname[name] = id;
      return id;
    };
    std::function<int(int)> find = [&](int x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    auto unite = [&](int a, int b) {
      if (a < 0 || b < 0) return;
      parent[find(a)] = find(b);
    };
    auto lookup = [&](const std::vector<std::string>& path) {
      auto it = byname.find(Join(path, "."));
      return it == byname.end() ? -1 : it->second;
    };

    size_t named_or_anon_nodes = 0;
    for (const lang::MemberDecl* m : tops) {
      if (m->kind == lang::MemberDecl::Kind::kNode) {
        add(m->node.name);
        ++named_or_anon_nodes;
      } else if (m->kind == lang::MemberDecl::Kind::kExport) {
        if (!m->export_decl.as.empty()) add(m->export_decl.as);
      }
    }
    for (const lang::MemberDecl* m : tops) {
      switch (m->kind) {
        case lang::MemberDecl::Kind::kEdge:
          unite(lookup(m->edge.src), lookup(m->edge.dst));
          break;
        case lang::MemberDecl::Kind::kUnify:
          for (size_t i = 1; i < m->unify.names.size(); ++i) {
            unite(lookup(m->unify.names[0]), lookup(m->unify.names[i]));
          }
          break;
        case lang::MemberDecl::Kind::kExport: {
          auto it = byname.find(m->export_decl.as);
          unite(lookup(m->export_decl.source),
                it == byname.end() ? -1 : it->second);
          break;
        }
        default:
          break;
      }
    }
    if (named_or_anon_nodes < 2) return;
    std::set<int> roots;
    for (int i = 0; i < static_cast<int>(parent.size()); ++i) {
      roots.insert(find(i));
    }
    if (roots.size() >= 2) {
      Emit(out, Severity::kWarning, "lint.cartesian-product",
           "pattern has " + std::to_string(roots.size()) +
               " disconnected components; matches combine as a Cartesian "
               "product",
           decl.span, StatusCode::kOk, stmt);
    }
  }

  /// Collects every binding name a FLWR statement references: pattern
  /// edges/unify/exports, all predicates, and the template.
  void CollectUses(const lang::GraphBody& body, const std::string& pname,
                   std::set<std::string>* used) const {
    auto use_name = [&](const std::vector<std::string>& path) {
      std::vector<std::string> p = StripPattern(path, pname);
      if (p.empty()) return;
      used->insert(p[0]);
      if (p.size() >= 2) {
        used->insert(
            Join(std::vector<std::string>(p.begin(), p.end() - 1), "."));
      }
      used->insert(Join(p, "."));
    };
    auto use_expr = [&](const lang::ExprPtr& e) {
      if (e == nullptr) return;
      std::vector<const lang::Expr*> names;
      CollectNameExprs(*e, &names);
      for (const lang::Expr* n : names) use_name(n->path);
    };
    auto use_tuple = [&](const std::optional<lang::TupleLit>& t) {
      if (!t) return;
      for (const auto& [key, value] : t->entries) use_expr(value);
    };
    for (const lang::MemberDecl& m : body.members) {
      switch (m.kind) {
        case lang::MemberDecl::Kind::kNode:
          // Template nodes may be declared under a dotted match path
          // (`node P.v1;`, Figure 4.12) — that is a use of the binding.
          if (m.node.name.find('.') != std::string::npos) {
            use_name(Split(m.node.name, '.'));
          }
          use_tuple(m.node.tuple);
          use_expr(m.node.where);
          break;
        case lang::MemberDecl::Kind::kEdge:
          use_name(m.edge.src);
          use_name(m.edge.dst);
          use_tuple(m.edge.tuple);
          use_expr(m.edge.where);
          break;
        case lang::MemberDecl::Kind::kUnify:
          for (const auto& n : m.unify.names) use_name(n);
          use_expr(m.unify.where);
          break;
        case lang::MemberDecl::Kind::kExport:
          use_name(m.export_decl.source);
          break;
        case lang::MemberDecl::Kind::kGraphRef:
          used->insert(m.graph_ref.graph_name);
          break;
        case lang::MemberDecl::Kind::kDisjunction:
          for (const auto& alt : m.alternatives) {
            CollectUses(*alt, pname, used);
          }
          break;
      }
    }
  }

  void LintUnused(const lang::FlwrExpr& flwr, std::vector<Diagnostic>* out,
                  size_t stmt) const {
    if (!flwr.pattern || !flwr.template_decl) return;
    const lang::GraphDecl& decl = *flwr.pattern;
    if (BodyHasGraphRef(decl.body)) return;  // Nested names: too dynamic.
    const std::string& pname = decl.name;

    // `graph P;` inside the template absorbs the whole match.
    std::set<std::string> tuses;
    CollectUses(flwr.template_decl->body, pname, &tuses);
    if (!pname.empty() && tuses.count(pname)) return;

    std::set<std::string> used = tuses;
    CollectUses(decl.body, pname, &used);
    auto use_expr = [&](const lang::ExprPtr& e) {
      if (e == nullptr) return;
      std::vector<const lang::Expr*> names;
      CollectNameExprs(*e, &names);
      for (const lang::Expr* n : names) {
        std::vector<std::string> p = StripPattern(n->path, pname);
        if (p.empty()) continue;
        used.insert(p[0]);
        if (p.size() >= 2) {
          used.insert(
              Join(std::vector<std::string>(p.begin(), p.end() - 1), "."));
        }
      }
    };
    use_expr(decl.where);
    use_expr(flwr.where);
    use_expr(flwr.template_decl->where);
    if (flwr.template_decl->tuple) {
      for (const auto& [key, expr] : flwr.template_decl->tuple->entries) {
        use_expr(expr);
      }
    }

    std::vector<const lang::MemberDecl*> tops;
    if (!FlattenTop(decl.body, &tops)) return;
    for (const lang::MemberDecl* m : tops) {
      if (m->kind == lang::MemberDecl::Kind::kNode &&
          !m->node.name.empty() && used.count(m->node.name) == 0) {
        Emit(out, Severity::kWarning, "lint.unused-binding",
             "node binding '" + m->node.name +
                 "' is never referenced by an edge, predicate, or the "
                 "template",
             m->node.span, StatusCode::kOk, stmt);
      } else if (m->kind == lang::MemberDecl::Kind::kEdge &&
                 !m->edge.name.empty() && used.count(m->edge.name) == 0) {
        Emit(out, Severity::kWarning, "lint.unused-binding",
             "edge binding '" + m->edge.name +
                 "' is never referenced by a predicate or the template",
             m->edge.span, StatusCode::kOk, stmt);
      }
    }
  }

  // ----------------------------------------------------------- statements

  void MarkUsed(const std::string& name) {
    if (!used_.insert(name).second) return;
    const lang::GraphDecl* d = Lookup(name);
    if (d != nullptr) MarkUsedRefs(d->body);
  }

  void MarkUsedRefs(const lang::GraphBody& body) {
    for (const lang::MemberDecl& m : body.members) {
      if (m.kind == lang::MemberDecl::Kind::kGraphRef) {
        MarkUsed(m.graph_ref.graph_name);
      } else if (m.kind == lang::MemberDecl::Kind::kDisjunction) {
        for (const auto& alt : m.alternatives) MarkUsedRefs(*alt);
      }
    }
  }

  void ClassifyInto(const lang::GraphDecl& decl, StatementInfo* info,
                    std::vector<Diagnostic>* issues,
                    std::vector<Diagnostic>* lints, lang::SourceSpan span,
                    size_t stmt) const {
    RecursionInfo rec = ClassifyRecursion(decl, AsLookup());
    info->recursive = rec.recursive;
    info->terminates = rec.terminates;
    if (!rec.terminates) {
      Emit(issues, Severity::kError, "sema.unstratified-recursion",
           "recursive motif '" + decl.name +
               "' has no base-case alternative: its derivation fixpoint is "
               "empty, so the pattern derives no motifs",
           span, StatusCode::kInvalidArgument, stmt);
      return;
    }
    size_t cap = options_.build.max_graphs;
    if (cap > 0) {
      size_t est =
          EstimateDerivations(decl, AsLookup(), options_.build.max_depth, cap);
      if (est >= cap) {
        Emit(lints, Severity::kWarning, "lint.derivation-explosion",
             "motif may derive " + std::to_string(cap) +
                 "+ graphs (max_graphs = " + std::to_string(cap) +
                 "); the builder would stop with LimitExceeded — reduce "
                 "repetition depth or disjunction width",
             span, StatusCode::kLimitExceeded, stmt);
      }
    }
  }

  void ProcessGraphDecl(const lang::Statement& stmt, size_t i) {
    const lang::GraphDecl& g = stmt.graph;
    if (g.name.empty()) {
      Emit(&result_.diagnostics, Severity::kError, "sema.unnamed-motif",
           "top-level graph declaration has no name to register under",
           stmt.span, StatusCode::kInvalidArgument, i);
      return;
    }
    local_decls_[g.name] = &g;
    DeclRecord rec;
    rec.name = g.name;
    rec.statement = i;
    CheckPatternDecl(g, &rec.issues, i);
    ClassifyInto(g, &result_.statements[i], &rec.issues, &rec.lints,
                 g.span.valid() ? g.span : stmt.span, i);
    LintCartesian(g, &rec.lints, i);
    decl_records_.push_back(std::move(rec));
  }

  void ProcessAssign(const lang::Statement& stmt, size_t i) {
    ParamFn params = [this](const std::string& n) { return VarExists(n); };
    CheckTemplate(stmt.graph, params, &result_.diagnostics, i, stmt.span);
    local_vars_.insert(stmt.assign_target);
  }

  void ProcessFlwr(const lang::Statement& stmt, size_t i) {
    const lang::FlwrExpr& flwr = stmt.flwr;
    StatementInfo& info = result_.statements[i];
    std::vector<Diagnostic>* out = &result_.diagnostics;

    const lang::GraphDecl* pattern = nullptr;
    std::string pattern_name;
    if (flwr.pattern) {
      pattern = &*flwr.pattern;
      pattern_name = pattern->name;
      CheckPatternDecl(*pattern, out, i);
      std::vector<Diagnostic> lints;
      ClassifyInto(*pattern, &info, out, &lints,
                   flwr.pattern_span.valid() ? flwr.pattern_span : stmt.span,
                   i);
      for (Diagnostic& d : lints) out->push_back(std::move(d));
      LintCartesian(*pattern, out, i);
      MarkUsedRefs(pattern->body);
    } else {
      pattern = Lookup(flwr.pattern_ref);
      pattern_name = flwr.pattern_ref;
      if (pattern == nullptr) {
        Emit(out, Severity::kError, "sema.unknown-pattern",
             "FLWR pattern '" + flwr.pattern_ref + "' is not declared",
             flwr.pattern_span, StatusCode::kNotFound, i);
      } else {
        MarkUsed(flwr.pattern_ref);
        RecursionInfo rec = ClassifyRecursion(*pattern, AsLookup());
        info.recursive = rec.recursive;
        info.terminates = rec.terminates;
        // Unstratified *local* declarations get their error through the
        // used-declaration bucket; session-registered ones are flagged
        // here, at the use site.
        if (!rec.terminates && local_decls_.count(flwr.pattern_ref) == 0) {
          Emit(out, Severity::kError, "sema.unstratified-recursion",
               "recursive motif '" + flwr.pattern_ref +
                   "' has no base-case alternative: its derivation fixpoint "
                   "is empty, so the pattern derives no motifs",
               flwr.pattern_span, StatusCode::kInvalidArgument, i);
        }
      }
    }

    if (options_.doc_exists && !options_.doc_exists(flwr.doc)) {
      Emit(out, Severity::kError, "sema.unknown-doc",
           "document '" + flwr.doc + "' is not registered", flwr.doc_span,
           StatusCode::kNotFound, i);
    }

    if (pattern != nullptr && flwr.where != nullptr) {
      Scope scope = ScopeOf(*pattern);
      CheckPredNames(*flwr.where, scope, pattern_name, out, i);
    }

    if (flwr.template_decl) {
      ParamFn params = [&](const std::string& n) {
        return n == pattern_name ||
               (flwr.is_let && n == flwr.let_target) || VarExists(n);
      };
      CheckTemplate(*flwr.template_decl, params, out, i,
                    flwr.template_span.valid() ? flwr.template_span
                                               : stmt.span);
    } else if (pattern != nullptr && flwr.template_ref != pattern_name) {
      Emit(out, Severity::kError, "sema.unknown-template",
           "FLWR template '" + flwr.template_ref +
               "' is neither inline nor the pattern name",
           flwr.template_span, StatusCode::kNotFound, i);
    }

    if (pattern != nullptr && (!info.recursive || info.terminates)) {
      AnalyzeUnsat(*pattern, flwr.where, pattern_name, &info, out, i);
    }

    LintUnused(flwr, out, i);

    if (flwr.is_let && !flwr.let_target.empty()) {
      local_vars_.insert(flwr.let_target);
    }
  }

  void Finalize() {
    for (DeclRecord& rec : decl_records_) {
      bool used = used_.count(rec.name) > 0;
      for (Diagnostic& d : rec.issues) {
        if (!used) d.severity = Severity::kWarning;
        result_.diagnostics.push_back(std::move(d));
      }
      for (Diagnostic& d : rec.lints) {
        result_.diagnostics.push_back(std::move(d));
      }
    }
    std::stable_sort(result_.diagnostics.begin(), result_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       if (a.statement != b.statement) {
                         return a.statement < b.statement;
                       }
                       if (a.span.line != b.span.line) {
                         return a.span.line < b.span.line;
                       }
                       return a.span.column < b.span.column;
                     });
  }

  const lang::Program& program_;
  const AnalyzeOptions& options_;
  Analysis result_;
  std::map<std::string, const lang::GraphDecl*> local_decls_;
  std::set<std::string> local_vars_;
  std::set<std::string> used_;
  std::vector<DeclRecord> decl_records_;
};

}  // namespace

Analysis Analyze(const lang::Program& program, const AnalyzeOptions& options) {
  return Analyzer(program, options).Run();
}

}  // namespace graphql::sema
