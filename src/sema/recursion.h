#ifndef GRAPHQL_SEMA_RECURSION_H_
#define GRAPHQL_SEMA_RECURSION_H_

#include <cstddef>
#include <functional>
#include <string>

#include "lang/ast.h"

namespace graphql::sema {

/// Resolves a motif name to its declaration; null when unknown. The sema
/// layer abstracts the lookup so it can layer program-local declarations
/// over a session registry.
using MotifLookup =
    std::function<const lang::GraphDecl*(const std::string&)>;

/// Classification of one motif/pattern against the paper's language
/// hierarchy (Section 4): the non-recursive fragment is equivalent to
/// relational algebra (Theorem 4.5); recursive motif composition needs the
/// fixpoint of the Datalog translation (Theorem 4.6).
struct RecursionInfo {
  /// The motif (transitively) references itself: repetition, Section 2.3.
  bool recursive = false;
  /// The derivation fixpoint is non-empty: every recursive cycle can be
  /// exited through a base case (a disjunction alternative that derives
  /// without re-entering the cycle). Non-recursive motifs trivially
  /// terminate. A recursive motif with no base case is the analogue of an
  /// unstratified Datalog program here: its least fixpoint derives no
  /// graphs, so the query can never produce a result.
  bool terminates = true;

  /// Non-recursive fragment of GraphQL (nr-GraphQL, Theorem 4.5).
  bool nr() const { return !recursive; }
};

/// Classifies `decl` by walking its body through `lookup`. Unknown motif
/// references are treated as terminating leaves (their absence is reported
/// by name resolution, not here).
RecursionInfo ClassifyRecursion(const lang::GraphDecl& decl,
                                const MotifLookup& lookup);

/// Upper-bound estimate of how many concrete graphs the motif derives
/// under `max_depth` recursive expansions (disjunctions multiply, each
/// recursion level multiplies by the branching of the cycle). The estimate
/// saturates at `cap`; use it to warn when repetition bounds explode past
/// BuildOptions::max_graphs before the builder burns through the work.
size_t EstimateDerivations(const lang::GraphDecl& decl,
                           const MotifLookup& lookup, size_t max_depth,
                           size_t cap);

}  // namespace graphql::sema

#endif  // GRAPHQL_SEMA_RECURSION_H_
