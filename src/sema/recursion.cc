#include "sema/recursion.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace graphql::sema {

namespace {

/// Collects the named motifs reachable from `body` (transitively, through
/// `lookup`) into `out`.
void CollectReachable(const lang::GraphBody& body, const MotifLookup& lookup,
                      std::set<std::string>* out) {
  for (const lang::MemberDecl& member : body.members) {
    if (member.kind == lang::MemberDecl::Kind::kGraphRef) {
      const std::string& name = member.graph_ref.graph_name;
      if (out->count(name)) continue;
      const lang::GraphDecl* target = lookup(name);
      if (target == nullptr) continue;
      out->insert(name);
      CollectReachable(target->body, lookup, out);
    } else if (member.kind == lang::MemberDecl::Kind::kDisjunction) {
      for (const auto& alt : member.alternatives) {
        CollectReachable(*alt, lookup, out);
      }
    }
  }
}

/// True if a DFS from `body` re-enters a name already on `stack`.
bool HasCycle(const lang::GraphBody& body, const MotifLookup& lookup,
              std::vector<std::string>* stack) {
  for (const lang::MemberDecl& member : body.members) {
    if (member.kind == lang::MemberDecl::Kind::kGraphRef) {
      const std::string& name = member.graph_ref.graph_name;
      if (std::find(stack->begin(), stack->end(), name) != stack->end()) {
        return true;
      }
      const lang::GraphDecl* target = lookup(name);
      if (target == nullptr) continue;
      stack->push_back(name);
      bool cyclic = HasCycle(target->body, lookup, stack);
      stack->pop_back();
      if (cyclic) return true;
    } else if (member.kind == lang::MemberDecl::Kind::kDisjunction) {
      for (const auto& alt : member.alternatives) {
        if (HasCycle(*alt, lookup, stack)) return true;
      }
    }
  }
  return false;
}

/// Monotone termination transfer function: a body terminates when every
/// member does; a (≥2-way) disjunction when at least one alternative does;
/// a motif reference when its target does under the current assumption.
bool BodyTerminates(const lang::GraphBody& body, const MotifLookup& lookup,
                    const std::map<std::string, bool>& term) {
  for (const lang::MemberDecl& member : body.members) {
    switch (member.kind) {
      case lang::MemberDecl::Kind::kGraphRef: {
        auto it = term.find(member.graph_ref.graph_name);
        if (it != term.end() && !it->second) return false;
        break;  // Unknown names: name resolution reports them.
      }
      case lang::MemberDecl::Kind::kDisjunction: {
        if (member.alternatives.size() == 1) {
          // Parser encoding for grouping / multi-declarator statements.
          if (!BodyTerminates(*member.alternatives[0], lookup, term)) {
            return false;
          }
          break;
        }
        bool any = false;
        for (const auto& alt : member.alternatives) {
          if (BodyTerminates(*alt, lookup, term)) {
            any = true;
            break;
          }
        }
        if (!any) return false;
        break;
      }
      default:
        break;  // Nodes, edges, unify, export always terminate.
    }
  }
  return true;
}

constexpr size_t kMaxEstimateNesting = 64;

size_t SatAdd(size_t a, size_t b, size_t cap) {
  return (a > cap - b || a + b > cap) ? cap : a + b;
}

size_t SatMul(size_t a, size_t b, size_t cap) {
  if (a == 0 || b == 0) return 0;
  if (a > cap / b) return cap;
  return std::min(a * b, cap);
}

/// Derivation-count estimate for one body; 0 means "every derivation dies"
/// (recursion with no remaining depth and no base case on this path).
size_t EstimateBody(const lang::GraphBody& body, const MotifLookup& lookup,
                    size_t depth_left, size_t cap,
                    std::vector<std::string>* stack) {
  size_t product = 1;
  for (const lang::MemberDecl& member : body.members) {
    size_t factor = 1;
    switch (member.kind) {
      case lang::MemberDecl::Kind::kGraphRef: {
        const std::string& name = member.graph_ref.graph_name;
        const lang::GraphDecl* target = lookup(name);
        if (target == nullptr) break;
        if (stack->size() > kMaxEstimateNesting) return cap;
        bool recursive =
            std::find(stack->begin(), stack->end(), name) != stack->end();
        if (recursive && depth_left == 0) return 0;  // Derivation dies.
        stack->push_back(name);
        factor = EstimateBody(target->body, lookup,
                              recursive ? depth_left - 1 : depth_left, cap,
                              stack);
        stack->pop_back();
        break;
      }
      case lang::MemberDecl::Kind::kDisjunction: {
        if (member.alternatives.size() == 1) {
          factor = EstimateBody(*member.alternatives[0], lookup, depth_left,
                                cap, stack);
          break;
        }
        factor = 0;
        for (const auto& alt : member.alternatives) {
          factor = SatAdd(
              factor, EstimateBody(*alt, lookup, depth_left, cap, stack),
              cap);
        }
        break;
      }
      default:
        break;
    }
    product = SatMul(product, factor, cap);
    if (product == 0 || product >= cap) return product;
  }
  return product;
}

}  // namespace

RecursionInfo ClassifyRecursion(const lang::GraphDecl& decl,
                                const MotifLookup& lookup) {
  RecursionInfo info;
  std::vector<std::string> stack;
  if (!decl.name.empty()) stack.push_back(decl.name);
  info.recursive = HasCycle(decl.body, lookup, &stack);
  if (!info.recursive) return info;

  // Least fixpoint: start from "nothing terminates" and iterate the
  // monotone transfer function until stable; motifs whose flag stays false
  // have no derivation that escapes the cycle.
  std::set<std::string> reachable;
  if (!decl.name.empty() && lookup(decl.name) != nullptr) {
    reachable.insert(decl.name);
  }
  CollectReachable(decl.body, lookup, &reachable);
  std::map<std::string, bool> term;
  for (const std::string& name : reachable) term[name] = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::string& name : reachable) {
      if (term[name]) continue;
      const lang::GraphDecl* d = lookup(name);
      if (d != nullptr && BodyTerminates(d->body, lookup, term)) {
        term[name] = true;
        changed = true;
      }
    }
  }
  info.terminates = BodyTerminates(decl.body, lookup, term);
  return info;
}

size_t EstimateDerivations(const lang::GraphDecl& decl,
                           const MotifLookup& lookup, size_t max_depth,
                           size_t cap) {
  std::vector<std::string> stack;
  if (!decl.name.empty()) stack.push_back(decl.name);
  return EstimateBody(decl.body, lookup, max_depth, cap, &stack);
}

}  // namespace graphql::sema
