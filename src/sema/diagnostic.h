#ifndef GRAPHQL_SEMA_DIAGNOSTIC_H_
#define GRAPHQL_SEMA_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lang/token.h"

namespace graphql::sema {

/// How bad a finding is. Errors make the program unrunnable (the evaluator
/// refuses to execute it); warnings flag constructs that run but are almost
/// certainly mistakes; notes carry classification facts (e.g. "this query
/// is in the non-recursive fragment").
enum class Severity {
  kError = 0,
  kWarning,
  kNote,
};

const char* SeverityName(Severity severity);

/// One finding of the semantic analyzer: a stable machine-readable code
/// (dot-separated, e.g. "sema.unbound-name", "lint.cartesian-product"), a
/// human message, the source span it points at, and — for errors — the
/// StatusCode the evaluator would have failed with at runtime, so that
/// static rejection preserves the error contract of the execution path.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;
  std::string message;
  lang::SourceSpan span;
  StatusCode status = StatusCode::kInvalidArgument;
  /// Index of the program statement the finding belongs to (size_t(-1)
  /// when it is not tied to one).
  size_t statement = static_cast<size_t>(-1);

  /// "error[sema.unbound-name]: message (line 3, column 7)".
  std::string ToString() const;

  /// The Status the evaluator returns for this (error) diagnostic; the
  /// message keeps the runtime wording plus the source location.
  Status ToStatus() const;
};

/// True if any diagnostic is an error.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Renders the offending source line with a caret marker underneath:
///
///   3 |   edge e1 (a, missing);
///     |               ^~~~~~~
///
/// Returns an empty string when the span is invalid or out of range.
std::string RenderSourceContext(std::string_view source,
                                const lang::SourceSpan& span);

/// ToString() plus the caret block (when the span resolves into `source`).
std::string RenderDiagnostic(std::string_view source, const Diagnostic& d);

}  // namespace graphql::sema

#endif  // GRAPHQL_SEMA_DIAGNOSTIC_H_
