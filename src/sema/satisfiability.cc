#include "sema/satisfiability.h"

namespace graphql::sema {

namespace {

std::optional<Value> FoldBinary(lang::BinaryOp op, const Value& a,
                                const Value& b) {
  using lang::BinaryOp;
  switch (op) {
    case BinaryOp::kOr:
      return Value(a.Truthy() || b.Truthy());
    case BinaryOp::kAnd:
      return Value(a.Truthy() && b.Truthy());
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      Result<Value> r = op == BinaryOp::kAdd   ? Value::Add(a, b)
                        : op == BinaryOp::kSub ? Value::Sub(a, b)
                        : op == BinaryOp::kMul ? Value::Mul(a, b)
                                               : Value::Div(a, b);
      if (!r.ok()) return std::nullopt;
      return std::move(r).value();
    }
    case BinaryOp::kEq:
      return Value(a == b);
    case BinaryOp::kNe:
      return Value(a != b);
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      // a < b == b > a; a >= b == b <= a.
      bool flip = op == BinaryOp::kGt || op == BinaryOp::kGe;
      bool strict = op == BinaryOp::kLt || op == BinaryOp::kGt;
      const Value& lhs = flip ? b : a;
      const Value& rhs = flip ? a : b;
      Result<bool> r =
          strict ? Value::Less(lhs, rhs) : Value::LessEq(lhs, rhs);
      if (!r.ok()) return std::nullopt;
      return Value(r.value());
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Value> FoldConst(const lang::Expr& expr) {
  switch (expr.kind) {
    case lang::Expr::Kind::kLiteral:
      return expr.literal;
    case lang::Expr::Kind::kName:
      return std::nullopt;
    case lang::Expr::Kind::kBinary: {
      if (expr.lhs == nullptr || expr.rhs == nullptr) return std::nullopt;
      // `&`/`|` could short-circuit on one constant side, but runtime
      // evaluation (algebra::EvalExpr) evaluates both sides and propagates
      // their errors; folding only a fully-constant tree keeps the fold
      // behavior-preserving.
      std::optional<Value> a = FoldConst(*expr.lhs);
      if (!a) return std::nullopt;
      std::optional<Value> b = FoldConst(*expr.rhs);
      if (!b) return std::nullopt;
      return FoldBinary(expr.op, *a, *b);
    }
  }
  return std::nullopt;
}

bool ConstraintSet::Fail(const std::string& attr, const std::string& why) {
  unsat_ = true;
  reason_ = "attribute '" + attr + "': " + why;
  return false;
}

bool ConstraintSet::Add(const std::string& attr, lang::BinaryOp op,
                        const Value& value) {
  using lang::BinaryOp;
  if (unsat_) return false;
  AttrConstraint& c = attrs_[attr];

  KindClass kind;
  if (value.is_numeric()) {
    kind = KindClass::kNumeric;
  } else if (value.is_string()) {
    kind = KindClass::kString;
  } else if (value.is_bool()) {
    kind = KindClass::kBool;
  } else {
    return true;  // Null literals: no useful constraint.
  }

  // `!=` against a different-kind constant is vacuously true; every other
  // op commits the attribute to the constant's kind (equality with a
  // different kind can never hold, ordered comparison would not evaluate).
  if (c.kind && *c.kind != kind) {
    if (op == BinaryOp::kNe) return true;
    return Fail(attr, "constraints require both " +
                          std::string(*c.kind == KindClass::kNumeric
                                          ? "a numeric"
                                          : *c.kind == KindClass::kString
                                                ? "a string"
                                                : "a boolean") +
                          " and a " +
                          (kind == KindClass::kNumeric  ? "numeric"
                           : kind == KindClass::kString ? "string"
                                                        : "boolean") +
                          " value");
  }
  if (op != BinaryOp::kNe) c.kind = kind;

  auto in_interval = [&c](const Value& v) {
    if (!v.is_numeric()) return true;
    double x = v.NumericAsDouble();
    if (c.has_lo && (x < c.lo || (x == c.lo && c.lo_open))) return false;
    if (c.has_hi && (x > c.hi || (x == c.hi && c.hi_open))) return false;
    return true;
  };

  switch (op) {
    case BinaryOp::kEq:
      if (c.eq && *c.eq != value) {
        return Fail(attr, "pinned to both " + c.eq->ToString() + " and " +
                              value.ToString());
      }
      for (const Value& x : c.ne) {
        if (x == value) {
          return Fail(attr, "pinned to excluded value " + value.ToString());
        }
      }
      if (!in_interval(value)) {
        return Fail(attr, "pinned value " + value.ToString() +
                              " lies outside the required interval");
      }
      c.eq = value;
      return true;
    case BinaryOp::kNe:
      if (c.eq && *c.eq == value) {
        return Fail(attr, "pinned to excluded value " + value.ToString());
      }
      c.ne.push_back(value);
      return true;
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (!value.is_numeric()) return true;  // String order: not tracked.
      double x = value.NumericAsDouble();
      bool strict = op == BinaryOp::kLt || op == BinaryOp::kGt;
      if (op == BinaryOp::kLt || op == BinaryOp::kLe) {
        // attr < x / attr <= x: tighten the upper bound.
        if (!c.has_hi || x < c.hi || (x == c.hi && strict)) {
          c.hi = x;
          c.hi_open = strict;
          c.has_hi = true;
        }
      } else {
        if (!c.has_lo || x > c.lo || (x == c.lo && strict)) {
          c.lo = x;
          c.lo_open = strict;
          c.has_lo = true;
        }
      }
      if (c.has_lo && c.has_hi &&
          (c.lo > c.hi || (c.lo == c.hi && (c.lo_open || c.hi_open)))) {
        return Fail(attr, "required interval is empty");
      }
      if (c.eq && !in_interval(*c.eq)) {
        return Fail(attr, "pinned value " + c.eq->ToString() +
                              " lies outside the required interval");
      }
      return true;
    }
    default:
      return true;  // Arithmetic/boolean ops carry no direct constraint.
  }
}

}  // namespace graphql::sema
