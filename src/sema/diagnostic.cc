#include "sema/diagnostic.h"

#include <algorithm>
#include <cstdio>

namespace graphql::sema {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += "[";
  out += code;
  out += "]: ";
  out += message;
  if (span.valid()) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " (line %d, column %d)", span.line,
                  span.column);
    out += buf;
  }
  return out;
}

Status Diagnostic::ToStatus() const {
  std::string msg = message;
  if (span.valid()) {
    msg += " at line " + std::to_string(span.line) + ", column " +
           std::to_string(span.column);
  }
  return Status(status, std::move(msg));
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::string RenderSourceContext(std::string_view source,
                                const lang::SourceSpan& span) {
  if (!span.valid()) return "";
  // Find the span's line (1-based).
  size_t begin = 0;
  for (int line = 1; line < span.line; ++line) {
    size_t nl = source.find('\n', begin);
    if (nl == std::string_view::npos) return "";
    begin = nl + 1;
  }
  size_t end = source.find('\n', begin);
  if (end == std::string_view::npos) end = source.size();
  std::string_view text = source.substr(begin, end - begin);
  if (span.column < 1 || static_cast<size_t>(span.column) > text.size() + 1) {
    return "";
  }

  char gutter[16];
  std::snprintf(gutter, sizeof(gutter), "%4d | ", span.line);
  std::string out = gutter;
  out.append(text);
  out += "\n     | ";
  // Tabs in the source line must advance the marker line identically.
  for (int i = 0; i < span.column - 1; ++i) {
    out += (static_cast<size_t>(i) < text.size() && text[i] == '\t') ? '\t'
                                                                     : ' ';
  }
  // Clamp the marker to the line end (string literals may span lines).
  int avail = static_cast<int>(text.size()) - (span.column - 1);
  int len = std::max(1, std::min(span.length, std::max(avail, 1)));
  out += '^';
  for (int i = 1; i < len; ++i) out += '~';
  out += '\n';
  return out;
}

std::string RenderDiagnostic(std::string_view source, const Diagnostic& d) {
  std::string out = d.ToString();
  out += '\n';
  out += RenderSourceContext(source, d.span);
  return out;
}

}  // namespace graphql::sema
