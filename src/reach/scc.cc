#include "reach/scc.h"

#include <algorithm>

namespace graphql::reach {

std::vector<std::vector<NodeId>> SccResult::Members() const {
  std::vector<std::vector<NodeId>> out(num_components);
  for (size_t v = 0; v < component.size(); ++v) {
    out[component[v]].push_back(static_cast<NodeId>(v));
  }
  return out;
}

SccResult ComputeScc(const Graph& g) {
  size_t n = g.NumNodes();
  SccResult result;
  result.component.assign(n, -1);

  // Iterative Tarjan with an explicit frame stack.
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> stack;
  int next_index = 0;

  struct Frame {
    NodeId v;
    size_t edge_pos;
  };
  std::vector<Frame> frames;

  for (size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    frames.push_back(Frame{static_cast<NodeId>(root), 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      NodeId v = f.v;
      if (f.edge_pos == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      const auto& adj = g.neighbors(v);
      bool descended = false;
      while (f.edge_pos < adj.size()) {
        NodeId w = adj[f.edge_pos].node;
        ++f.edge_pos;
        if (index[w] == -1) {
          frames.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) continue;
      // All edges explored: close the frame.
      if (lowlink[v] == index[v]) {
        int comp = result.num_components++;
        for (;;) {
          NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          result.component[w] = comp;
          if (w == v) break;
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        NodeId parent = frames.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return result;
}

}  // namespace graphql::reach
