#ifndef GRAPHQL_REACH_REACHABILITY_H_
#define GRAPHQL_REACH_REACHABILITY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "reach/scc.h"

namespace graphql::reach {

/// Reachability index over a directed graph (Section 6.2: "reachability
/// queries correspond to recursive graph patterns which are paths" —
/// the paper's related-work line of indexing that this module makes
/// available as an access method for recursive path patterns).
///
/// Construction condenses the graph into its SCC DAG (Tarjan) and stores a
/// reachable-set bitset per component, filled in one pass over the
/// components in topological order. Query time is O(1); space is
/// O(#scc^2 / 64), guarded by `Options::max_bitset_bytes` — beyond the
/// budget Build refuses and callers fall back to per-query BFS
/// (`BfsReachable`).
class ReachabilityIndex {
 public:
  struct Options {
    /// Upper bound on bitset storage (default 64 MiB).
    size_t max_bitset_bytes = 64ull << 20;
  };

  /// Builds the index; the graph must outlive it and remain unmodified.
  /// Fails with LimitExceeded when #scc^2 exceeds the space budget.
  static Result<ReachabilityIndex> Build(const Graph& g,
                                         const Options& options);
  static Result<ReachabilityIndex> Build(const Graph& g) {
    return Build(g, Options());
  }

  /// True iff a directed path (possibly empty) runs from `from` to `to`.
  bool Reachable(NodeId from, NodeId to) const;

  int num_components() const { return scc_.num_components; }
  const SccResult& scc() const { return scc_; }

 private:
  ReachabilityIndex() = default;

  const Graph* graph_ = nullptr;
  SccResult scc_;
  size_t words_per_row_ = 0;
  std::vector<uint64_t> bits_;  // num_components rows.
};

/// Reference per-query BFS reachability (also the fallback when the index
/// budget is exceeded and the oracle for the property tests).
bool BfsReachable(const Graph& g, NodeId from, NodeId to);

}  // namespace graphql::reach

#endif  // GRAPHQL_REACH_REACHABILITY_H_
