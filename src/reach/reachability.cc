#include "reach/reachability.h"

#include <queue>

namespace graphql::reach {

Result<ReachabilityIndex> ReachabilityIndex::Build(const Graph& g,
                                                   const Options& options) {
  ReachabilityIndex index;
  index.graph_ = &g;
  index.scc_ = ComputeScc(g);
  size_t k = static_cast<size_t>(index.scc_.num_components);
  index.words_per_row_ = (k + 63) / 64;
  size_t bytes = k * index.words_per_row_ * 8;
  if (bytes > options.max_bitset_bytes) {
    return Status::LimitExceeded(
        "reachability bitset would need " + std::to_string(bytes) +
        " bytes (" + std::to_string(k) +
        " components); raise max_bitset_bytes or use BfsReachable");
  }
  index.bits_.assign(k * index.words_per_row_, 0);

  // Tarjan numbers components in reverse topological order: every edge
  // u -> v across components has component(u) > component(v). Processing
  // components in increasing id therefore sees all successors of a
  // component before the component itself.
  auto row = [&](size_t comp) { return comp * index.words_per_row_; };
  for (size_t c = 0; c < k; ++c) {
    index.bits_[row(c) + c / 64] |= uint64_t{1} << (c % 64);
  }
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    size_t cu = static_cast<size_t>(index.scc_.component[v]);
    for (const Graph::Adj& a : g.neighbors(static_cast<NodeId>(v))) {
      size_t cv = static_cast<size_t>(index.scc_.component[a.node]);
      if (cu == cv) continue;
      // OR cv's row into cu's row. Because cv < cu, cv's row is final by
      // the time cu is queried — but edges arrive in node order, not
      // component order, so do the propagation in a second, ordered pass.
      // Here we only record the direct edge.
      index.bits_[row(cu) + cv / 64] |= uint64_t{1} << (cv % 64);
    }
  }
  // Ordered propagation: components in increasing id (reverse topological:
  // successors first). For each set successor bit cv in cu's row, OR in
  // cv's (already complete) row.
  for (size_t cu = 1; cu < k; ++cu) {
    for (size_t w = 0; w < index.words_per_row_; ++w) {
      uint64_t word = index.bits_[row(cu) + w];
      while (word != 0) {
        size_t bit = static_cast<size_t>(__builtin_ctzll(word));
        word &= word - 1;
        size_t cv = w * 64 + bit;
        if (cv >= cu) continue;
        for (size_t ww = 0; ww < index.words_per_row_; ++ww) {
          index.bits_[row(cu) + ww] |= index.bits_[row(cv) + ww];
        }
      }
    }
  }
  return index;
}

bool ReachabilityIndex::Reachable(NodeId from, NodeId to) const {
  size_t cu = static_cast<size_t>(scc_.component[from]);
  size_t cv = static_cast<size_t>(scc_.component[to]);
  return (bits_[cu * words_per_row_ + cv / 64] >> (cv % 64)) & 1;
}

bool BfsReachable(const Graph& g, NodeId from, NodeId to) {
  if (from == to) return true;
  std::vector<char> seen(g.NumNodes(), 0);
  std::queue<NodeId> queue;
  queue.push(from);
  seen[from] = 1;
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop();
    for (const Graph::Adj& a : g.neighbors(v)) {
      if (a.node == to) return true;
      if (!seen[a.node]) {
        seen[a.node] = 1;
        queue.push(a.node);
      }
    }
  }
  return false;
}

}  // namespace graphql::reach
