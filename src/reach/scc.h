#ifndef GRAPHQL_REACH_SCC_H_
#define GRAPHQL_REACH_SCC_H_

#include <vector>

#include "graph/graph.h"

namespace graphql::reach {

/// Strongly connected components of a directed graph (iterative Tarjan).
/// Component ids are assigned in reverse topological order of the
/// condensation: for every edge u -> v across components,
/// component(u) > component(v). For undirected graphs every connected
/// component is one SCC.
struct SccResult {
  /// Node id -> component id (0 .. num_components-1).
  std::vector<int> component;
  int num_components = 0;

  /// Members of each component, in node-id order.
  std::vector<std::vector<NodeId>> Members() const;
};

SccResult ComputeScc(const Graph& g);

}  // namespace graphql::reach

#endif  // GRAPHQL_REACH_SCC_H_
