#include "rel/operators.h"

namespace graphql::rel {

SeqScan::SeqScan(const Table* table, std::vector<RowPredicate> preds,
                 ExecStats* stats)
    : table_(table), preds_(std::move(preds)), stats_(stats) {}

void SeqScan::Open() { pos_ = 0; }

bool SeqScan::Next(Row* out) {
  while (pos_ < table_->NumRows()) {
    const Row& row = table_->row(pos_++);
    ++stats_->rows_scanned;
    stats_->predicate_evals += preds_.size();
    if (!EvalAll(preds_, row)) continue;
    *out = row;
    ++stats_->rows_emitted;
    return true;
  }
  return false;
}

IndexEqScan::IndexEqScan(const Table* table, const HashIndex* index, Key key,
                         std::vector<RowPredicate> preds, ExecStats* stats)
    : table_(table),
      index_(index),
      key_(std::move(key)),
      preds_(std::move(preds)),
      stats_(stats) {}

void IndexEqScan::Open() {
  ++stats_->index_probes;
  bucket_ = &index_->Lookup(key_);
  pos_ = 0;
}

bool IndexEqScan::Next(Row* out) {
  while (pos_ < bucket_->size()) {
    const Row& row = table_->row((*bucket_)[pos_++]);
    ++stats_->rows_scanned;
    stats_->predicate_evals += preds_.size();
    if (!EvalAll(preds_, row)) continue;
    *out = row;
    ++stats_->rows_emitted;
    return true;
  }
  return false;
}

IndexNestedLoopJoin::IndexNestedLoopJoin(OperatorPtr left, const Table* right,
                                         const HashIndex* right_index,
                                         std::vector<int> left_key_columns,
                                         std::vector<RowPredicate> preds,
                                         ExecStats* stats)
    : left_(std::move(left)),
      right_(right),
      right_index_(right_index),
      left_key_columns_(std::move(left_key_columns)),
      preds_(std::move(preds)),
      stats_(stats),
      schema_(left_->schema().Concat(right->schema())) {}

void IndexNestedLoopJoin::Open() {
  left_->Open();
  left_valid_ = false;
  bucket_ = nullptr;
  pos_ = 0;
}

bool IndexNestedLoopJoin::Next(Row* out) {
  for (;;) {
    if (!left_valid_) {
      if (!left_->Next(&left_row_)) return false;
      left_valid_ = true;
      Key key;
      key.reserve(left_key_columns_.size());
      for (int c : left_key_columns_) key.push_back(left_row_[c]);
      ++stats_->index_probes;
      bucket_ = &right_index_->Lookup(key);
      pos_ = 0;
    }
    while (pos_ < bucket_->size()) {
      const Row& right_row = right_->row((*bucket_)[pos_++]);
      ++stats_->rows_scanned;
      // Materialize the concatenated row, then test residual predicates —
      // the per-tuple copying an SQL engine pays on every join.
      Row combined = left_row_;
      combined.insert(combined.end(), right_row.begin(), right_row.end());
      stats_->predicate_evals += preds_.size();
      if (!EvalAll(preds_, combined)) continue;
      ++stats_->rows_emitted;
      *out = std::move(combined);
      return true;
    }
    left_valid_ = false;  // Bucket exhausted: advance the outer side.
  }
}

HashJoin::HashJoin(OperatorPtr left, OperatorPtr right,
                   std::vector<int> left_key_columns,
                   std::vector<int> right_key_columns,
                   std::vector<RowPredicate> preds, ExecStats* stats)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_columns_(std::move(left_key_columns)),
      right_key_columns_(std::move(right_key_columns)),
      preds_(std::move(preds)),
      stats_(stats),
      schema_(left_->schema().Concat(right_->schema())) {}

void HashJoin::Open() {
  table_.clear();
  right_->Open();
  Row row;
  while (right_->Next(&row)) {
    Key key;
    key.reserve(right_key_columns_.size());
    for (int c : right_key_columns_) key.push_back(row[c]);
    table_[std::move(key)].push_back(std::move(row));
  }
  left_->Open();
  left_valid_ = false;
  bucket_ = nullptr;
  pos_ = 0;
}

bool HashJoin::Next(Row* out) {
  for (;;) {
    if (!left_valid_) {
      if (!left_->Next(&left_row_)) return false;
      left_valid_ = true;
      Key key;
      key.reserve(left_key_columns_.size());
      for (int c : left_key_columns_) key.push_back(left_row_[c]);
      ++stats_->index_probes;
      auto it = table_.find(key);
      bucket_ = it == table_.end() ? nullptr : &it->second;
      pos_ = 0;
    }
    while (bucket_ != nullptr && pos_ < bucket_->size()) {
      const Row& right_row = (*bucket_)[pos_++];
      ++stats_->rows_scanned;
      Row combined = left_row_;
      combined.insert(combined.end(), right_row.begin(), right_row.end());
      stats_->predicate_evals += preds_.size();
      if (!EvalAll(preds_, combined)) continue;
      ++stats_->rows_emitted;
      *out = std::move(combined);
      return true;
    }
    left_valid_ = false;
  }
}

Filter::Filter(OperatorPtr child, std::vector<RowPredicate> preds,
               ExecStats* stats)
    : child_(std::move(child)), preds_(std::move(preds)), stats_(stats) {}

void Filter::Open() { child_->Open(); }

bool Filter::Next(Row* out) {
  Row row;
  while (child_->Next(&row)) {
    stats_->predicate_evals += preds_.size();
    if (!EvalAll(preds_, row)) continue;
    *out = std::move(row);
    return true;
  }
  return false;
}

Project::Project(OperatorPtr child, std::vector<int> columns)
    : child_(std::move(child)), columns_(std::move(columns)) {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (int c : columns_) names.push_back(child_->schema().columns()[c]);
  schema_ = Schema(std::move(names));
}

void Project::Open() { child_->Open(); }

bool Project::Next(Row* out) {
  Row row;
  if (!child_->Next(&row)) return false;
  Row projected;
  projected.reserve(columns_.size());
  for (int c : columns_) projected.push_back(row[c]);
  *out = std::move(projected);
  return true;
}

std::vector<Row> Execute(Operator* root, size_t limit) {
  std::vector<Row> out;
  root->Open();
  Row row;
  while (out.size() < limit && root->Next(&row)) {
    out.push_back(row);
  }
  return out;
}

}  // namespace graphql::rel
