#ifndef GRAPHQL_REL_INDEX_H_
#define GRAPHQL_REL_INDEX_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "rel/btree.h"
#include "rel/table.h"

namespace graphql::rel {

/// Composite key over one or more columns.
using Key = std::vector<Value>;

struct KeyHash {
  size_t operator()(const Key& k) const {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (const Value& v : k) h = h * 1099511628211ull ^ v.Hash();
    return h;
  }
};

struct KeyEq {
  bool operator()(const Key& a, const Key& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

/// Equality index from a composite column key to row ids; the stand-in for
/// the B-tree indexes the paper builds on every V/E field (only equality
/// probes are needed by the translated graph queries).
class HashIndex {
 public:
  HashIndex() = default;

  /// Builds the index over `table` on `key_columns` (column positions).
  static HashIndex Build(const Table& table, std::vector<int> key_columns);

  /// Row ids with the given key (empty list if none).
  const std::vector<size_t>& Lookup(const Key& key) const;

  const std::vector<int>& key_columns() const { return key_columns_; }
  size_t NumDistinctKeys() const { return buckets_.size(); }

 private:
  std::vector<int> key_columns_;
  std::unordered_map<Key, std::vector<size_t>, KeyHash, KeyEq> buckets_;
  std::vector<size_t> empty_;
};

/// Ordered index supporting range scans, backed by the rel::BPlusTree
/// (the "B-tree index on every field" of the paper's MySQL setup).
/// Single-column.
class OrderedIndex {
 public:
  static OrderedIndex Build(const Table& table, int key_column);

  /// Row ids with key in [lo, hi] inclusive.
  std::vector<size_t> RangeLookup(const Value& lo, const Value& hi) const;
  std::vector<size_t> ExactLookup(const Value& key) const;

  const BPlusTree& tree() const { return tree_; }

 private:
  int key_column_ = -1;
  BPlusTree tree_;
};

}  // namespace graphql::rel

#endif  // GRAPHQL_REL_INDEX_H_
