#include "rel/row_expr.h"

namespace graphql::rel {

namespace {

bool Compare(const Value& a, RowPredicate::Op op, const Value& b) {
  switch (op) {
    case RowPredicate::Op::kEq:
      return a == b;
    case RowPredicate::Op::kNe:
      return a != b;
    case RowPredicate::Op::kLt:
      return a < b;
    case RowPredicate::Op::kLe:
      return a < b || a == b;
    case RowPredicate::Op::kGt:
      return b < a;
    case RowPredicate::Op::kGe:
      return b < a || a == b;
  }
  return false;
}

}  // namespace

bool RowPredicate::Eval(const Row& row) const {
  const Value& lhs = row[lhs_col];
  const Value& rhs = kind == Kind::kColCol ? row[rhs_col] : rhs_const;
  return Compare(lhs, op, rhs);
}

bool EvalAll(const std::vector<RowPredicate>& preds, const Row& row) {
  for (const RowPredicate& p : preds) {
    if (!p.Eval(row)) return false;
  }
  return true;
}

}  // namespace graphql::rel
