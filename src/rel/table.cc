#include "rel/table.h"

namespace graphql::rel {

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<std::string> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) +
        " does not match schema width " + std::to_string(schema_.size()) +
        " of table " + name_);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

}  // namespace graphql::rel
