#ifndef GRAPHQL_REL_OPERATORS_H_
#define GRAPHQL_REL_OPERATORS_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rel/index.h"
#include "rel/row_expr.h"
#include "rel/table.h"

namespace graphql::rel {

/// Execution counters shared by every operator in a plan.
struct ExecStats {
  uint64_t rows_scanned = 0;       ///< Base-table rows touched.
  uint64_t index_probes = 0;       ///< Hash/B-tree lookups.
  uint64_t rows_emitted = 0;       ///< Intermediate + final rows produced.
  uint64_t predicate_evals = 0;
};

/// Volcano-style iterator interface: Open, then Next until it returns
/// false. Operators own their children (left-deep plans form a chain).
class Operator {
 public:
  virtual ~Operator() = default;
  virtual void Open() = 0;
  /// Produces the next row into *out; false at end of stream.
  virtual bool Next(Row* out) = 0;
  virtual const Schema& schema() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Full scan with optional residual predicates.
class SeqScan : public Operator {
 public:
  SeqScan(const Table* table, std::vector<RowPredicate> preds,
          ExecStats* stats);
  void Open() override;
  bool Next(Row* out) override;
  const Schema& schema() const override { return table_->schema(); }

 private:
  const Table* table_;
  std::vector<RowPredicate> preds_;
  ExecStats* stats_;
  size_t pos_ = 0;
};

/// Index equality scan: rows of `table` whose key columns equal `key`.
class IndexEqScan : public Operator {
 public:
  IndexEqScan(const Table* table, const HashIndex* index, Key key,
              std::vector<RowPredicate> preds, ExecStats* stats);
  void Open() override;
  bool Next(Row* out) override;
  const Schema& schema() const override { return table_->schema(); }

 private:
  const Table* table_;
  const HashIndex* index_;
  Key key_;
  std::vector<RowPredicate> preds_;
  ExecStats* stats_;
  const std::vector<size_t>* bucket_ = nullptr;
  size_t pos_ = 0;
};

/// Index nested-loop join: for every left row, probes `right`'s index with
/// a key assembled from left columns, emits left ++ right rows passing the
/// residual predicates (evaluated on the concatenated row). This is the
/// workhorse of the translated SQL plans — one per V_i / E_j of Figure 4.2.
class IndexNestedLoopJoin : public Operator {
 public:
  IndexNestedLoopJoin(OperatorPtr left, const Table* right,
                      const HashIndex* right_index,
                      std::vector<int> left_key_columns,
                      std::vector<RowPredicate> preds, ExecStats* stats);
  void Open() override;
  bool Next(Row* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr left_;
  const Table* right_;
  const HashIndex* right_index_;
  std::vector<int> left_key_columns_;
  std::vector<RowPredicate> preds_;
  ExecStats* stats_;
  Schema schema_;

  Row left_row_;
  bool left_valid_ = false;
  const std::vector<size_t>* bucket_ = nullptr;
  size_t pos_ = 0;
};

/// Hash equi-join: materializes the build (right) input into a hash table
/// keyed on `right_key_columns` during Open(), then streams the probe
/// (left) input. Complements IndexNestedLoopJoin for inputs without a
/// prebuilt index; residual predicates run on the concatenated row.
class HashJoin : public Operator {
 public:
  HashJoin(OperatorPtr left, OperatorPtr right,
           std::vector<int> left_key_columns,
           std::vector<int> right_key_columns,
           std::vector<RowPredicate> preds, ExecStats* stats);
  void Open() override;
  bool Next(Row* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<int> left_key_columns_;
  std::vector<int> right_key_columns_;
  std::vector<RowPredicate> preds_;
  ExecStats* stats_;
  Schema schema_;

  std::unordered_map<Key, std::vector<Row>, KeyHash, KeyEq> table_;
  Row left_row_;
  bool left_valid_ = false;
  const std::vector<Row>* bucket_ = nullptr;
  size_t pos_ = 0;
};

/// Residual filter.
class Filter : public Operator {
 public:
  Filter(OperatorPtr child, std::vector<RowPredicate> preds,
         ExecStats* stats);
  void Open() override;
  bool Next(Row* out) override;
  const Schema& schema() const override { return child_->schema(); }

 private:
  OperatorPtr child_;
  std::vector<RowPredicate> preds_;
  ExecStats* stats_;
};

/// Column projection.
class Project : public Operator {
 public:
  Project(OperatorPtr child, std::vector<int> columns);
  void Open() override;
  bool Next(Row* out) override;
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr child_;
  std::vector<int> columns_;
  Schema schema_;
};

/// Drains a plan into a materialized result, optionally bounded.
std::vector<Row> Execute(Operator* root, size_t limit = SIZE_MAX);

}  // namespace graphql::rel

#endif  // GRAPHQL_REL_OPERATORS_H_
