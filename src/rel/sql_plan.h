#ifndef GRAPHQL_REL_SQL_PLAN_H_
#define GRAPHQL_REL_SQL_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/pattern.h"
#include "common/result.h"
#include "graph/graph.h"
#include "rel/operators.h"

namespace graphql::rel {

/// The SQL-based implementation the paper compares against (Figure 4.2):
/// the data graph stored as two tables V(vid, label) and E(vid1, vid2) with
/// indexes on every field, and a graph pattern evaluated as a multi-way
/// join — one V join per pattern node and one E join per pattern edge, plus
/// pairwise vid inequality predicates for injectivity.
///
/// The engine runs in-process (no client/server or SQL-parsing overhead),
/// so the measured gap against the graph-native access methods reflects
/// the algorithmic difference the paper attributes to losing the global
/// view of the graph structure: no neighborhood/profile pruning, no joint
/// search-space reduction, and join-at-a-time row materialization.
class SqlGraphDatabase {
 public:
  /// Loads the graph into V/E tables and builds all indexes. Undirected
  /// graphs store each edge in both orientations (as the paper's
  /// translation to relations requires).
  static SqlGraphDatabase FromGraph(const Graph& g);

  struct QueryStats {
    ExecStats exec;
    int64_t us_total = 0;
    size_t num_results = 0;
    bool truncated = false;
  };

  /// Evaluates the pattern as the translated join query; returns one
  /// vid-vector per result row (pattern node id -> data node id), at most
  /// `max_results`.
  ///
  /// Restrictions (the translation covers what the paper's SQL does):
  /// pattern nodes may constrain the `label` attribute only, edges must be
  /// constraint-free, the pattern must be connected, and there must be no
  /// residual graph-wide predicate. Anything else is kUnsupported.
  Result<std::vector<std::vector<NodeId>>> MatchPattern(
      const algebra::GraphPattern& pattern, size_t max_results = SIZE_MAX,
      QueryStats* stats = nullptr) const;

  const Table& v_table() const { return v_; }
  const Table& e_table() const { return e_; }

 private:
  /// Builds the left-deep join plan for the pattern; `stats` must outlive
  /// plan execution.
  Result<OperatorPtr> BuildPlan(const algebra::GraphPattern& pattern,
                                ExecStats* stats) const;

  const Graph* graph_ = nullptr;
  Table v_;
  Table e_;
  HashIndex v_by_vid_;
  HashIndex v_by_label_;
  HashIndex e_by_vid1_;
  HashIndex e_by_vid2_;
  HashIndex e_by_both_;
};

}  // namespace graphql::rel

#endif  // GRAPHQL_REL_SQL_PLAN_H_
