#ifndef GRAPHQL_REL_TABLE_H_
#define GRAPHQL_REL_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace graphql::rel {

/// A materialized relational row. The SQL-baseline engine carries rows by
/// value through its operators — the per-tuple copying is part of what the
/// paper's comparison measures.
using Row = std::vector<Value>;

/// Column-name schema with positional lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Position of `name`, or -1 if absent.
  int IndexOf(std::string_view name) const;
  const std::vector<std::string>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }

  /// Schema of a join result: this schema followed by `other`'s columns,
  /// each prefixed to stay unique (e.g. "E1.vid1").
  Schema Concat(const Schema& other) const;

 private:
  std::vector<std::string> columns_;
};

/// A heap table: schema plus row storage. Insertion-ordered, append-only
/// (the engine models the paper's MyISAM setup: bulk-loaded, read-only
/// during querying).
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Appends a row; the row width must match the schema.
  Status Insert(Row row);

  size_t NumRows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace graphql::rel

#endif  // GRAPHQL_REL_TABLE_H_
