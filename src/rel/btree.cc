#include "rel/btree.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <functional>

namespace graphql::rel {

namespace {

bool ValueLess(const Value& a, const Value& b) { return a < b; }

}  // namespace

BPlusTree::BPlusTree(int fanout) : fanout_(fanout < 3 ? 3 : fanout) {
  root_ = std::make_unique<Node>();
}

void BPlusTree::SplitChild(Node* parent, size_t i) {
  Node* child = parent->children[i].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  Value separator;
  if (child->leaf) {
    size_t mid = child->entries.size() / 2;
    separator = child->entries[mid].key;
    right->entries.assign(
        std::make_move_iterator(child->entries.begin() + mid),
        std::make_move_iterator(child->entries.end()));
    child->entries.resize(mid);
    right->next = child->next;
    child->next = right.get();
  } else {
    size_t mid = child->keys.size() / 2;
    separator = child->keys[mid];
    right->keys.assign(std::make_move_iterator(child->keys.begin() + mid + 1),
                       std::make_move_iterator(child->keys.end()));
    right->children.assign(
        std::make_move_iterator(child->children.begin() + mid + 1),
        std::make_move_iterator(child->children.end()));
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }
  parent->keys.insert(parent->keys.begin() + i, std::move(separator));
  parent->children.insert(parent->children.begin() + i + 1, std::move(right));
}

void BPlusTree::InsertNonFull(Node* node, const Value& key,
                              uint64_t payload) {
  while (!node->leaf) {
    // Find the child for `key`: first key greater than `key` bounds it.
    size_t i = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key,
                         ValueLess) -
        node->keys.begin());
    Node* child = node->children[i].get();
    size_t child_size =
        child->leaf ? child->entries.size() : child->keys.size();
    if (child_size >= static_cast<size_t>(fanout_)) {
      SplitChild(node, i);
      // key >= separator: descend into the new right sibling.
      if (!(key < node->keys[i])) ++i;
      child = node->children[i].get();
    }
    node = child;
  }
  auto it = std::lower_bound(
      node->entries.begin(), node->entries.end(), key,
      [](const LeafEntry& e, const Value& k) { return e.key < k; });
  if (it != node->entries.end() && it->key == key) {
    it->payloads.push_back(payload);
  } else {
    LeafEntry entry;
    entry.key = key;
    entry.payloads.push_back(payload);
    node->entries.insert(it, std::move(entry));
    ++num_keys_;
  }
  ++num_payloads_;
}

void BPlusTree::Insert(const Value& key, uint64_t payload) {
  size_t root_size =
      root_->leaf ? root_->entries.size() : root_->keys.size();
  if (root_size >= static_cast<size_t>(fanout_)) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
    ++height_;
  }
  InsertNonFull(root_.get(), key, payload);
}

const BPlusTree::Node* BPlusTree::FindLeaf(const Value& key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t i = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key,
                         ValueLess) -
        node->keys.begin());
    node = node->children[i].get();
  }
  return node;
}

std::vector<uint64_t> BPlusTree::Lookup(const Value& key) const {
  const Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafEntry& e, const Value& k) { return e.key < k; });
  if (it != leaf->entries.end() && it->key == key) return it->payloads;
  return {};
}

std::vector<uint64_t> BPlusTree::Range(const Value* lo, bool lo_inclusive,
                                       const Value* hi,
                                       bool hi_inclusive) const {
  std::vector<uint64_t> out;
  const Node* leaf;
  if (lo != nullptr) {
    leaf = FindLeaf(*lo);
  } else {
    const Node* node = root_.get();
    while (!node->leaf) node = node->children.front().get();
    leaf = node;
  }
  for (; leaf != nullptr; leaf = leaf->next) {
    for (const LeafEntry& e : leaf->entries) {
      if (lo != nullptr) {
        if (e.key < *lo) continue;
        if (!lo_inclusive && e.key == *lo) continue;
      }
      if (hi != nullptr) {
        if (*hi < e.key) return out;
        if (!hi_inclusive && e.key == *hi) return out;
      }
      out.insert(out.end(), e.payloads.begin(), e.payloads.end());
    }
  }
  return out;
}

namespace {

struct ValidateState {
  int leaf_depth = -1;
  size_t keys = 0;
  size_t payloads = 0;
};

}  // namespace

void BPlusTree::Validate() const {
  // Invariant checks abort unconditionally (this is a test hook; NDEBUG
  // must not silence it).
  auto ensure = [](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "BPlusTree invariant violated: %s\n", what);
      std::abort();
    }
  };
  ValidateState state;
  // Recursive lambda over nodes with (depth, lower/upper bound pointers).
  std::function<void(const Node*, int, const Value*, const Value*)> walk =
      [&](const Node* node, int depth, const Value* lo, const Value* hi) {
        if (node->leaf) {
          if (state.leaf_depth == -1) state.leaf_depth = depth;
          ensure(state.leaf_depth == depth, "non-uniform leaf depth");
          for (size_t i = 0; i < node->entries.size(); ++i) {
            const Value& k = node->entries[i].key;
            if (i > 0) {
              ensure(node->entries[i - 1].key < k, "unsorted leaf keys");
            }
            if (lo != nullptr) ensure(!(k < *lo), "key below lower bound");
            if (hi != nullptr) ensure(k < *hi, "key above upper bound");
            ensure(!node->entries[i].payloads.empty(), "empty payload list");
            ++state.keys;
            state.payloads += node->entries[i].payloads.size();
          }
          return;
        }
        ensure(node->children.size() == node->keys.size() + 1,
               "child/key count mismatch");
        for (size_t i = 1; i < node->keys.size(); ++i) {
          ensure(node->keys[i - 1] < node->keys[i], "unsorted internal keys");
        }
        for (size_t i = 0; i < node->children.size(); ++i) {
          const Value* clo = i == 0 ? lo : &node->keys[i - 1];
          const Value* chi = i == node->keys.size() ? hi : &node->keys[i];
          walk(node->children[i].get(), depth + 1, clo, chi);
        }
      };
  walk(root_.get(), 0, nullptr, nullptr);
  ensure(state.keys == num_keys_, "key count mismatch");
  ensure(state.payloads == num_payloads_, "payload count mismatch");
}

}  // namespace graphql::rel
