#include "rel/sql_plan.h"

#include <chrono>
#include <memory>

namespace graphql::rel {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Pattern-node label constraint, or empty when the node is a wildcard.
/// Returns Unsupported if the node carries anything beyond a label.
Result<std::string> NodeLabelConstraint(const algebra::GraphPattern& pattern,
                                        NodeId u) {
  const AttrTuple& attrs = pattern.graph().node(u).attrs;
  if (attrs.has_tag() || pattern.NodePredCount(u) > 0) {
    return Status::Unsupported(
        "SQL baseline supports label-only node constraints");
  }
  std::string label;
  for (const auto& [k, v] : attrs.attrs()) {
    if (k != "label" || !v.is_string()) {
      return Status::Unsupported(
          "SQL baseline supports label-only node constraints");
    }
    label = v.AsString();
  }
  return label;
}

}  // namespace

SqlGraphDatabase SqlGraphDatabase::FromGraph(const Graph& g) {
  SqlGraphDatabase db;
  db.graph_ = &g;
  db.v_ = Table("V", Schema({"vid", "label"}));
  db.e_ = Table("E", Schema({"vid1", "vid2"}));
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    std::string_view label = g.Label(static_cast<NodeId>(v));
    Row row = {Value(static_cast<int64_t>(v)), Value(std::string(label))};
    (void)db.v_.Insert(std::move(row));
  }
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    const Graph::Edge& ed = g.edge(static_cast<EdgeId>(e));
    (void)db.e_.Insert({Value(static_cast<int64_t>(ed.src)),
                        Value(static_cast<int64_t>(ed.dst))});
    if (!g.directed() && ed.src != ed.dst) {
      (void)db.e_.Insert({Value(static_cast<int64_t>(ed.dst)),
                          Value(static_cast<int64_t>(ed.src))});
    }
  }
  db.v_by_vid_ = HashIndex::Build(db.v_, {0});
  db.v_by_label_ = HashIndex::Build(db.v_, {1});
  db.e_by_vid1_ = HashIndex::Build(db.e_, {0});
  db.e_by_vid2_ = HashIndex::Build(db.e_, {1});
  db.e_by_both_ = HashIndex::Build(db.e_, {0, 1});
  return db;
}

Result<OperatorPtr> SqlGraphDatabase::BuildPlan(
    const algebra::GraphPattern& pattern, ExecStats* stats) const {
  const Graph& p = pattern.graph();
  size_t k = p.NumNodes();
  if (k == 0) {
    return Status::Unsupported("SQL baseline needs a non-empty pattern");
  }
  if (pattern.has_global_pred()) {
    return Status::Unsupported(
        "SQL baseline supports label-only constraints (no residual "
        "graph-wide predicate)");
  }
  for (size_t e = 0; e < p.NumEdges(); ++e) {
    const AttrTuple& attrs = p.edge(static_cast<EdgeId>(e)).attrs;
    if (!attrs.empty() || pattern.EdgeHasPredicates(static_cast<EdgeId>(e))) {
      return Status::Unsupported(
          "SQL baseline supports constraint-free edges");
    }
  }

  // Column position of each already-joined pattern node's vid.
  std::vector<int> node_col(k, -1);

  GQL_ASSIGN_OR_RETURN(std::string label0, NodeLabelConstraint(pattern, 0));
  OperatorPtr plan;
  if (!label0.empty()) {
    plan = std::make_unique<IndexEqScan>(&v_, &v_by_label_,
                                         Key{Value(label0)},
                                         std::vector<RowPredicate>{}, stats);
  } else {
    plan = std::make_unique<SeqScan>(&v_, std::vector<RowPredicate>{}, stats);
  }
  node_col[0] = 0;  // (vid, label)
  int width = 2;

  // Self-loops at node 0.
  for (size_t e = 0; e < p.NumEdges(); ++e) {
    const Graph::Edge& pe = p.edge(static_cast<EdgeId>(e));
    if (pe.src == 0 && pe.dst == 0) {
      plan = std::make_unique<IndexNestedLoopJoin>(
          std::move(plan), &e_, &e_by_both_,
          std::vector<int>{node_col[0], node_col[0]},
          std::vector<RowPredicate>{}, stats);
      width += 2;
    }
  }

  for (size_t u = 1; u < k; ++u) {
    NodeId pu = static_cast<NodeId>(u);
    // Pattern edges from u to already-joined nodes, in edge order;
    // self-loops at u are enforced after u's vid is bound.
    std::vector<EdgeId> back;
    std::vector<EdgeId> self_loops;
    for (size_t e = 0; e < p.NumEdges(); ++e) {
      const Graph::Edge& pe = p.edge(static_cast<EdgeId>(e));
      NodeId a = pe.src;
      NodeId b = pe.dst;
      if (a == pu && b == pu) {
        self_loops.push_back(static_cast<EdgeId>(e));
      } else if (a == pu && node_col[b] >= 0) {
        back.push_back(static_cast<EdgeId>(e));
      } else if (b == pu && node_col[a] >= 0) {
        back.push_back(static_cast<EdgeId>(e));
      }
    }
    if (back.empty()) {
      return Status::Unsupported(
          "SQL baseline supports connected patterns joined in declaration "
          "order (node " +
          std::to_string(u) + " has no edge to earlier nodes)");
    }

    // First back edge: join E, then join V to bind node u.
    {
      const Graph::Edge& pe = p.edge(back[0]);
      bool u_is_dst = pe.dst == pu;
      NodeId w = u_is_dst ? pe.src : pe.dst;
      // For directed graphs the probe must respect edge direction; for
      // undirected graphs E holds both orientations so vid1 probing works.
      const HashIndex* eidx = u_is_dst ? &e_by_vid1_ : &e_by_vid2_;
      int probe_col = node_col[w];
      plan = std::make_unique<IndexNestedLoopJoin>(
          std::move(plan), &e_, eidx, std::vector<int>{probe_col},
          std::vector<RowPredicate>{}, stats);
      int e_vid1 = width;
      int e_vid2 = width + 1;
      width += 2;
      int u_vid_from_e = u_is_dst ? e_vid2 : e_vid1;

      GQL_ASSIGN_OR_RETURN(std::string label, NodeLabelConstraint(pattern, pu));
      std::vector<RowPredicate> vpreds;
      if (!label.empty()) {
        vpreds.push_back(
            RowPredicate::ColConst(width + 1, RowPredicate::Op::kEq,
                                   Value(label)));
      }
      // Injectivity: u's vid differs from every earlier node's vid.
      for (size_t w2 = 0; w2 < k; ++w2) {
        if (node_col[w2] >= 0) {
          vpreds.push_back(RowPredicate::ColCol(
              width, RowPredicate::Op::kNe, node_col[w2]));
        }
      }
      plan = std::make_unique<IndexNestedLoopJoin>(
          std::move(plan), &v_, &v_by_vid_, std::vector<int>{u_vid_from_e},
          std::move(vpreds), stats);
      node_col[u] = width;  // V row starts here: (vid, label)
      width += 2;
    }

    // Remaining back edges: one E join each (composite-key probe).
    for (size_t i = 1; i < back.size(); ++i) {
      const Graph::Edge& pe = p.edge(back[i]);
      bool u_is_src = pe.src == pu;
      NodeId w = u_is_src ? pe.dst : pe.src;
      std::vector<int> key_cols;
      if (u_is_src) {
        key_cols = {node_col[u], node_col[w]};  // (vid1, vid2)
      } else {
        key_cols = {node_col[w], node_col[u]};
      }
      plan = std::make_unique<IndexNestedLoopJoin>(
          std::move(plan), &e_, &e_by_both_, key_cols,
          std::vector<RowPredicate>{}, stats);
      width += 2;
    }

    // Self-loops at u.
    for (size_t i = 0; i < self_loops.size(); ++i) {
      plan = std::make_unique<IndexNestedLoopJoin>(
          std::move(plan), &e_, &e_by_both_,
          std::vector<int>{node_col[u], node_col[u]},
          std::vector<RowPredicate>{}, stats);
      width += 2;
    }
  }

  std::vector<int> out_cols;
  out_cols.reserve(k);
  for (size_t u = 0; u < k; ++u) out_cols.push_back(node_col[u]);
  plan = std::make_unique<Project>(std::move(plan), std::move(out_cols));
  return plan;
}

Result<std::vector<std::vector<NodeId>>> SqlGraphDatabase::MatchPattern(
    const algebra::GraphPattern& pattern, size_t max_results,
    QueryStats* stats) const {
  ExecStats local_stats;
  ExecStats* exec = stats != nullptr ? &stats->exec : &local_stats;
  int64_t t0 = NowMicros();
  GQL_ASSIGN_OR_RETURN(OperatorPtr plan, BuildPlan(pattern, exec));
  std::vector<Row> rows = Execute(plan.get(), max_results);
  int64_t t1 = NowMicros();

  std::vector<std::vector<NodeId>> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<NodeId> mapping;
    mapping.reserve(row.size());
    for (const Value& v : row) {
      mapping.push_back(static_cast<NodeId>(v.AsInt()));
    }
    out.push_back(std::move(mapping));
  }
  if (stats != nullptr) {
    stats->us_total = t1 - t0;
    stats->num_results = out.size();
    stats->truncated = out.size() >= max_results && max_results != SIZE_MAX;
  }
  return out;
}

}  // namespace graphql::rel
