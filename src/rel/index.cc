#include "rel/index.h"

namespace graphql::rel {

HashIndex HashIndex::Build(const Table& table, std::vector<int> key_columns) {
  HashIndex index;
  index.key_columns_ = std::move(key_columns);
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const Row& row = table.row(r);
    Key key;
    key.reserve(index.key_columns_.size());
    for (int c : index.key_columns_) key.push_back(row[c]);
    index.buckets_[std::move(key)].push_back(r);
  }
  return index;
}

const std::vector<size_t>& HashIndex::Lookup(const Key& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? empty_ : it->second;
}

OrderedIndex OrderedIndex::Build(const Table& table, int key_column) {
  OrderedIndex index;
  index.key_column_ = key_column;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    index.tree_.Insert(table.row(r)[key_column], r);
  }
  return index;
}

std::vector<size_t> OrderedIndex::RangeLookup(const Value& lo,
                                              const Value& hi) const {
  std::vector<uint64_t> rows =
      tree_.Range(&lo, /*lo_inclusive=*/true, &hi, /*hi_inclusive=*/true);
  return std::vector<size_t>(rows.begin(), rows.end());
}

std::vector<size_t> OrderedIndex::ExactLookup(const Value& key) const {
  std::vector<uint64_t> rows = tree_.Lookup(key);
  return std::vector<size_t>(rows.begin(), rows.end());
}

}  // namespace graphql::rel
