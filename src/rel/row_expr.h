#ifndef GRAPHQL_REL_ROW_EXPR_H_
#define GRAPHQL_REL_ROW_EXPR_H_

#include <memory>
#include <vector>

#include "rel/table.h"

namespace graphql::rel {

/// Row-level predicates of the SQL baseline's WHERE clause. Only the forms
/// that the graph-query translation emits are modeled: column-vs-constant
/// and column-vs-column comparisons, conjoined.
struct RowPredicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

  enum class Kind { kColConst, kColCol };
  Kind kind = Kind::kColConst;
  Op op = Op::kEq;
  int lhs_col = -1;
  int rhs_col = -1;  // kColCol
  Value rhs_const;   // kColConst

  static RowPredicate ColConst(int col, Op op, Value v) {
    RowPredicate p;
    p.kind = Kind::kColConst;
    p.lhs_col = col;
    p.op = op;
    p.rhs_const = std::move(v);
    return p;
  }
  static RowPredicate ColCol(int a, Op op, int b) {
    RowPredicate p;
    p.kind = Kind::kColCol;
    p.lhs_col = a;
    p.op = op;
    p.rhs_col = b;
    return p;
  }

  bool Eval(const Row& row) const;
};

/// Evaluates a conjunction of predicates.
bool EvalAll(const std::vector<RowPredicate>& preds, const Row& row);

}  // namespace graphql::rel

#endif  // GRAPHQL_REL_ROW_EXPR_H_
