#ifndef GRAPHQL_REL_BTREE_H_
#define GRAPHQL_REL_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/value.h"

namespace graphql::rel {

/// In-memory B+-tree from Value keys to uint64 payloads (row ids, node
/// ids). This is the "traditional index structure such as B-trees" the
/// paper assumes for attribute retrieval (Section 4.2) — here with real
/// node splits and leaf chaining, so range scans cost O(log n + answer).
///
/// Characteristics:
///  - duplicate keys allowed: payloads accumulate per key entry;
///  - insert-only (the data model is bulk-loaded, as in the paper's
///    experiments; deletion would belong to an update story);
///  - keys are ordered by Value's total order (null < bool < numeric <
///    string; numerics compare numerically across int/double).
class BPlusTree {
 public:
  /// `fanout` = maximum keys per node (>= 3).
  explicit BPlusTree(int fanout = 64);

  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  void Insert(const Value& key, uint64_t payload);

  /// Payloads stored under exactly `key`.
  std::vector<uint64_t> Lookup(const Value& key) const;

  /// Payloads with key in the given interval; null bounds are unbounded.
  /// Results follow key order (payload insertion order within a key).
  std::vector<uint64_t> Range(const Value* lo, bool lo_inclusive,
                              const Value* hi, bool hi_inclusive) const;

  size_t num_keys() const { return num_keys_; }
  size_t num_payloads() const { return num_payloads_; }
  int height() const { return height_; }

  /// Checks the B+-tree invariants (key ordering, node occupancy, uniform
  /// leaf depth, leaf-chain consistency); aborts via assert on violation.
  /// Test hook.
  void Validate() const;

 private:
  struct Node;
  struct LeafEntry {
    Value key;
    std::vector<uint64_t> payloads;
  };
  struct Node {
    bool leaf = true;
    // Leaf payload.
    std::vector<LeafEntry> entries;
    Node* next = nullptr;  // Leaf chain.
    // Internal payload: keys[i] is the smallest key in children[i+1].
    std::vector<Value> keys;
    std::vector<std::unique_ptr<Node>> children;
  };

  /// Splits `child` (the i-th child of `parent`); parent must have room.
  void SplitChild(Node* parent, size_t i);
  void InsertNonFull(Node* node, const Value& key, uint64_t payload);
  const Node* FindLeaf(const Value& key) const;

  int fanout_;
  int height_ = 1;
  size_t num_keys_ = 0;
  size_t num_payloads_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace graphql::rel

#endif  // GRAPHQL_REL_BTREE_H_
