#include "storage/checksum.h"

#include <array>

namespace graphql::storage {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // CRC-32C, reflected.

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (uint8_t b : data) {
    crc = kTable[(crc ^ b) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace graphql::storage
