#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "storage/checksum.h"

namespace graphql::storage {

namespace {

constexpr size_t kHeaderBytes = 8;             // u32 length + u32 crc.
constexpr size_t kPayloadMinBytes = 9;         // u64 lsn + u8 kind.
constexpr uint32_t kMaxRecordBytes = 1u << 30; // Hostile-length cap.

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::write(fd, data + written, len - written);
    if (n <= 0) return Status::Internal("wal write failed");
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<WalReplayStats> ReplayWalBuffer(
    std::span<const uint8_t> bytes,
    const std::function<Status(const WalRecord&)>& apply) {
  WalReplayStats stats;
  size_t pos = 0;
  uint64_t prev_lsn = 0;
  while (bytes.size() - pos >= kHeaderBytes) {
    const uint8_t* header = bytes.data() + pos;
    const uint32_t length = GetU32(header);
    // Length validation before anything else: a record may not promise
    // more bytes than remain (torn tail) or an absurd size (bit flip in
    // the length word must not drive a huge read).
    if (length < kPayloadMinBytes || length > kMaxRecordBytes ||
        length > bytes.size() - pos - kHeaderBytes) {
      break;
    }
    const uint32_t stored_crc = GetU32(header + 4);
    std::span<const uint8_t> payload = bytes.subspan(pos + kHeaderBytes,
                                                     length);
    // checksum-before-trust: the payload is only decoded after its CRC
    // verifies; a mismatch means a torn or flipped record — end of the
    // committed history.
    if (Crc32c(payload) != stored_crc) break;
    WalRecord record;
    record.lsn = GetU64(payload.data());
    record.kind = payload[8];
    record.body = payload.subspan(kPayloadMinBytes);
    // LSNs are strictly increasing in a well-formed log; a repeat or jump
    // backwards means stale bytes (e.g. a recycled file), not history.
    if (record.lsn <= prev_lsn) break;
    GQL_RETURN_IF_ERROR(apply(record));
    prev_lsn = record.lsn;
    ++stats.records;
    pos += kHeaderBytes + length;
  }
  stats.valid_bytes = pos;
  stats.torn_bytes = bytes.size() - pos;
  stats.last_lsn = prev_lsn;
  return stats;
}

Result<WalReplayStats> ReplayWalFile(
    const std::string& path,
    const std::function<Status(const WalRecord&)>& apply) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return WalReplayStats{};  // No log yet: empty.
    return Status::Internal("cannot open wal '" + path + "': " +
                            std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat wal '" + path + "' failed");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < bytes.size()) {
    ssize_t n = ::pread(fd, bytes.data() + got, bytes.size() - got,
                        static_cast<off_t>(got));
    if (n <= 0) {
      ::close(fd);
      return Status::Internal("read wal '" + path + "' failed");
    }
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  return ReplayWalBuffer(bytes, apply);
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

Result<WalWriter> WalWriter::Open(const std::string& path, uint64_t next_lsn,
                                  uint64_t valid_bytes) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open wal '" + path + "': " +
                            std::strerror(errno));
  }
  // Drop any torn tail so the next append starts at a record boundary.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    ::close(fd);
    return Status::Internal("truncate wal '" + path + "' failed");
  }
  if (::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    ::close(fd);
    return Status::Internal("seek wal '" + path + "' failed");
  }
  WalWriter w;
  w.fd_ = fd;
  w.path_ = path;
  w.next_lsn_ = next_lsn;
  w.bytes_ = valid_bytes;
  return w;
}

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    next_lsn_ = other.next_lsn_;
    bytes_ = other.bytes_;
    records_appended_ = other.records_appended_;
    sync_every_ = other.sync_every_;
    unsynced_ = other.unsynced_;
    injector_ = other.injector_;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(uint8_t kind, std::span<const uint8_t> body) {
  if (fd_ < 0) return Status::Internal("wal writer is closed");
  if (body.size() > kMaxRecordBytes - kPayloadMinBytes) {
    return Status::InvalidArgument("wal record body too large");
  }
  const uint32_t length = static_cast<uint32_t>(kPayloadMinBytes +
                                                body.size());
  std::vector<uint8_t> record(kHeaderBytes + length);
  PutU64(record.data() + kHeaderBytes, next_lsn_);
  record[kHeaderBytes + 8] = kind;
  std::memcpy(record.data() + kHeaderBytes + kPayloadMinBytes, body.data(),
              body.size());
  PutU32(record.data(), length);
  PutU32(record.data() + 4,
         Crc32c(record.data() + kHeaderBytes, length));

  if (injector_ != nullptr) {
    TripKind injected = injector_->OnCharge(GovernPoint::kWalAppend);
    if (injected != TripKind::kNone) {
      // Simulate the crash shape: a torn half-record reaches the disk and
      // the process "dies" — the append fails, nothing is considered
      // committed, and recovery must truncate this tail.
      size_t torn = record.size() / 2;
      (void)WriteAll(fd_, record.data(), torn);
      ::fsync(fd_);
      bytes_ += torn;
      return Status::DataLoss("wal append aborted (injected " +
                              std::string(TripKindName(injected)) +
                              " fault); torn record on disk");
    }
  }

  GQL_RETURN_IF_ERROR(WriteAll(fd_, record.data(), record.size()));
  bytes_ += record.size();
  ++next_lsn_;
  ++records_appended_;
  if (++unsynced_ >= sync_every_) {
    GQL_RETURN_IF_ERROR(Sync());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::Internal("wal writer is closed");
  if (unsynced_ == 0) return Status::OK();
  if (::fsync(fd_) != 0) {
    return Status::Internal("fsync wal '" + path_ + "' failed");
  }
  unsynced_ = 0;
  return Status::OK();
}

}  // namespace graphql::storage
