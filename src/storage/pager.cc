#include "storage/pager.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <utility>

#include "storage/checksum.h"

namespace graphql::storage {

namespace {

constexpr char kMagic[4] = {'G', 'Q', 'P', '3'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kDirEntryBytes = 24;

// Header field offsets within page 0.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffPageSize = 8;
constexpr size_t kOffSectionCount = 12;
constexpr size_t kOffTotalPages = 16;
constexpr size_t kOffDirOffset = 24;
constexpr size_t kOffDirLength = 32;
constexpr size_t kOffCrcTableOffset = 40;
constexpr size_t kOffCrcTableLength = 48;
constexpr size_t kOffDataStartPage = 56;
constexpr size_t kOffDirCrc = 64;
constexpr size_t kOffCrcTableCrc = 68;
constexpr size_t kOffHeaderCrc = 72;

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

uint64_t PagesFor(uint64_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

}  // namespace

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

PageFile::~PageFile() {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
  }
}

Result<std::shared_ptr<PageFile>> PageFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path + "': " +
                            std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat '" + path + "' failed");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  auto file = std::shared_ptr<PageFile>(new PageFile());
  const char* no_mmap = std::getenv("GQL_NO_MMAP");
  if (size > 0 && (no_mmap == nullptr || no_mmap[0] == '\0' ||
                   std::strcmp(no_mmap, "0") == 0)) {
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      file->map_base_ = base;
      file->map_len_ = size;
      file->mapped_ = true;
      file->bytes_ = {static_cast<const uint8_t*>(base), size};
    }
  }
  if (!file->mapped_) {
    // Portable fallback: read the whole image. Same bytes, same
    // validation; only the paging economics differ.
    // invariant-lint: allow(length-validated-alloc) size is fstat() of the
    // real file, not a decoded length; Validate() then rejects anything
    // that is not a page multiple with a checksummed header.
    file->owned_.resize(size);
    size_t got = 0;
    while (got < size) {
      ssize_t n = ::pread(fd, file->owned_.data() + got, size - got,
                          static_cast<off_t>(got));
      if (n <= 0) {
        ::close(fd);
        return Status::Internal("read '" + path + "' failed");
      }
      got += static_cast<size_t>(n);
    }
    file->bytes_ = {file->owned_.data(), file->owned_.size()};
  }
  ::close(fd);
  return Validate(std::move(file));
}

Result<std::shared_ptr<PageFile>> PageFile::FromBuffer(
    std::vector<uint8_t> bytes) {
  auto file = std::shared_ptr<PageFile>(new PageFile());
  file->owned_ = std::move(bytes);
  file->bytes_ = {file->owned_.data(), file->owned_.size()};
  return Validate(std::move(file));
}

Result<std::shared_ptr<PageFile>> PageFile::Validate(
    std::shared_ptr<PageFile> file) {
  std::span<const uint8_t> b = file->bytes_;
  if (b.size() < kPageSize || b.size() % kPageSize != 0) {
    return Status::ParseError("paged file: size is not a page multiple");
  }
  if (std::memcmp(b.data(), kMagic, 4) != 0) {
    return Status::ParseError("paged file: bad magic");
  }
  // Verify the header page before trusting any field in it: CRC over the
  // page with the stored CRC zeroed.
  uint8_t header[kPageSize];
  std::memcpy(header, b.data(), kPageSize);
  const uint32_t stored_header_crc = GetU32(header + kOffHeaderCrc);
  PutU32(header + kOffHeaderCrc, 0);
  if (Crc32c(header, kPageSize) != stored_header_crc) {
    return Status::DataLoss("paged file: header checksum mismatch");
  }
  if (GetU32(header + kOffVersion) != kFormatVersion) {
    return Status::ParseError("paged file: unsupported format version " +
                              std::to_string(GetU32(header + kOffVersion)));
  }
  if (GetU32(header + kOffPageSize) != kPageSize) {
    return Status::ParseError("paged file: unexpected page size");
  }
  const uint32_t section_count = GetU32(header + kOffSectionCount);
  const uint64_t total_pages = GetU64(header + kOffTotalPages);
  const uint64_t dir_offset = GetU64(header + kOffDirOffset);
  const uint64_t dir_length = GetU64(header + kOffDirLength);
  const uint64_t crc_offset = GetU64(header + kOffCrcTableOffset);
  const uint64_t crc_length = GetU64(header + kOffCrcTableLength);
  const uint64_t data_start_page = GetU64(header + kOffDataStartPage);
  const uint64_t size = b.size();
  if (total_pages * kPageSize != size) {
    return Status::ParseError("paged file: page count disagrees with size");
  }
  auto region_ok = [size](uint64_t off, uint64_t len) {
    return off <= size && len <= size - off;
  };
  if (!region_ok(dir_offset, dir_length) ||
      dir_length != uint64_t{section_count} * kDirEntryBytes) {
    return Status::ParseError("paged file: directory out of bounds");
  }
  if (!region_ok(crc_offset, crc_length)) {
    return Status::ParseError("paged file: checksum table out of bounds");
  }
  if (data_start_page > total_pages) {
    return Status::ParseError("paged file: data start out of bounds");
  }
  const uint64_t data_pages = total_pages - data_start_page;
  if (crc_length != data_pages * 4) {
    return Status::ParseError("paged file: checksum table size mismatch");
  }
  // Metadata regions are verified eagerly — they are the trust root for
  // the lazily verified data pages.
  std::span<const uint8_t> dir = b.subspan(dir_offset, dir_length);
  if (Crc32c(dir) != GetU32(header + kOffDirCrc)) {
    return Status::DataLoss("paged file: directory checksum mismatch");
  }
  std::span<const uint8_t> crc_table = b.subspan(crc_offset, crc_length);
  if (Crc32c(crc_table) != GetU32(header + kOffCrcTableCrc)) {
    return Status::DataLoss("paged file: checksum-table checksum mismatch");
  }
  file->crc_table_ = crc_table;
  file->data_start_page_ = data_start_page;
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint8_t* e = dir.data() + size_t{i} * kDirEntryBytes;
    SectionEntry entry;
    const uint32_t id = GetU32(e);
    entry.offset = GetU64(e + 8);
    entry.length = GetU64(e + 16);
    entry.index = i;
    if (entry.offset % kPageSize != 0 ||
        entry.offset < data_start_page * kPageSize ||
        !region_ok(entry.offset, entry.length)) {
      return Status::ParseError("paged file: section " + std::to_string(id) +
                                " out of bounds");
    }
    if (!file->sections_.emplace(id, entry).second) {
      return Status::ParseError("paged file: duplicate section id " +
                                std::to_string(id));
    }
  }
  {
    MutexLock lock(&file->verify_mu_);
    file->section_verified_.assign(section_count, 0);
  }
  return file;
}

Status PageFile::VerifyPages(uint64_t first_page, uint64_t page_count) const {
  for (uint64_t p = first_page; p < first_page + page_count; ++p) {
    const uint64_t slot = p - data_start_page_;
    const uint32_t want = GetU32(crc_table_.data() + slot * 4);
    const uint32_t got = Crc32c(bytes_.subspan(p * kPageSize, kPageSize));
    if (want != got) {
      return Status::DataLoss("paged file: page " + std::to_string(p) +
                              " checksum mismatch");
    }
  }
  return Status::OK();
}

Result<std::span<const uint8_t>> PageFile::Section(uint32_t id) const {
  auto it = sections_.find(id);
  if (it == sections_.end()) {
    return Status::NotFound("paged file: no section " + std::to_string(id));
  }
  const SectionEntry& e = it->second;
  {
    MutexLock lock(&verify_mu_);
    if (!section_verified_[e.index]) {
      // checksum-before-trust: the span is only released after every page
      // the section spans verifies.
      GQL_RETURN_IF_ERROR(
          VerifyPages(e.offset / kPageSize, PagesFor(e.length)));
      section_verified_[e.index] = 1;
    }
  }
  return bytes_.subspan(e.offset, e.length);
}

bool PageFile::HasSection(uint32_t id) const {
  return sections_.find(id) != sections_.end();
}

std::vector<uint32_t> PageFile::SectionIds() const {
  std::vector<uint32_t> ids;
  // invariant-lint: allow(length-validated-alloc) sections_ was built by
  // Validate() from a directory whose entry count was bounds-checked
  // against the checksummed header.
  ids.reserve(sections_.size());
  for (const auto& [id, entry] : sections_) ids.push_back(id);
  return ids;
}

Status PageFile::VerifyAllPages() const {
  const uint64_t total_pages = bytes_.size() / kPageSize;
  return VerifyPages(data_start_page_, total_pages - data_start_page_);
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

void PageFileWriter::AddSection(uint32_t id, std::vector<uint8_t> bytes) {
  sections_.emplace_back(id, std::move(bytes));
}

std::vector<uint8_t> PageFileWriter::Build() const {
  const uint64_t section_count = sections_.size();
  const uint64_t dir_length = section_count * kDirEntryBytes;
  const uint64_t dir_pages = PagesFor(dir_length);
  uint64_t data_pages = 0;
  for (const auto& [id, bytes] : sections_) {
    data_pages += PagesFor(bytes.size());
  }
  const uint64_t crc_length = data_pages * 4;
  const uint64_t crc_pages = PagesFor(crc_length);
  const uint64_t data_start_page = 1 + dir_pages + crc_pages;
  const uint64_t total_pages = data_start_page + data_pages;

  std::vector<uint8_t> out(total_pages * kPageSize, 0);
  uint8_t* header = out.data();
  std::memcpy(header + kOffMagic, kMagic, 4);
  PutU32(header + kOffVersion, kFormatVersion);
  PutU32(header + kOffPageSize, kPageSize);
  PutU32(header + kOffSectionCount, static_cast<uint32_t>(section_count));
  PutU64(header + kOffTotalPages, total_pages);
  PutU64(header + kOffDirOffset, kPageSize);
  PutU64(header + kOffDirLength, dir_length);
  PutU64(header + kOffCrcTableOffset, (1 + dir_pages) * kPageSize);
  PutU64(header + kOffCrcTableLength, crc_length);
  PutU64(header + kOffDataStartPage, data_start_page);

  uint8_t* dir = out.data() + kPageSize;
  uint8_t* crc_table = out.data() + (1 + dir_pages) * kPageSize;
  uint64_t cursor = data_start_page * kPageSize;
  uint64_t page_slot = 0;
  for (size_t i = 0; i < sections_.size(); ++i) {
    const auto& [id, bytes] = sections_[i];
    uint8_t* e = dir + i * kDirEntryBytes;
    PutU32(e, id);
    PutU32(e + 4, 0);
    PutU64(e + 8, cursor);
    PutU64(e + 16, bytes.size());
    std::memcpy(out.data() + cursor, bytes.data(), bytes.size());
    const uint64_t pages = PagesFor(bytes.size());
    for (uint64_t p = 0; p < pages; ++p) {
      PutU32(crc_table + (page_slot + p) * 4,
             Crc32c(out.data() + cursor + p * kPageSize, kPageSize));
    }
    cursor += pages * kPageSize;
    page_slot += pages;
  }
  PutU32(header + kOffDirCrc, Crc32c(dir, dir_length));
  PutU32(header + kOffCrcTableCrc, Crc32c(crc_table, crc_length));
  PutU32(header + kOffHeaderCrc, 0);
  PutU32(header + kOffHeaderCrc, Crc32c(header, kPageSize));
  return out;
}

Status PageFileWriter::WriteTo(const std::string& path) const {
  std::vector<uint8_t> image = Build();
  return AtomicWriteFile(path, image);
}

Status AtomicWriteFile(const std::string& path,
                       std::span<const uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("cannot create '" + tmp + "': " +
                            std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("write '" + tmp + "' failed");
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("fsync '" + tmp + "' failed");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("rename '" + tmp + "' -> '" + path + "' failed");
  }
  // fsync the directory so the rename itself is durable.
  std::string dir = ".";
  if (size_t slash = path.find_last_of('/'); slash != std::string::npos) {
    dir = slash == 0 ? "/" : path.substr(0, slash);
  }
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace graphql::storage
