#ifndef GRAPHQL_STORAGE_CHECKSUM_H_
#define GRAPHQL_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace graphql::storage {

/// CRC-32C (Castagnoli polynomial, reflected). Every page and WAL record
/// the storage layer writes carries one of these; readers verify it before
/// trusting a single byte of the payload (the `checksum-before-trust`
/// invariant, linted by tools/invariant_lint.py).
///
/// Software slicing-by-one implementation: the storage layer checksums at
/// file-open and commit frequency, not per-query, so portability beats the
/// last factor of throughput here.
uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed = 0);

inline uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0) {
  return Crc32c(
      std::span<const uint8_t>(static_cast<const uint8_t*>(data), len), seed);
}

}  // namespace graphql::storage

#endif  // GRAPHQL_STORAGE_CHECKSUM_H_
