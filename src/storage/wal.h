#ifndef GRAPHQL_STORAGE_WAL_H_
#define GRAPHQL_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/result.h"

namespace graphql::storage {

/// Append-only write-ahead log.
///
/// Record framing (little-endian):
///   u32 length     payload bytes that follow the two header words
///   u32 crc        CRC-32C over the payload
///   payload:       u64 lsn, u8 kind, body...
///
/// The reader walks records until the file ends or a record fails
/// validation — short header, length past EOF, checksum mismatch, or a
/// non-increasing LSN. Everything from the first invalid record on is
/// treated as a torn tail (the canonical crash shape: a record that made
/// it partially to disk) and ignored; the writer truncates it away when it
/// reopens the log. A crc-valid prefix is exactly the committed history.
///
/// Record kinds are opaque bytes at this layer; storage::DurableStore
/// defines the vocabulary (publish / drop / checkpoint marks).

struct WalRecord {
  uint64_t lsn = 0;
  uint8_t kind = 0;
  std::span<const uint8_t> body;  ///< Views the replay buffer.
};

struct WalReplayStats {
  uint64_t records = 0;      ///< Valid records delivered.
  uint64_t valid_bytes = 0;  ///< Bytes of the valid prefix.
  uint64_t torn_bytes = 0;   ///< Bytes discarded after the valid prefix.
  uint64_t last_lsn = 0;     ///< LSN of the last valid record (0 if none).
};

/// Replays an in-memory WAL image. Every record's length is validated
/// against the remaining buffer and its checksum verified before `apply`
/// sees one byte of it. `apply` errors abort the replay (they indicate a
/// bad state transition, not bad bytes — distinct from a torn tail, which
/// ends the replay successfully).
Result<WalReplayStats> ReplayWalBuffer(
    std::span<const uint8_t> bytes,
    const std::function<Status(const WalRecord&)>& apply);

/// Reads `path` (missing file = empty log) and replays it.
Result<WalReplayStats> ReplayWalFile(
    const std::string& path,
    const std::function<Status(const WalRecord&)>& apply);

/// The appending half. Not thread-safe: the engine serializes appends
/// under the store's commit lock, which is the WAL's ordering guarantee
/// (one record per commit, in commit order).
class WalWriter {
 public:
  /// Opens (creating if absent) `path` for appending, truncating any torn
  /// tail left by a crash to `valid_bytes` first. `next_lsn` continues the
  /// LSN sequence.
  static Result<WalWriter> Open(const std::string& path, uint64_t next_lsn,
                                uint64_t valid_bytes);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one record and makes it durable (fsync) unless batching is
  /// configured via set_sync_every. Consults the fault injector's
  /// `wal_append@N` point first: an injected fault writes a deliberately
  /// torn prefix of the record (the on-disk shape of a crash mid-write)
  /// and fails the append.
  Status Append(uint8_t kind, std::span<const uint8_t> body);

  /// Forces everything appended so far to disk.
  Status Sync();

  /// Group commit: fsync once per `n` appends (1 = every append, the
  /// default and what the commit protocol requires for publish-after-
  /// durable ordering; >1 trades durability of the last n-1 commits for
  /// throughput, for bulk loads).
  void set_sync_every(uint32_t n) { sync_every_ = n == 0 ? 1 : n; }

  /// Injector consulted at `wal_append@N`; null disables.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t bytes() const { return bytes_; }
  uint64_t records_appended() const { return records_appended_; }

 private:
  WalWriter() = default;

  int fd_ = -1;
  std::string path_;
  uint64_t next_lsn_ = 1;
  uint64_t bytes_ = 0;
  uint64_t records_appended_ = 0;
  uint32_t sync_every_ = 1;
  uint32_t unsynced_ = 0;
  FaultInjector* injector_ = nullptr;
};

}  // namespace graphql::storage

#endif  // GRAPHQL_STORAGE_WAL_H_
