#ifndef GRAPHQL_STORAGE_ENGINE_H_
#define GRAPHQL_STORAGE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/governor.h"
#include "common/result.h"
#include "graph/collection.h"
#include "storage/pager.h"
#include "storage/wal.h"

namespace graphql::storage {

/// WAL record vocabulary (WalRecord.kind). Bodies are little-endian.
enum class WalKind : uint8_t {
  /// body: u32 name length, name bytes, v2 collection binary
  /// (io::WriteCollectionBinary). The record's LSN is the store version
  /// the commit produced.
  kPublishDoc = 1,
  /// body: u32 name length, name bytes.
  kDropDoc = 2,
};

/// The durable half of the server's GraphStore: a write-ahead log for
/// commits plus page-aligned v3 checkpoints, tied into the store's commit
/// protocol so every published version is on disk before it becomes
/// visible.
///
/// Data directory layout:
///
///   <dir>/MANIFEST          text; names the current checkpoint
///   <dir>/wal.log           commits since that checkpoint
///   <dir>/chk-<seq>/        one checkpoint: symbols.dat + doc-<k>.gqls
///
/// Invariant that makes recovery correct: *LSN == store version*. Each
/// commit bumps the store version by exactly one and appends exactly one
/// WAL record under the commit lock, so the record's LSN is the version
/// it produced. The MANIFEST records the version its checkpoint captured;
/// replay skips records with lsn <= that version (they are already in the
/// checkpoint — the shape a crash between MANIFEST swap and WAL reset
/// leaves behind) and applies the rest in order. A torn tail (crash
/// mid-append) is detected by the WAL reader and dropped; everything
/// before it was fsynced before the commit published, so the recovered
/// state is exactly the committed history.
///
/// Recovery sequence (Open):
///   1. Parse MANIFEST (absent = empty store).
///   2. Intern the checkpoint's symbol dump, in written order, BEFORE
///      anything else interns — this is what makes the v3 files' symbol
///      identity hold so their arrays are viewed in place (zero copy).
///   3. Open each checkpoint .gqls and materialize its collection.
///   4. Replay wal.log, skipping lsn <= checkpoint version.
///   5. Write a fresh checkpoint of the recovered state and reset the
///      WAL — recovery work is never repeated, and a torn tail is
///      truncated away for good.
///
/// Ordering with respect to the store's locks: every method that touches
/// the WAL or checkpoints is called with GraphStore::commit_mu_ held (the
/// store serializes writers), so this class adds no locking of its own.
/// fsync ordering per commit: WAL record fsynced (Append) -> version
/// published. Checkpoints fsync every data file, then the MANIFEST, then
/// reset the WAL — in that order.
///
/// Failure semantics: a failed WAL append (I/O error or injected
/// `wal_append@N` fault) may leave a torn record at the tail that a later
/// successful append would bury past the reader's reach, so the engine
/// poisons itself: further LogPublish/LogDrop calls fail with
/// kFailedPrecondition until the next Open() recovers the directory. A
/// failed checkpoint (injected `checkpoint@N`) is non-fatal: the old
/// MANIFEST still stands and the WAL still holds every commit.
class DurableStore {
 public:
  using DocMap =
      std::map<std::string, std::shared_ptr<const GraphCollection>>;

  struct Options {
    std::string dir;
    /// Auto-checkpoint after this many WAL records (MaybeCheckpoint).
    uint64_t checkpoint_every = 64;
    /// WAL group-commit batch (1 = fsync per commit, the default; see
    /// WalWriter::set_sync_every).
    uint32_t wal_sync_every = 1;
    /// Consulted at `wal_append@N` and `checkpoint@N`; null disables.
    FaultInjector* injector = nullptr;
  };

  struct RecoveryStats {
    uint64_t checkpoint_seq = 0;      ///< Checkpoint the MANIFEST named.
    uint64_t checkpoint_version = 0;  ///< Store version it captured.
    uint64_t docs_loaded = 0;         ///< Collections read from it.
    uint64_t wal_records_replayed = 0;
    uint64_t wal_records_skipped = 0;  ///< lsn <= checkpoint version.
    uint64_t wal_torn_bytes = 0;       ///< Dropped torn tail, if any.
    uint64_t symbols_loaded = 0;       ///< Interned from symbols.dat.
    /// True when every checkpoint file opened zero-copy (symbol identity
    /// held for all of them).
    bool all_zero_copy = true;
  };

  /// Opens `dir` (creating it if absent) and runs recovery. On success
  /// the recovered state is ready to Bootstrap a GraphStore and the WAL
  /// is open for appends at lsn = recovered version + 1.
  static Result<std::unique_ptr<DurableStore>> Open(const Options& opts);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  // ---- Recovered state (read once at startup) ----

  const DocMap& recovered_docs() const { return recovered_docs_; }
  uint64_t recovered_version() const { return recovered_version_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // ---- Commit-path logging (caller holds the store's commit lock) ----

  /// Appends and fsyncs a publish record for version `version`. Must be
  /// called before the version is published to readers.
  Status LogPublish(const std::string& name, const GraphCollection& c,
                    uint64_t version);

  /// Appends and fsyncs a drop record for version `version`.
  Status LogDrop(const std::string& name, uint64_t version);

  /// Checkpoints `docs` at `version` when the WAL has accumulated
  /// checkpoint_every records since the last one (no-op otherwise).
  Status MaybeCheckpoint(const DocMap& docs, uint64_t version);

  /// Unconditional checkpoint: writes chk-<seq+1>/ (symbol dump + one v3
  /// file per doc), swaps the MANIFEST, resets the WAL, and removes the
  /// previous checkpoint directory.
  Status Checkpoint(const DocMap& docs, uint64_t version);

  // ---- Counters (stats rendering) ----

  uint64_t wal_records() const { return wal_records_; }
  uint64_t wal_bytes() const;
  uint64_t checkpoints() const { return checkpoints_; }
  uint64_t failed_checkpoints() const { return failed_checkpoints_; }
  bool poisoned() const { return poisoned_; }
  /// Bytes of checkpoint pages currently pinned in memory by live mapped
  /// snapshots (the server's resident-memory accounting for zero-copy
  /// opens; shrinks when dropped docs release their backing).
  uint64_t resident_mapped_bytes() const;

  const std::string& dir() const { return dir_; }

 private:
  DurableStore() = default;

  Status Recover();
  Status ResetWal(uint64_t next_lsn);
  Status AppendRecord(WalKind kind, const std::vector<uint8_t>& body,
                      uint64_t version);

  std::string dir_;
  Options opts_;
  uint64_t checkpoint_seq_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  uint64_t wal_records_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t failed_checkpoints_ = 0;
  bool poisoned_ = false;
  std::unique_ptr<WalWriter> wal_;
  DocMap recovered_docs_;
  uint64_t recovered_version_ = 0;
  RecoveryStats recovery_stats_;
  /// Mapped checkpoint files live as long as some snapshot views them;
  /// weak so a dropped doc's pages stop being counted once released.
  std::vector<std::weak_ptr<PageFile>> mapped_files_;
};

}  // namespace graphql::storage

#endif  // GRAPHQL_STORAGE_ENGINE_H_
