#ifndef GRAPHQL_STORAGE_PAGER_H_
#define GRAPHQL_STORAGE_PAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace graphql::storage {

/// Fixed page size of every paged file the storage layer writes. 4 KiB
/// matches the kernel page size on every platform we target, so a mapped
/// section span is always correctly aligned for the POD arrays snapshot
/// format v3 views in place (int32/uint32/12-byte AdjEntry).
inline constexpr size_t kPageSize = 4096;

/// A paged, checksummed, section-addressed file: the physical layer under
/// snapshot format v3.
///
/// Layout (little-endian):
///   page 0             file header (magic "GQP3", geometry, region CRCs)
///   directory pages    {section id, byte offset, byte length} entries
///   checksum table     one CRC-32C per data page
///   data pages         each section starts on a page boundary,
///                      zero-padded to the next boundary
///
/// The open path reads metadata only — header, directory, and checksum
/// table are verified eagerly (they are O(sections + pages/1024) bytes);
/// data pages are verified lazily, once per section, the first time the
/// section is requested. Open cost is therefore O(metadata), and a reader
/// that touches two sections of a multi-GB file checksums exactly those
/// sections' pages — "O(pages touched)".
class PageFile {
 public:
  /// Opens and maps `path` read-only. Prefers mmap; falls back to reading
  /// the whole file into memory when mapping fails or $GQL_NO_MMAP is set
  /// (the fallback changes cost, not behavior). Fails on any metadata
  /// checksum mismatch.
  static Result<std::shared_ptr<PageFile>> Open(const std::string& path);

  /// Wraps an in-memory image (fuzz harnesses, tests). Same validation as
  /// Open.
  static Result<std::shared_ptr<PageFile>> FromBuffer(
      std::vector<uint8_t> bytes);

  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// The section's bytes, or kNotFound / kDataLoss. The first request for
  /// a section verifies the CRC of every page it spans; the span is only
  /// handed out after verification succeeds. Returned spans stay valid for
  /// the PageFile's lifetime (callers that outlive the call hold the
  /// shared_ptr).
  Result<std::span<const uint8_t>> Section(uint32_t id) const;

  /// True when the section exists (without verifying it).
  bool HasSection(uint32_t id) const;

  /// Section ids in file order (directory order).
  std::vector<uint32_t> SectionIds() const;

  /// Verifies every data page (fsck / recovery / tests); kDataLoss names
  /// the first bad page.
  Status VerifyAllPages() const;

  /// True when the file is served by mmap (false: malloc+read fallback).
  bool mapped() const { return mapped_; }

  /// Bytes this file pins in memory: the mapped extent (or the fallback
  /// buffer). What the server accounts against resident memory for
  /// adopted snapshots.
  size_t resident_bytes() const { return bytes_.size(); }

 private:
  PageFile() = default;

  static Result<std::shared_ptr<PageFile>> Validate(
      std::shared_ptr<PageFile> file);
  Status VerifyPages(uint64_t first_page, uint64_t page_count) const;

  struct SectionEntry {
    uint64_t offset = 0;  ///< Absolute byte offset (page-aligned).
    uint64_t length = 0;
    uint32_t index = 0;   ///< Directory position (verification flag slot).
  };

  std::span<const uint8_t> bytes_;   ///< Whole-file image.
  std::vector<uint8_t> owned_;       ///< Backing store in fallback mode.
  void* map_base_ = nullptr;         ///< mmap base (mapped mode).
  size_t map_len_ = 0;
  bool mapped_ = false;
  uint64_t data_start_page_ = 0;
  std::span<const uint8_t> crc_table_;  ///< u32 per data page.
  std::map<uint32_t, SectionEntry> sections_;
  mutable Mutex verify_mu_;
  mutable std::vector<uint8_t> section_verified_ GQL_GUARDED_BY(verify_mu_);
};

/// Builds a PageFile image: sections are accumulated in memory, then laid
/// out and written in one pass. Collections here are MBs, not the multi-GB
/// read side, so a buffered writer keeps the format code in one place.
class PageFileWriter {
 public:
  /// Adds a section (ids must be unique; content may be empty).
  void AddSection(uint32_t id, std::vector<uint8_t> bytes);

  /// The serialized image (also what WriteTo persists).
  std::vector<uint8_t> Build() const;

  /// Writes the image to `path` (replacing any existing file via a
  /// same-directory temp file + rename) and fsyncs the file and its
  /// directory, so a crash leaves either the old file or the new one,
  /// never a torn mix.
  Status WriteTo(const std::string& path) const;

 private:
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> sections_;
};

/// Durably writes `bytes` to `path` via temp-file + rename + directory
/// fsync (shared by PageFileWriter, MANIFEST, and the symbol dump).
Status AtomicWriteFile(const std::string& path,
                       std::span<const uint8_t> bytes);

}  // namespace graphql::storage

#endif  // GRAPHQL_STORAGE_PAGER_H_
