#include "common/signals.h"

namespace graphql {

namespace {

std::atomic<ResourceGovernor*> g_cancel_governor{nullptr};

extern "C" void HandleSigintCancel(int) {
  ResourceGovernor* gov = g_cancel_governor.load(std::memory_order_relaxed);
  if (gov != nullptr) gov->Cancel();
}

}  // namespace

void SetActiveCancelGovernor(ResourceGovernor* gov) {
  g_cancel_governor.store(gov, std::memory_order_relaxed);
}

ResourceGovernor* ActiveCancelGovernor() {
  return g_cancel_governor.load(std::memory_order_relaxed);
}

SigintCancelScope::SigintCancelScope() {
  struct sigaction action {};
  action.sa_handler = HandleSigintCancel;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: a Ctrl-C at the prompt must not make the shell's blocking
  // stdin read fail with EINTR (the shell would exit); the running query
  // is cancelled through the governor, not through interrupted syscalls.
  action.sa_flags = SA_RESTART;
  installed_ = sigaction(SIGINT, &action, &previous_) == 0;
}

SigintCancelScope::~SigintCancelScope() {
  if (installed_) sigaction(SIGINT, &previous_, nullptr);
}

}  // namespace graphql
