#ifndef GRAPHQL_COMMON_SYMBOLS_H_
#define GRAPHQL_COMMON_SYMBOLS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/thread_annotations.h"

namespace graphql {

/// Dense symbol id. Ids are assigned consecutively starting at 0 by the
/// process-wide SymbolTable and never recycled.
using SymbolId = int32_t;

/// Sentinel for "no symbol": unknown strings (Lookup misses), empty tags,
/// anonymous names, and non-string attribute values all map here.
inline constexpr SymbolId kNoSymbol = -1;

/// Process-wide string interner. Every label, tag, attribute name,
/// node/edge variable name, and string attribute value that flows through
/// the storage layer is interned here exactly once, so any two structures
/// that talk about the same string agree on its id regardless of which was
/// built first (this replaces the per-structure LabelDictionary that could
/// assign the same label different ids in the profile builder and the
/// label index).
///
/// Thread-safe: Intern takes a writer lock only on first sight of a
/// string; Lookup/Name take reader locks. Interned strings are never
/// freed, so `Name` views stay valid for the process lifetime.
class SymbolTable {
 public:
  /// The shared process-wide table. All storage-layer interning goes
  /// through this instance so symbol ids are comparable across graphs,
  /// patterns, and indexes.
  static SymbolTable& Global();

  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `s`, interning it if new. Empty strings intern
  /// like any other string; callers that want "absent" semantics should
  /// map empty to kNoSymbol themselves (GraphSnapshot does).
  SymbolId Intern(std::string_view s);

  /// Returns the id for `s`, or kNoSymbol if it has never been interned.
  SymbolId Lookup(std::string_view s) const;

  /// The string for an id previously returned by Intern. The view remains
  /// valid for the lifetime of the table. Returns an empty view for
  /// kNoSymbol or out-of-range ids.
  std::string_view Name(SymbolId id) const;

  size_t size() const;

 private:
  mutable SharedMutex mu_;
  // Keys are views into `names_`; deque never reallocates stored strings.
  std::unordered_map<std::string_view, SymbolId> ids_ GQL_GUARDED_BY(mu_);
  std::deque<std::string> names_ GQL_GUARDED_BY(mu_);
};

}  // namespace graphql

#endif  // GRAPHQL_COMMON_SYMBOLS_H_
