#ifndef GRAPHQL_COMMON_RNG_H_
#define GRAPHQL_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace graphql {

/// Deterministic, seedable pseudo-random number generator (xoshiro256**).
/// All workload generators and randomized benchmarks take an explicit Rng so
/// every experiment in the repository is reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator; two Rngs with the same seed produce identical
  /// streams on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Samples from a Zipf distribution over {0, 1, ..., n-1}: P(x) is
/// proportional to 1/(x+1)^alpha. Used for the paper's synthetic label
/// distribution ("probability of the x-th label p(x) is proportional to
/// x^-1", Section 5.2, i.e. alpha = 1).
class ZipfSampler {
 public:
  /// Precomputes the CDF for n items with exponent alpha.
  ZipfSampler(size_t n, double alpha = 1.0);

  /// Draws one sample (an index in [0, n)).
  size_t Sample(Rng* rng) const;

  /// Probability mass of item x.
  double Pmf(size_t x) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::vector<double> pmf_;
};

}  // namespace graphql

#endif  // GRAPHQL_COMMON_RNG_H_
