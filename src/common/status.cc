#include "common/status.h"

namespace graphql {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kLimitExceeded:
      return "LimitExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace graphql
