#ifndef GRAPHQL_COMMON_VALUE_H_
#define GRAPHQL_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/result.h"

namespace graphql {

/// The dynamic attribute value type used throughout GraphQL. Attributes on
/// nodes, edges, and graphs are (name, Value) pairs; predicates compare and
/// combine Values at query time.
///
/// Supported kinds mirror the literals of the GraphQL grammar (int, float,
/// string) plus booleans (produced by comparisons) and a distinguished null
/// (absent attribute).
class Value {
 public:
  enum class Kind { kNull = 0, kBool, kInt, kDouble, kString };

  /// Constructs a null value.
  Value() : rep_(std::monostate{}) {}
  explicit Value(bool b) : rep_(b) {}
  explicit Value(int64_t i) : rep_(i) {}
  explicit Value(int i) : rep_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : rep_(d) {}
  explicit Value(std::string s) : rep_(std::move(s)) {}
  explicit Value(const char* s) : rep_(std::string(s)) {}

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Accessors require the matching kind (checked by assert in debug).
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric value widened to double; requires is_numeric().
  double NumericAsDouble() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// Truthiness used by predicate evaluation: null and false are falsy;
  /// numbers are truthy iff nonzero; strings iff nonempty.
  bool Truthy() const;

  /// Structural equality: same kind and same payload, except that int and
  /// double compare numerically (Value(2) == Value(2.0)).
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order for container use: null < bool < numeric < string; numerics
  /// compare numerically across int/double.
  friend bool operator<(const Value& a, const Value& b);

  /// Renders the value as it would appear in GraphQL source ("null", "true",
  /// 42, 3.5, "quoted").
  std::string ToString() const;

  /// Hash compatible with operator== (ints that equal doubles hash alike).
  size_t Hash() const;

  // -- Checked arithmetic and comparison used by the expression evaluator --

  /// a + b: numeric addition or string concatenation.
  static Result<Value> Add(const Value& a, const Value& b);
  static Result<Value> Sub(const Value& a, const Value& b);
  static Result<Value> Mul(const Value& a, const Value& b);
  /// Division; integer division truncates; division by zero is a TypeError.
  static Result<Value> Div(const Value& a, const Value& b);
  /// Ordered comparison; requires both numeric or both string.
  static Result<bool> Less(const Value& a, const Value& b);
  static Result<bool> LessEq(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace graphql

#endif  // GRAPHQL_COMMON_VALUE_H_
