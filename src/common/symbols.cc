#include "common/symbols.h"

namespace graphql {

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

SymbolId SymbolTable::Intern(std::string_view s) {
  {
    ReaderMutexLock lock(&mu_);
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
  }
  WriterMutexLock lock(&mu_);
  auto it = ids_.find(s);  // Re-check: another thread may have won the race.
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

SymbolId SymbolTable::Lookup(std::string_view s) const {
  ReaderMutexLock lock(&mu_);
  auto it = ids_.find(s);
  return it == ids_.end() ? kNoSymbol : it->second;
}

std::string_view SymbolTable::Name(SymbolId id) const {
  ReaderMutexLock lock(&mu_);
  if (id < 0 || static_cast<size_t>(id) >= names_.size()) return {};
  return names_[id];
}

size_t SymbolTable::size() const {
  ReaderMutexLock lock(&mu_);
  return names_.size();
}

}  // namespace graphql
