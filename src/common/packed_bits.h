#ifndef GRAPHQL_COMMON_PACKED_BITS_H_
#define GRAPHQL_COMMON_PACKED_BITS_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace graphql {

/// Packed k x n bit matrix. Grown out of the snapshot refinement path
/// (candidate membership and dirty marks in one bit each instead of a byte
/// bitmap plus a hashed pair set); now also the verdict/candidate bitmap of
/// the vectorized selection kernels, which AND whole predicate bitmaps
/// word-at-a-time instead of probing per node. The footprint is known up
/// front (bytes()), so callers reserve it once against the governor.
///
/// A single bitmap is a PackedBits with rows == 1.
class PackedBits {
 public:
  PackedBits() = default;
  PackedBits(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        row_words_((cols + 63) / 64),
        words_(rows * row_words_, 0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// 64-bit words per row (the unit of the bulk operations below).
  size_t row_words() const { return row_words_; }
  size_t bytes() const { return words_.size() * sizeof(uint64_t); }

  bool Test(size_t r, size_t c) const {
    return (words_[r * row_words_ + (c >> 6)] >> (c & 63)) & 1;
  }
  void Set(size_t r, size_t c) {
    words_[r * row_words_ + (c >> 6)] |= uint64_t{1} << (c & 63);
  }
  void Clear(size_t r, size_t c) {
    words_[r * row_words_ + (c >> 6)] &= ~(uint64_t{1} << (c & 63));
  }

  /// Copies another matrix's bits into this one. The shapes must match:
  /// the old refine-internal version silently adopted the source's word
  /// vector, so a size mismatch corrupted every later row computation.
  void CopyFrom(const PackedBits& other) {
    assert(rows_ == other.rows_ && cols_ == other.cols_ &&
           "PackedBits::CopyFrom requires identical shapes");
    words_ = other.words_;
  }

  /// Sets every bit of row `r` in [0, cols); bits in the tail of the last
  /// word stay zero so PopCount and word-level scans never see ghosts.
  void SetRow(size_t r) {
    uint64_t* row = words_.data() + r * row_words_;
    for (size_t w = 0; w < row_words_; ++w) row[w] = ~uint64_t{0};
    TrimRowTail(row);
  }
  void ClearRow(size_t r) {
    uint64_t* row = words_.data() + r * row_words_;
    for (size_t w = 0; w < row_words_; ++w) row[w] = 0;
  }

  /// Word-at-a-time row combinators: row `r` of this matrix op= row `sr`
  /// of `src` (which may be this matrix). Shapes must agree on cols.
  void AndRow(size_t r, const PackedBits& src, size_t sr) {
    assert(row_words_ == src.row_words_);
    uint64_t* dst = words_.data() + r * row_words_;
    const uint64_t* s = src.words_.data() + sr * src.row_words_;
    for (size_t w = 0; w < row_words_; ++w) dst[w] &= s[w];
  }
  void OrRow(size_t r, const PackedBits& src, size_t sr) {
    assert(row_words_ == src.row_words_);
    uint64_t* dst = words_.data() + r * row_words_;
    const uint64_t* s = src.words_.data() + sr * src.row_words_;
    for (size_t w = 0; w < row_words_; ++w) dst[w] |= s[w];
  }
  /// dst &= ~src (keep bits of `r` not set in `sr`).
  void AndNotRow(size_t r, const PackedBits& src, size_t sr) {
    assert(row_words_ == src.row_words_);
    uint64_t* dst = words_.data() + r * row_words_;
    const uint64_t* s = src.words_.data() + sr * src.row_words_;
    for (size_t w = 0; w < row_words_; ++w) dst[w] &= ~s[w];
  }

  /// Population count of row `r`.
  size_t PopCountRow(size_t r) const {
    const uint64_t* row = words_.data() + r * row_words_;
    size_t n = 0;
    for (size_t w = 0; w < row_words_; ++w) {
      n += static_cast<size_t>(std::popcount(row[w]));
    }
    return n;
  }
  /// Population count of the whole matrix.
  size_t PopCount() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  /// Set bits of row `r` in ascending column order — the same (u, v)
  /// ascending order the legacy refine path gets from sorting PairKeys.
  /// `fn` returning false stops the scan (and returns false here).
  template <typename Fn>
  bool ForEachInRow(size_t r, Fn&& fn) const {
    const uint64_t* row = words_.data() + r * row_words_;
    for (size_t w = 0; w < row_words_; ++w) {
      uint64_t bits = row[w];
      while (bits != 0) {
        size_t c = (w << 6) + static_cast<size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (!fn(c)) return false;
      }
    }
    return true;
  }

  /// Raw word access for block-at-a-time consumers (a word covers columns
  /// [64*w, 64*w + 63] of the row).
  uint64_t RowWord(size_t r, size_t w) const {
    return words_[r * row_words_ + w];
  }

 private:
  /// Zeroes the bits past `cols_` in a row's last word.
  void TrimRowTail(uint64_t* row) {
    size_t tail = cols_ & 63;
    if (row_words_ != 0 && tail != 0) {
      row[row_words_ - 1] &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t row_words_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace graphql

#endif  // GRAPHQL_COMMON_PACKED_BITS_H_
