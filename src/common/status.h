#ifndef GRAPHQL_COMMON_STATUS_H_
#define GRAPHQL_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace graphql {

/// Error categories used across the library. The library is exception-free
/// on its public API: fallible operations return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kNotFound,          ///< A named entity (node, graph, document) is missing.
  kParseError,        ///< GraphQL source text could not be parsed.
  kTypeError,         ///< A predicate or template mixed incompatible types.
  kUnsupported,       ///< A syntactically valid construct is not implemented.
  kLimitExceeded,     ///< A resource budget (derivation depth, matches) hit.
  kInternal,          ///< Invariant violation; indicates a library bug.
  kDeadlineExceeded,  ///< The query's wall-clock deadline passed.
  kCancelled,         ///< The query was cancelled cooperatively.
  kResourceExhausted, ///< A governed step/memory budget ran out.
  kDataLoss,          ///< Stored bytes failed checksum/structure validation.
};

/// Returns a short human-readable name such as "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Value-semantic success-or-error carrier, modeled after the Status idiom
/// used by RocksDB and Arrow. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status LimitExceeded(std::string msg) {
    return Status(StatusCode::kLimitExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace graphql

/// Propagates a non-OK Status from the current function.
#define GQL_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::graphql::Status _gql_status = (expr);        \
    if (!_gql_status.ok()) return _gql_status;     \
  } while (0)

#endif  // GRAPHQL_COMMON_STATUS_H_
