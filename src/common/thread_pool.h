#ifndef GRAPHQL_COMMON_THREAD_POOL_H_
#define GRAPHQL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace graphql {

/// Fixed-size worker pool with per-participant work-stealing deques, shared
/// by every parallel pipeline stage (retrieve / refine / search).
///
/// Each ParallelFor call forms one job: the item indices are dealt in
/// contiguous blocks into one deque per participating worker; a worker pops
/// from the bottom of its own deque (LIFO, cache-friendly) and, when that
/// runs dry, steals from the top of another worker's deque (FIFO, so
/// thieves take the oldest — largest remaining — blocks of work first).
/// The calling thread always participates as worker 0, so a pool is usable
/// even with zero background threads and `max_workers == 1` degenerates to
/// an inline loop over the items.
///
/// Item functions must not throw; engine code reports failures through
/// Status values captured per item. Jobs on one pool are serialized (a
/// second concurrent ParallelFor blocks until the first finishes), which
/// keeps worker ids dense per job so callers can use them to index
/// per-worker shards (metrics, governor charge batches, search states).
class ThreadPool {
 public:
  /// What one participant did during a job: which OS thread it ran on,
  /// when it was active, and how much work it executed. Captured on every
  /// ParallelFor (two clock reads per worker per job) so trace exports can
  /// draw real worker-thread lanes.
  struct WorkerLane {
    int64_t os_tid = 0;    ///< Kernel thread id (see CurrentOsThreadId).
    int64_t start_us = 0;  ///< NowMicros when the worker joined the job.
    int64_t end_us = 0;    ///< NowMicros when its deques ran dry.
    uint64_t tasks = 0;    ///< Items this worker executed.
    uint64_t stolen = 0;   ///< Of those, items taken from another deque.
  };

  /// Per-job execution counters, reported back to the caller so trace
  /// spans can be annotated with `threads` / `tasks_stolen`.
  struct RunStats {
    int workers = 0;         ///< Participants (including the caller).
    uint64_t tasks = 0;      ///< Items executed.
    uint64_t stolen = 0;     ///< Items taken from another worker's deque.
    /// One lane per participant (dense worker ids; [0] is the caller).
    std::vector<WorkerLane> lanes;
  };

  /// `num_threads` background threads (clamped to >= 0); the pool then
  /// supports up to num_threads + 1 participants per job.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }
  /// Largest participant count a job can use.
  int max_workers() const { return num_threads() + 1; }

  /// Runs fn(item, worker) for every item in [0, n), blocking until all
  /// items finished. `max_workers` caps the participants (values < 1 or
  /// beyond the pool's capacity are clamped); worker ids are dense in
  /// [0, workers) with the calling thread as worker 0.
  RunStats ParallelFor(size_t n, int max_workers,
                       const std::function<void(size_t, int)>& fn);

  /// Process-wide pool sized for hardware_concurrency total workers
  /// (hardware_concurrency - 1 background threads), created on first use.
  static ThreadPool& Shared();

 private:
  struct Job {
    const std::function<void(size_t, int)>* fn = nullptr;
    int workers = 0;
    /// queues[w] is guarded by queue_mu[w]; the analysis cannot express a
    /// per-element guard over parallel arrays, so NextTask is the single
    /// audited accessor (every touch of queues[i] sits inside a
    /// MutexLock(&queue_mu[i]) scope there and in ParallelFor's dealing
    /// phase, which runs before any worker can see the job).
    std::vector<std::deque<size_t>> queues;        // One per participant.
    std::unique_ptr<Mutex[]> queue_mu;             // One per participant.
    std::vector<WorkerLane> lanes;                 // Slot w: worker w only.
    std::atomic<size_t> remaining{0};
    std::atomic<int> claimed{1};  // Next worker id; 0 is the caller's.
    std::atomic<uint64_t> stolen{0};
  };

  void WorkerLoop() GQL_EXCLUDES(mu_);
  /// Drains tasks for participant `w` until every deque is empty.
  void RunWorker(Job* job, int w) GQL_EXCLUDES(mu_);
  /// Pops the next task: own deque bottom first, then steal scan. False
  /// when every deque is empty.
  bool NextTask(Job* job, int w, size_t* item, bool* was_steal);

  Mutex mu_;
  CondVar cv_work_;  ///< Pool threads wait for a job.
  CondVar cv_done_;  ///< Caller waits for job completion.
  Job* job_ GQL_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ GQL_GUARDED_BY(mu_) = 0;  ///< Bumped per job.
  int active_ GQL_GUARDED_BY(mu_) = 0;  ///< Pool threads inside RunWorker.
  bool stop_ GQL_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
  Mutex submit_mu_;  ///< Serializes jobs on this pool.
};

/// The process-default intra-query worker count: $GQL_THREADS parsed once
/// (0 when unset, empty, or unparseable). This seeds
/// PipelineOptions::num_threads so `GQL_THREADS=4 ctest` exercises the
/// parallel path without touching any call site; explicit assignment still
/// overrides it either way.
int DefaultNumThreads();

/// Clamps a PipelineOptions::num_threads-style knob to what `pool` (null =
/// the shared pool) can serve: values < 1 mean serial (returns 0), values
/// beyond the pool's capacity are capped at it.
int ResolveWorkers(int num_threads, const ThreadPool* pool = nullptr);

/// The calling thread's kernel thread id (gettid on Linux), cached per
/// thread; falls back to a stable per-thread token elsewhere. These ids
/// name the lanes in Chrome-trace exports.
int64_t CurrentOsThreadId();

/// Accumulates `from` into `into`, keyed by os_tid: tasks/stolen add,
/// active windows union. A pipeline stage that issues several ParallelFor
/// jobs (refinement levels, retrieve phases) merges them into one lane per
/// OS thread for the stage's trace span.
void MergeWorkerLanes(std::vector<ThreadPool::WorkerLane>* into,
                      const std::vector<ThreadPool::WorkerLane>& from);

}  // namespace graphql

#endif  // GRAPHQL_COMMON_THREAD_POOL_H_
