#include "common/strings.h"

namespace graphql {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string EscapeStringLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace graphql
