#ifndef GRAPHQL_COMMON_SIGNALS_H_
#define GRAPHQL_COMMON_SIGNALS_H_

#include <atomic>
#include <csignal>

#include "common/governor.h"

namespace graphql {

/// Process-wide slot naming the governor a SIGINT-cancel handler should
/// target. Publishing is a single relaxed atomic store, so both the
/// publisher (the shell, around each Run) and the consumer (the signal
/// handler) are async-signal-safe.
///
/// This used to live as a static inside gqlsh, which implicitly claimed
/// SIGINT for the whole process; hoisted here so the handler is installed
/// *explicitly and scoped* (SigintCancelScope below) — a process that
/// embeds the evaluator AND runs the query server leaves SIGINT/SIGTERM
/// to the server's drain logic by simply not creating the scope.
void SetActiveCancelGovernor(ResourceGovernor* gov);
ResourceGovernor* ActiveCancelGovernor();

/// RAII: publishes `gov` as the cancel target for the duration of a query.
class CancelScope {
 public:
  explicit CancelScope(ResourceGovernor* gov) { SetActiveCancelGovernor(gov); }
  ~CancelScope() { SetActiveCancelGovernor(nullptr); }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;
};

/// Installs (via sigaction) a SIGINT handler that cancels the active
/// governor — the query dies, the process survives — and restores the
/// previous disposition on destruction. Construct one at the top of an
/// interactive shell's main(); do NOT construct one in a server process,
/// which owns its signals for graceful drain.
class SigintCancelScope {
 public:
  SigintCancelScope();
  ~SigintCancelScope();
  SigintCancelScope(const SigintCancelScope&) = delete;
  SigintCancelScope& operator=(const SigintCancelScope&) = delete;

  /// True when the handler was installed (sigaction succeeded).
  bool installed() const { return installed_; }

 private:
  struct sigaction previous_ {};
  bool installed_ = false;
};

}  // namespace graphql

#endif  // GRAPHQL_COMMON_SIGNALS_H_
