#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace graphql {

bool Value::Truthy() const {
  switch (kind()) {
    case Kind::kNull:
      return false;
    case Kind::kBool:
      return AsBool();
    case Kind::kInt:
      return AsInt() != 0;
    case Kind::kDouble:
      return AsDouble() != 0.0;
    case Kind::kString:
      return !AsString().empty();
  }
  return false;
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) return a.AsInt() == b.AsInt();
    return a.NumericAsDouble() == b.NumericAsDouble();
  }
  return a.rep_ == b.rep_;
}

bool operator<(const Value& a, const Value& b) {
  auto rank = [](const Value& v) {
    switch (v.kind()) {
      case Value::Kind::kNull:
        return 0;
      case Value::Kind::kBool:
        return 1;
      case Value::Kind::kInt:
      case Value::Kind::kDouble:
        return 2;
      case Value::Kind::kString:
        return 3;
    }
    return 4;
  };
  if (rank(a) != rank(b)) return rank(a) < rank(b);
  switch (a.kind()) {
    case Value::Kind::kNull:
      return false;
    case Value::Kind::kBool:
      return a.AsBool() < b.AsBool();
    case Value::Kind::kInt:
      if (b.is_int()) return a.AsInt() < b.AsInt();
      return a.NumericAsDouble() < b.NumericAsDouble();
    case Value::Kind::kDouble:
      return a.NumericAsDouble() < b.NumericAsDouble();
    case Value::Kind::kString:
      return a.AsString() < b.AsString();
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return AsBool() ? "true" : "false";
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case Kind::kString: {
      std::string out = "\"";
      out += AsString();
      out += "\"";
      return out;
    }
  }
  return "?";
}

size_t Value::Hash() const {
  switch (kind()) {
    case Kind::kNull:
      return 0x9e3779b97f4a7c15ull;
    case Kind::kBool:
      return AsBool() ? 0x1234567 : 0x89abcde;
    case Kind::kInt:
      // Ints that equal a double must hash like the double.
      return std::hash<double>()(static_cast<double>(AsInt()));
    case Kind::kDouble:
      return std::hash<double>()(AsDouble());
    case Kind::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

namespace {

Status NumericOperandError(const char* op, const Value& a, const Value& b) {
  return Status::TypeError(std::string("operator '") + op +
                           "' requires numeric operands, got " + a.ToString() +
                           " and " + b.ToString());
}

}  // namespace

Result<Value> Value::Add(const Value& a, const Value& b) {
  if (a.is_string() && b.is_string()) {
    return Value(a.AsString() + b.AsString());
  }
  if (!a.is_numeric() || !b.is_numeric()) {
    return NumericOperandError("+", a, b);
  }
  if (a.is_int() && b.is_int()) return Value(a.AsInt() + b.AsInt());
  return Value(a.NumericAsDouble() + b.NumericAsDouble());
}

Result<Value> Value::Sub(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return NumericOperandError("-", a, b);
  }
  if (a.is_int() && b.is_int()) return Value(a.AsInt() - b.AsInt());
  return Value(a.NumericAsDouble() - b.NumericAsDouble());
}

Result<Value> Value::Mul(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return NumericOperandError("*", a, b);
  }
  if (a.is_int() && b.is_int()) return Value(a.AsInt() * b.AsInt());
  return Value(a.NumericAsDouble() * b.NumericAsDouble());
}

Result<Value> Value::Div(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return NumericOperandError("/", a, b);
  }
  if (a.is_int() && b.is_int()) {
    if (b.AsInt() == 0) return Status::TypeError("integer division by zero");
    return Value(a.AsInt() / b.AsInt());
  }
  if (b.NumericAsDouble() == 0.0) {
    return Status::TypeError("division by zero");
  }
  return Value(a.NumericAsDouble() / b.NumericAsDouble());
}

Result<bool> Value::Less(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    return a.NumericAsDouble() < b.NumericAsDouble();
  }
  if (a.is_string() && b.is_string()) {
    return a.AsString() < b.AsString();
  }
  return Status::TypeError("'<' requires two numbers or two strings, got " +
                           a.ToString() + " and " + b.ToString());
}

Result<bool> Value::LessEq(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    return a.NumericAsDouble() <= b.NumericAsDouble();
  }
  if (a.is_string() && b.is_string()) {
    return a.AsString() <= b.AsString();
  }
  return Status::TypeError("'<=' requires two numbers or two strings, got " +
                           a.ToString() + " and " + b.ToString());
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace graphql
