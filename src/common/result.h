#ifndef GRAPHQL_COMMON_RESULT_H_
#define GRAPHQL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace graphql {

/// A value-or-Status carrier, the library's equivalent of absl::StatusOr.
/// A Result is either OK and holds a T, or holds a non-OK Status.
///
/// Typical use:
///   Result<Graph> r = Parse(text);
///   if (!r.ok()) return r.status();
///   const Graph& g = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status. Constructing from an OK
  /// status without a value is a usage error and is converted to kInternal.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace graphql

/// Evaluates `rexpr` (a Result<T>), propagating the error; otherwise binds
/// the unwrapped value to `lhs`.
#define GQL_ASSIGN_OR_RETURN(lhs, rexpr)        \
  GQL_ASSIGN_OR_RETURN_IMPL_(                   \
      GQL_RESULT_CONCAT_(_gql_result, __LINE__), lhs, rexpr)

#define GQL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define GQL_RESULT_CONCAT_(a, b) GQL_RESULT_CONCAT_IMPL_(a, b)
#define GQL_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // GRAPHQL_COMMON_RESULT_H_
