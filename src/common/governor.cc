#include "common/governor.h"

#include <cstdlib>

#include "common/strings.h"
#include "obs/clock.h"

namespace graphql {

const char* TripKindName(TripKind kind) {
  switch (kind) {
    case TripKind::kNone:
      return "none";
    case TripKind::kDeadline:
      return "deadline";
    case TripKind::kCancelled:
      return "cancelled";
    case TripKind::kSteps:
      return "steps";
    case TripKind::kMemory:
      return "memory";
  }
  return "?";
}

const char* GovernPointName(GovernPoint point) {
  switch (point) {
    case GovernPoint::kSearch:
      return "search";
    case GovernPoint::kRefine:
      return "refine";
    case GovernPoint::kRetrieve:
      return "retrieve";
    case GovernPoint::kNeighborhood:
      return "neighborhood";
    case GovernPoint::kDatalog:
      return "datalog";
    case GovernPoint::kGindex:
      return "gindex";
    case GovernPoint::kEval:
      return "eval";
    case GovernPoint::kAccept:
      return "accept";
    case GovernPoint::kFrameRead:
      return "frame_read";
    case GovernPoint::kCommit:
      return "commit";
    case GovernPoint::kWalAppend:
      return "wal_append";
    case GovernPoint::kCheckpoint:
      return "checkpoint";
    case GovernPoint::kOther:
      return "other";
  }
  return "?";
}

namespace {

bool PointFromName(std::string_view name, GovernPoint* out) {
  for (int i = 0; i < kNumGovernPoints; ++i) {
    GovernPoint p = static_cast<GovernPoint>(i);
    if (name == GovernPointName(p)) {
      *out = p;
      return true;
    }
  }
  // Historical alias used in docs/examples: refine_budget == refine.
  if (name == "refine_budget") {
    *out = GovernPoint::kRefine;
    return true;
  }
  return false;
}

bool KindFromName(std::string_view name, TripKind* out) {
  if (name == "steps") {
    *out = TripKind::kSteps;
  } else if (name == "deadline") {
    *out = TripKind::kDeadline;
  } else if (name == "cancel" || name == "cancelled") {
    *out = TripKind::kCancelled;
  } else if (name == "memory") {
    *out = TripKind::kMemory;
  } else {
    return false;
  }
  return true;
}

}  // namespace

Result<FaultInjector> FaultInjector::Parse(std::string_view spec) {
  FaultInjector injector;
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    size_t at_pos = entry.find('@');
    if (at_pos == std::string::npos) {
      return Status::InvalidArgument("fault rule '" + entry +
                                     "' is missing '@N'");
    }
    Rule rule;
    if (!PointFromName(entry.substr(0, at_pos), &rule.point)) {
      return Status::InvalidArgument("unknown fault point in '" + entry + "'");
    }
    std::string rest = entry.substr(at_pos + 1);
    rule.kind = TripKind::kSteps;
    size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      if (!KindFromName(rest.substr(colon + 1), &rule.kind)) {
        return Status::InvalidArgument("unknown fault kind in '" + entry +
                                       "'");
      }
      rest = rest.substr(0, colon);
    }
    char* end = nullptr;
    unsigned long long n = std::strtoull(rest.c_str(), &end, 10);
    if (end == rest.c_str() || *end != '\0' || n == 0) {
      return Status::InvalidArgument("bad fault count in '" + entry + "'");
    }
    rule.at = n;
    injector.rules_.push_back(rule);
  }
  return injector;
}

FaultInjector* FaultInjector::FromEnv() {
  static FaultInjector* const kInjector = []() -> FaultInjector* {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) read-only env lookup; no setenv anywhere
    const char* spec = std::getenv("GQL_FAULT");
    if (spec == nullptr || *spec == '\0') return nullptr;
    Result<FaultInjector> parsed = Parse(spec);
    if (!parsed.ok()) return nullptr;
    return new FaultInjector(std::move(parsed).value());
  }();
  return kInjector;
}

void FaultInjector::AddRule(GovernPoint point, uint64_t at, TripKind kind) {
  rules_.push_back(Rule{point, at, kind});
}

TripKind FaultInjector::OnCharge(GovernPoint point) {
  uint64_t count = counts_[static_cast<int>(point)].fetch_add(
                       1, std::memory_order_relaxed) +
                   1;
  for (const Rule& rule : rules_) {
    if (rule.point == point && rule.at == count) return rule.kind;
  }
  return TripKind::kNone;
}

ResourceGovernor::ResourceGovernor() : injector_(FaultInjector::FromEnv()) {
  Arm(GovernorLimits{});
}

ResourceGovernor::ResourceGovernor(const GovernorLimits& limits)
    : injector_(FaultInjector::FromEnv()) {
  Arm(limits);
}

void ResourceGovernor::Arm(const GovernorLimits& limits) {
  limits_ = limits;
  armed_at_us_ = obs::NowMicros();
  deadline_us_ =
      limits.timeout_ms > 0 ? armed_at_us_ + limits.timeout_ms * 1000 : 0;
  steps_used_ = 0;
  pending_steps_ = 0;
  memory_used_ = 0;
  peak_memory_ = 0;
  cancel_requested_.store(false, std::memory_order_relaxed);
  trip_kind_.store(TripKind::kNone, std::memory_order_relaxed);
  trip_point_ = GovernPoint::kOther;
  degradations_.clear();
}

void ResourceGovernor::Trip(TripKind kind, GovernPoint point) {
  TripKind expected = TripKind::kNone;
  if (trip_kind_.compare_exchange_strong(expected, kind,
                                         std::memory_order_relaxed)) {
    trip_point_ = point;
  }
}

bool ResourceGovernor::SlowCheck(GovernPoint point) {
  pending_steps_ = 0;
  if (cancel_requested_.load(std::memory_order_relaxed)) {
    Trip(TripKind::kCancelled, point);
    return false;
  }
  if (deadline_us_ != 0 && obs::NowMicros() > deadline_us_) {
    Trip(TripKind::kDeadline, point);
    return false;
  }
  if (injector_ != nullptr) {
    TripKind injected = injector_->OnCharge(point);
    if (injected != TripKind::kNone) {
      Trip(injected, point);
      return false;
    }
  }
  return true;
}

bool ResourceGovernor::CheckNow(GovernPoint point) {
  if (tripped()) return false;
  return SlowCheck(point);
}

bool ResourceGovernor::ChargeBatch(uint64_t steps, GovernPoint point) {
  MutexLock lock(&shared_mu_);
  // Record the batch even when already tripped: GovernorShard::charged()
  // must equal what actually landed in steps_used_, or the refine
  // degrade-fallback refund would drift.
  steps_used_ += steps;
  if (tripped()) return false;
  if (limits_.max_steps != 0 && steps_used_ > limits_.max_steps) {
    Trip(TripKind::kSteps, point);
    return false;
  }
  // A batch stands for ~kCheckIntervalSteps charges: always take the slow
  // path so deadline/cancel/injection latency matches the serial cadence.
  return SlowCheck(point);
}

void ResourceGovernor::ReserveShared(size_t bytes, GovernPoint point) {
  MutexLock lock(&shared_mu_);
  Reserve(bytes, point);
}

void ResourceGovernor::Reserve(size_t bytes, GovernPoint point) {
  memory_used_ += bytes;
  if (memory_used_ > peak_memory_) peak_memory_ = memory_used_;
  if (limits_.max_memory_bytes != 0 &&
      memory_used_ > limits_.max_memory_bytes) {
    Trip(TripKind::kMemory, point);
  }
}

void ResourceGovernor::Release(size_t bytes) {
  memory_used_ -= bytes < memory_used_ ? bytes : memory_used_;
}

bool ResourceGovernor::ClearDegradableTrip() {
  if (!DegradableTrip()) return false;
  trip_kind_.store(TripKind::kNone, std::memory_order_relaxed);
  trip_point_ = GovernPoint::kOther;
  pending_steps_ = 0;
  return true;
}

int64_t ResourceGovernor::elapsed_ms() const {
  return (obs::NowMicros() - armed_at_us_) / 1000;
}

Status ResourceGovernor::ToStatus() const {
  TripKind kind = trip_kind();
  std::string where = GovernPointName(trip_point_);
  switch (kind) {
    case TripKind::kNone:
      return Status::OK();
    case TripKind::kDeadline:
      return Status::DeadlineExceeded("query deadline (" +
                                      std::to_string(limits_.timeout_ms) +
                                      " ms) exceeded in " + where);
    case TripKind::kCancelled:
      return Status::Cancelled("query cancelled in " + where);
    case TripKind::kSteps:
      return Status::ResourceExhausted(
          "step budget (" + std::to_string(limits_.max_steps) +
          ") exhausted in " + where);
    case TripKind::kMemory:
      return Status::ResourceExhausted(
          "memory budget (" + std::to_string(limits_.max_memory_bytes) +
          " bytes) exhausted in " + where);
  }
  return Status::Internal("unknown trip kind");
}

}  // namespace graphql
