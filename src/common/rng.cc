#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace graphql {

namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double alpha) {
  assert(n > 0);
  pmf_.resize(n);
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    pmf_[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    total += pmf_[i];
  }
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    pmf_[i] /= total;
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t x) const {
  assert(x < pmf_.size());
  return pmf_[x];
}

}  // namespace graphql
