#ifndef GRAPHQL_COMMON_STRINGS_H_
#define GRAPHQL_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace graphql {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on `sep` (single character); keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Escapes backslashes and double quotes for embedding in a string literal.
std::string EscapeStringLiteral(std::string_view s);

}  // namespace graphql

#endif  // GRAPHQL_COMMON_STRINGS_H_
