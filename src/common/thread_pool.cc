#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "obs/clock.h"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace graphql {

int64_t CurrentOsThreadId() {
  static thread_local const int64_t kTid = [] {
#if defined(__linux__)
    return static_cast<int64_t>(syscall(SYS_gettid));
#else
    return static_cast<int64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
#endif
  }();
  return kTid;
}

void MergeWorkerLanes(std::vector<ThreadPool::WorkerLane>* into,
                      const std::vector<ThreadPool::WorkerLane>& from) {
  for (const ThreadPool::WorkerLane& lane : from) {
    ThreadPool::WorkerLane* slot = nullptr;
    for (ThreadPool::WorkerLane& existing : *into) {
      if (existing.os_tid == lane.os_tid) {
        slot = &existing;
        break;
      }
    }
    if (slot == nullptr) {
      into->push_back(lane);
      continue;
    }
    slot->start_us = std::min(slot->start_us, lane.start_us);
    slot->end_us = std::max(slot->end_us, lane.end_us);
    slot->tasks += lane.tasks;
    slot->stolen += lane.stolen;
  }
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 0) num_threads = 0;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_work_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  // Leaked: pool threads must outlive any static destructor that could
  // still submit work. Sized so caller + background threads == hardware,
  // but never below one background thread (a 1-core box still needs real
  // concurrency for correctness/TSan testing), and grown to honor an
  // explicit $GQL_THREADS ask that exceeds the hardware (deliberate
  // oversubscription; ResolveWorkers clamps to this pool's capacity).
  static ThreadPool* const kPool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    int background = hw > 1 ? static_cast<int>(hw) - 1 : 1;
    int asked = DefaultNumThreads() - 1;
    return new ThreadPool(std::max(background, asked));
  }();
  return *kPool;
}

ThreadPool::RunStats ThreadPool::ParallelFor(
    size_t n, int max_workers, const std::function<void(size_t, int)>& fn) {
  RunStats stats;
  stats.tasks = n;
  if (n == 0) return stats;
  int workers = std::clamp(max_workers, 1, this->max_workers());
  // No point waking more workers than there are items.
  workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(workers), n));
  stats.workers = workers;

  if (workers == 1) {  // Inline: no queues, no wakeups.
    WorkerLane lane;
    lane.os_tid = CurrentOsThreadId();
    lane.start_us = obs::NowMicros();
    for (size_t i = 0; i < n; ++i) fn(i, 0);
    lane.end_us = obs::NowMicros();
    lane.tasks = n;
    stats.lanes.push_back(lane);
    return stats;
  }

  // One job at a time per pool keeps worker ids dense for shard indexing.
  MutexLock submit(&submit_mu_);

  Job job;
  job.fn = &fn;
  job.workers = workers;
  job.remaining.store(n, std::memory_order_relaxed);
  job.queues.resize(static_cast<size_t>(workers));
  job.queue_mu.reset(new Mutex[workers]);
  job.lanes.resize(static_cast<size_t>(workers));
  // Deal contiguous blocks: worker w starts on its own slice, thieves
  // steal whole items from the top (oldest) end of a victim's block.
  size_t base = n / static_cast<size_t>(workers);
  size_t extra = n % static_cast<size_t>(workers);
  size_t next = 0;
  for (int w = 0; w < workers; ++w) {
    size_t take = base + (static_cast<size_t>(w) < extra ? 1 : 0);
    for (size_t i = 0; i < take; ++i) job.queues[w].push_back(next++);
  }

  {
    MutexLock lock(&mu_);
    job_ = &job;
    ++generation_;
  }
  cv_work_.NotifyAll();

  RunWorker(&job, /*w=*/0);  // The caller is always worker 0.

  {
    MutexLock lock(&mu_);
    cv_done_.Wait(mu_, [&] {
      mu_.AssertHeld();
      return job.remaining.load(std::memory_order_acquire) == 0 &&
             active_ == 0;
    });
    job_ = nullptr;
  }
  stats.stolen = job.stolen.load(std::memory_order_relaxed);
  // The cv_done_ wait above synchronizes with every participant's exit
  // from RunWorker, so the per-slot lane writes are visible here. Workers
  // that never claimed a slot (the job finished first) stay zeroed.
  for (const WorkerLane& lane : job.lanes) {
    if (lane.os_tid != 0) stats.lanes.push_back(lane);
  }
  return stats;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    int id = 0;
    {
      MutexLock lock(&mu_);
      cv_work_.Wait(mu_, [&] {
        mu_.AssertHeld();
        return stop_ || (job_ != nullptr && generation_ != seen);
      });
      if (stop_) return;
      seen = generation_;
      job = job_;
      id = job->claimed.fetch_add(1, std::memory_order_relaxed);
      if (id >= job->workers) continue;  // Job already fully staffed.
      ++active_;
    }
    RunWorker(job, id);
    {
      MutexLock lock(&mu_);
      --active_;
    }
    cv_done_.NotifyAll();
  }
}

void ThreadPool::RunWorker(Job* job, int w) {
  WorkerLane& lane = job->lanes[static_cast<size_t>(w)];
  lane.os_tid = CurrentOsThreadId();
  lane.start_us = obs::NowMicros();
  for (;;) {
    size_t item = 0;
    bool was_steal = false;
    if (!NextTask(job, w, &item, &was_steal)) break;
    if (was_steal) {
      job->stolen.fetch_add(1, std::memory_order_relaxed);
      ++lane.stolen;
    }
    ++lane.tasks;
    (*job->fn)(item, w);
    if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last item: wake the caller (it may be asleep in ParallelFor).
      MutexLock lock(&mu_);
      cv_done_.NotifyAll();
    }
  }
  lane.end_us = obs::NowMicros();
}

bool ThreadPool::NextTask(Job* job, int w, size_t* item, bool* was_steal) {
  {  // Own deque: pop the bottom (most recently dealt / LIFO).
    MutexLock lock(&job->queue_mu[w]);
    std::deque<size_t>& q = job->queues[w];
    if (!q.empty()) {
      *item = q.back();
      q.pop_back();
      *was_steal = false;
      return true;
    }
  }
  // Steal scan: take the top (oldest) of the first non-empty victim,
  // starting just after ourselves so thieves spread across victims.
  for (int step = 1; step < job->workers; ++step) {
    int victim = (w + step) % job->workers;
    MutexLock lock(&job->queue_mu[victim]);
    std::deque<size_t>& q = job->queues[victim];
    if (!q.empty()) {
      *item = q.front();
      q.pop_front();
      *was_steal = true;
      return true;
    }
  }
  return false;
}

int DefaultNumThreads() {
  static const int kDefault = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) read-only env lookup; no setenv anywhere
    const char* v = std::getenv("GQL_THREADS");
    if (v == nullptr || *v == '\0') return 0;
    char* end = nullptr;
    long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || n < 0) return 0;
    return static_cast<int>(std::min<long>(n, 1024));
  }();
  return kDefault;
}

int ResolveWorkers(int num_threads, const ThreadPool* pool) {
  if (num_threads < 1) return 0;
  int cap = pool != nullptr ? pool->max_workers()
                            : ThreadPool::Shared().max_workers();
  return std::min(num_threads, cap);
}

}  // namespace graphql
