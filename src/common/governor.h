#ifndef GRAPHQL_COMMON_GOVERNOR_H_
#define GRAPHQL_COMMON_GOVERNOR_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace graphql {

/// Why a governed query was stopped.
enum class TripKind {
  kNone = 0,
  kDeadline,   ///< Wall-clock deadline passed.
  kCancelled,  ///< Cancel() was called (another thread / signal handler).
  kSteps,      ///< The unified step budget ran out.
  kMemory,     ///< The approximate memory budget ran out.
};
const char* TripKindName(TripKind kind);

/// Where in the engine a governor check fired. Used both for reporting
/// ("what tripped") and as the FaultInjector's addressing scheme.
enum class GovernPoint {
  kSearch = 0,    ///< Matcher DFS (Algorithm 4.1 search).
  kRefine,        ///< Global refinement (Algorithm 4.2).
  kRetrieve,      ///< Feasible-mate retrieval.
  kNeighborhood,  ///< Neighborhood sub-isomorphism tests.
  kDatalog,       ///< Datalog fixpoint evaluation.
  kGindex,        ///< Collection-index filter+verify.
  kEval,          ///< FLWR evaluator (statements, instantiation).
  // Server-side points (src/server/). These never fire from the engine's
  // governor checks; the query server charges them directly against the
  // fault injector to make connection/commit failures deterministic.
  kAccept,        ///< gqld accept loop: the N-th accepted connection fails.
  kFrameRead,     ///< Wire framing: the N-th request frame read fails.
  kCommit,        ///< GraphStore commit: the N-th commit aborts.
  kWalAppend,     ///< Durable store: the N-th WAL append tears mid-record.
  kCheckpoint,    ///< Durable store: the N-th checkpoint aborts mid-write.
  kOther,
};
inline constexpr int kNumGovernPoints = static_cast<int>(GovernPoint::kOther) + 1;
const char* GovernPointName(GovernPoint point);

/// Per-query resource limits. The uniform convention across the engine is
/// 0 = unlimited (this replaced the old mix where matcher max_steps used 0
/// for "disabled" but neighborhood_step_budget used a nonzero default).
struct GovernorLimits {
  /// Wall-clock deadline, measured from Arm().
  int64_t timeout_ms = 0;
  /// Unified step budget covering search steps, refinement pair checks,
  /// retrieval probes, neighborhood DFS steps, and datalog unifications.
  uint64_t max_steps = 0;
  /// Approximate budget for the big transient structures (candidate sets,
  /// refinement pair maps, neighborhood subgraphs, match vectors). Soft:
  /// accounting may overshoot by one allocation before the trip is seen.
  uint64_t max_memory_bytes = 0;

  bool Unlimited() const {
    return timeout_ms == 0 && max_steps == 0 && max_memory_bytes == 0;
  }
};

/// Deterministic fault injection for governor trip points. A spec is a
/// comma-separated list of `point@N[:kind]` rules: the N-th charge against
/// that point trips with the given kind (default `steps`), e.g.
///   GQL_FAULT=refine@3            third refine charge trips the budget
///   GQL_FAULT=search@1:deadline   first search charge trips the deadline
/// Points: search, refine, retrieve, neighborhood, datalog, gindex, eval,
/// plus the server-side points accept, frame_read, and commit:
///   GQL_FAULT=accept@3            gqld drops the third accepted connection
///   GQL_FAULT=frame_read@5        the fifth request frame reads as corrupt
///   GQL_FAULT=commit@2            the second GraphStore commit aborts
///                                 (kResourceExhausted; nothing published)
///   GQL_FAULT=wal_append@4        the fourth WAL append tears mid-record
///                                 (a half-written record reaches disk)
///   GQL_FAULT=checkpoint@2        the second checkpoint aborts after its
///                                 files are written but before MANIFEST
/// Server points are charged by src/server/ code, not by governor checks;
/// the injected kind maps onto the failure (cancel → connection torn down,
/// anything else → a structured error response). Kinds: steps, deadline,
/// cancel, memory.
///
/// OnCharge() is thread-safe (the server charges accept/frame_read/commit
/// from different threads than the evaluating sessions); counts are
/// per-point atomics.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector& other) { *this = other; }
  FaultInjector& operator=(const FaultInjector& other) {
    if (this != &other) {
      rules_ = other.rules_;
      for (int i = 0; i < kNumGovernPoints; ++i) {
        counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      }
    }
    return *this;
  }

  /// Parses a spec; kInvalidArgument on malformed input.
  static Result<FaultInjector> Parse(std::string_view spec);

  /// Process-wide injector built from $GQL_FAULT at first use; null when
  /// the variable is unset/empty/invalid. Intended for end-to-end tests of
  /// shipped binaries; unit tests construct injectors directly.
  static FaultInjector* FromEnv();

  /// Adds one rule programmatically (tests).
  void AddRule(GovernPoint point, uint64_t at, TripKind kind);

  /// Counts a charge against `point`; returns the kind to inject when a
  /// rule matches this exact count, kNone otherwise. Thread-safe.
  TripKind OnCharge(GovernPoint point);

  bool empty() const { return rules_.empty(); }

 private:
  struct Rule {
    GovernPoint point;
    uint64_t at;
    TripKind kind;
  };
  std::vector<Rule> rules_;
  std::array<std::atomic<uint64_t>, kNumGovernPoints> counts_{};
};

/// Per-query resource governor: a wall-clock deadline, a cooperative
/// cancellation token, a unified step budget, and approximate memory
/// accounting. One governor belongs to one evaluating thread; Cancel() is
/// the only member callable from arbitrary other threads (or a signal
/// handler — it is a single relaxed atomic store). Parallel pipeline
/// stages additionally charge from their workers through the mutex-backed
/// ChargeBatch()/ReserveShared() (see GovernorShard below); the protocol
/// is that while workers are active the owning thread participates as a
/// worker itself, so the unsynchronized fast paths never race them.
///
/// The hot-path check is Charge(): a couple of integer additions and
/// compares, with the clock read (and fault-injector lookup) amortized to
/// once every kCheckIntervalSteps charged steps. A tripped governor stays
/// tripped ("sticky") so every layer above the trip site unwinds without
/// extra plumbing; callers degrade by returning the partial work done so
/// far. Step and memory trips at degradable sites may be rolled back via
/// RefundSteps()/ClearDegradableTrip() (the refinement fallback); deadline
/// and cancellation trips are permanent.
class ResourceGovernor {
 public:
  /// Clock reads are amortized to one per this many charged steps.
  static constexpr uint64_t kCheckIntervalSteps = 1024;

  /// Unlimited governor with the process-wide env fault injector.
  ResourceGovernor();
  explicit ResourceGovernor(const GovernorLimits& limits);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Re-arms for a new query: installs the limits, clears all consumption
  /// counters, trip state, and degradation notes, and starts the deadline
  /// clock. A pending Cancel() issued before Arm() is discarded.
  void Arm(const GovernorLimits& limits);

  /// Requests cooperative cancellation. Thread- and signal-safe.
  void Cancel() { cancel_requested_.store(true, std::memory_order_relaxed); }

  /// Overrides the fault injector (null disables). Not reset by Arm().
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// True when any limit (or a fault injector) is set — callers use this
  /// to skip degradation bookkeeping (e.g. the pre-refinement candidate
  /// snapshot) on ungoverned queries.
  bool HasLimits() const { return !limits_.Unlimited() || injector_ != nullptr; }

  const GovernorLimits& limits() const { return limits_; }

  /// Charges `steps` units of work at `point`. Returns true to continue,
  /// false when the governor is (or just became) tripped. Eval thread only.
  bool Charge(uint64_t steps, GovernPoint point) {
    if (trip_kind_.load(std::memory_order_relaxed) != TripKind::kNone) {
      return false;
    }
    steps_used_ += steps;
    if (limits_.max_steps != 0 && steps_used_ > limits_.max_steps) {
      Trip(TripKind::kSteps, point);
      return false;
    }
    pending_steps_ += steps;
    if (pending_steps_ >= kCheckIntervalSteps) return SlowCheck(point);
    return true;
  }

  /// Forces the slow-path check (deadline, cancellation, fault injection)
  /// regardless of the amortization counter. Returns true to continue.
  bool CheckNow(GovernPoint point);

  /// Thread-safe batched charge for parallel pipeline workers: takes an
  /// internal mutex, adds the whole batch to the step budget, and always
  /// runs the slow-path check (a batch stands for ~kCheckIntervalSteps
  /// charges, matching the serial amortization cadence). Workers accumulate
  /// steps in a GovernorShard and flush through here, so contention is one
  /// lock per ~1024 steps per worker. Must not race the single-threaded
  /// Charge(): during a parallel stage every participant (including the
  /// coordinating thread) charges through shards.
  bool ChargeBatch(uint64_t steps, GovernPoint point) GQL_EXCLUDES(shared_mu_);

  /// Thread-safe Reserve(), for allocations made on worker threads.
  void ReserveShared(size_t bytes, GovernPoint point) GQL_EXCLUDES(shared_mu_);

  /// Approximate memory accounting for big transient structures. Soft:
  /// Reserve() always records the bytes; exceeding the budget trips the
  /// governor rather than failing the allocation, and the amortized
  /// Charge() checks unwind cooperatively.
  void Reserve(size_t bytes, GovernPoint point);
  void Release(size_t bytes);

  bool tripped() const {
    return trip_kind_.load(std::memory_order_relaxed) != TripKind::kNone;
  }
  TripKind trip_kind() const {
    return trip_kind_.load(std::memory_order_relaxed);
  }
  GovernPoint trip_point() const { return trip_point_; }

  /// True for step/memory trips, which a degradable stage may absorb.
  bool DegradableTrip() const {
    TripKind k = trip_kind();
    return k == TripKind::kSteps || k == TripKind::kMemory;
  }

  /// Rolls back a step/memory trip after a stage degraded (e.g. refinement
  /// fell back to unrefined candidates): clears the trip so later stages
  /// keep running. Returns false (and clears nothing) for deadline or
  /// cancellation trips. Injected faults of degradable kinds clear too.
  bool ClearDegradableTrip();

  /// Returns `n` charged steps to the budget (used with ClearDegradableTrip
  /// to refund the work of a stage whose results were discarded).
  void RefundSteps(uint64_t n) { steps_used_ -= n < steps_used_ ? n : steps_used_; }

  /// Records a human-readable degradation event ("refine: fell back ...");
  /// collected into the query's LimitReport.
  void NoteDegradation(std::string note) {
    degradations_.push_back(std::move(note));
  }
  const std::vector<std::string>& degradations() const { return degradations_; }

  uint64_t steps_used() const { return steps_used_; }
  size_t memory_used() const { return memory_used_; }
  size_t peak_memory() const { return peak_memory_; }
  int64_t elapsed_ms() const;

  /// OK when not tripped; otherwise the mapped status:
  /// deadline → kDeadlineExceeded, cancel → kCancelled,
  /// steps/memory → kResourceExhausted.
  Status ToStatus() const;

 private:
  void Trip(TripKind kind, GovernPoint point);
  bool SlowCheck(GovernPoint point);

  GovernorLimits limits_;
  FaultInjector* injector_ = nullptr;
  int64_t armed_at_us_ = 0;
  int64_t deadline_us_ = 0;  ///< 0 = none.

  uint64_t steps_used_ = 0;
  uint64_t pending_steps_ = 0;  ///< Steps since the last slow check.
  size_t memory_used_ = 0;
  size_t peak_memory_ = 0;

  std::atomic<bool> cancel_requested_{false};
  std::atomic<TripKind> trip_kind_{TripKind::kNone};
  GovernPoint trip_point_ = GovernPoint::kOther;
  std::vector<std::string> degradations_;
  /// Serializes ChargeBatch()/ReserveShared() against each other. The
  /// single-threaded fast paths never take it, so the consumption counters
  /// above cannot be GQL_GUARDED_BY it — their safety contract is the
  /// stage protocol (while workers are active, every participant charges
  /// through shards; the unsynchronized fast paths run only between
  /// parallel stages), asserted by the TSan lane rather than the compiler.
  Mutex shared_mu_;
};

/// Per-worker charge accumulator for parallel pipeline stages. Each worker
/// owns one shard: steps count locally (a register increment) and flush to
/// the governor through the thread-safe ChargeBatch() every
/// kCheckIntervalSteps, so the budget/deadline/cancel checks keep the
/// serial path's amortization while workers stay contention-free between
/// flushes. A trip is observed by every shard within one batch: Charge()
/// polls the governor's sticky atomic trip flag on each call.
///
/// A null governor makes every operation a no-op that reports "continue";
/// parallel code can therefore run ungoverned without branching.
class GovernorShard {
 public:
  GovernorShard() = default;
  GovernorShard(ResourceGovernor* gov, GovernPoint point)
      : gov_(gov), point_(point) {}
  GovernorShard(const GovernorShard&) = delete;
  GovernorShard& operator=(const GovernorShard&) = delete;
  GovernorShard(GovernorShard&&) = default;
  GovernorShard& operator=(GovernorShard&&) = default;

  /// Charges `steps`; returns false once the governor has tripped (either
  /// from this shard's flush or any other thread). Callers must Flush()
  /// when their task batch ends so partially accumulated steps reach the
  /// budget.
  bool Charge(uint64_t steps = 1) {
    if (gov_ == nullptr) return true;
    pending_ += steps;
    if (pending_ >= ResourceGovernor::kCheckIntervalSteps) return Flush();
    return !gov_->tripped();
  }

  /// Flushes accumulated steps to the governor; returns false on a trip.
  bool Flush() {
    if (gov_ == nullptr) return true;
    if (pending_ == 0) return !gov_->tripped();
    uint64_t n = pending_;
    pending_ = 0;
    charged_ += n;
    return gov_->ChargeBatch(n, point_);
  }

  /// True while the governor (if any) has not tripped.
  bool ok() const { return gov_ == nullptr || !gov_->tripped(); }

  /// Thread-safe memory accounting against the shared budget.
  void Reserve(size_t bytes) {
    if (gov_ != nullptr && bytes > 0) gov_->ReserveShared(bytes, point_);
  }

  /// Steps this shard has flushed into the governor (for refunds).
  uint64_t charged() const { return charged_; }

 private:
  ResourceGovernor* gov_ = nullptr;
  GovernPoint point_ = GovernPoint::kOther;
  uint64_t pending_ = 0;
  uint64_t charged_ = 0;
};

/// Null-safe charge helpers: an ungoverned call site passes a null
/// governor and pays a single pointer compare.
inline bool GovCharge(ResourceGovernor* gov, uint64_t steps,
                      GovernPoint point) {
  return gov == nullptr || gov->Charge(steps, point);
}
inline bool GovOk(const ResourceGovernor* gov) {
  return gov == nullptr || !gov->tripped();
}

/// RAII reservation against a governor's memory budget; Grow() extends it
/// as the underlying structure grows. Null governor → no-op.
class ScopedReserve {
 public:
  ScopedReserve(ResourceGovernor* gov, size_t bytes, GovernPoint point)
      : gov_(gov), bytes_(bytes), point_(point) {
    if (gov_ != nullptr && bytes_ > 0) gov_->Reserve(bytes_, point_);
  }
  ~ScopedReserve() {
    if (gov_ != nullptr && bytes_ > 0) gov_->Release(bytes_);
  }
  ScopedReserve(const ScopedReserve&) = delete;
  ScopedReserve& operator=(const ScopedReserve&) = delete;

  void Grow(size_t more) {
    if (gov_ != nullptr && more > 0) {
      gov_->Reserve(more, point_);
      bytes_ += more;
    }
  }

 private:
  ResourceGovernor* gov_;
  size_t bytes_;
  GovernPoint point_;
};

/// Accounting allocator shim: a std::allocator that charges every
/// allocation to a governor's memory budget (soft — it never fails an
/// allocation itself; the budget trip is observed by the amortized
/// Charge() checks). Containers using it must outlive neither the
/// governor nor their own deallocation calls, which Release the bytes.
template <typename T>
class GovernedAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  GovernedAllocator() = default;
  explicit GovernedAllocator(ResourceGovernor* gov,
                             GovernPoint point = GovernPoint::kOther)
      : gov_(gov), point_(point) {}
  template <typename U>
  GovernedAllocator(const GovernedAllocator<U>& other)
      : gov_(other.gov_), point_(other.point_) {}

  T* allocate(size_t n) {
    if (gov_ != nullptr) gov_->Reserve(n * sizeof(T), point_);
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) {
    if (gov_ != nullptr) gov_->Release(n * sizeof(T));
    ::operator delete(p);
  }

  bool operator==(const GovernedAllocator& other) const {
    return gov_ == other.gov_;
  }
  bool operator!=(const GovernedAllocator& other) const {
    return !(*this == other);
  }

  ResourceGovernor* gov_ = nullptr;
  GovernPoint point_ = GovernPoint::kOther;
};

}  // namespace graphql

#endif  // GRAPHQL_COMMON_GOVERNOR_H_
