#ifndef GRAPHQL_COMMON_THREAD_ANNOTATIONS_H_
#define GRAPHQL_COMMON_THREAD_ANNOTATIONS_H_

// Compile-time concurrency contracts: Clang Thread Safety Analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) turned into a
// first-class static-analysis pass over the engine.
//
// Every mutex in the codebase is one of the capability-annotated wrappers
// below (Mutex, SharedMutex, CondVar) and every guarded structure declares
// its guard with GQL_GUARDED_BY — so lock-discipline bugs ("touched
// records_ without mu_", "called FoldShapeLocked without holding mu_",
// "forgot to unlock on the early return") are *compile errors* under
// clang, not interleavings TSan may or may not sample. The CI lane
// `thread-safety` builds the whole tree with -Werror=thread-safety; under
// GCC (and any compiler without the attributes) every macro expands to
// nothing and the wrappers are zero-overhead shims over the std
// primitives — tests/common_thread_annotations_test.cc proves that no-op
// path behaves identically.
//
// tools/invariant_lint.py's `naked-mutex` rule closes the loop: raw
// std::mutex / std::lock_guard / std::condition_variable outside this
// header is a lint error, so nothing can bypass the analysis.
//
// The lock hierarchy itself (which of these capabilities may be held
// while acquiring which) is documented in DESIGN.md section 6i.

#include <condition_variable>
#include <chrono>
#include <mutex>
#include <shared_mutex>

// Capability attributes are a Clang extension; GCC defines __GNUC__ but
// not __clang__ and silently has no thread_safety analysis, so the macros
// vanish there.
#if defined(__clang__) && defined(__has_attribute)
#define GQL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GQL_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define GQL_CAPABILITY(x) GQL_THREAD_ANNOTATION(capability(x))
/// RAII types that acquire on construction and release on destruction.
#define GQL_SCOPED_CAPABILITY GQL_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding the given capability.
#define GQL_GUARDED_BY(x) GQL_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field: the *pointee* is guarded by the given capability.
#define GQL_PT_GUARDED_BY(x) GQL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held (exclusively / shared) on entry.
#define GQL_REQUIRES(...) \
  GQL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GQL_REQUIRES_SHARED(...) \
  GQL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define GQL_ACQUIRE(...) \
  GQL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GQL_ACQUIRE_SHARED(...) \
  GQL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive / shared / either).
#define GQL_RELEASE(...) \
  GQL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GQL_RELEASE_SHARED(...) \
  GQL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define GQL_RELEASE_GENERIC(...) \
  GQL_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function returns true when it acquired the capability.
#define GQL_TRY_ACQUIRE(...) \
  GQL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard;
/// documents "takes this lock internally").
#define GQL_EXCLUDES(...) GQL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion hook: tells the analysis the capability is held from
/// here on (used inside predicate lambdas the REQUIRES annotation of the
/// enclosing wait cannot reach).
#define GQL_ASSERT_CAPABILITY(x) \
  GQL_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define GQL_RETURN_CAPABILITY(x) GQL_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch. Every use must carry a comment justifying why the
/// analysis cannot see the invariant (and what enforces it instead).
#define GQL_NO_THREAD_SAFETY_ANALYSIS \
  GQL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace graphql {

class CondVar;

/// Capability-annotated exclusive mutex. The only mutex type engine code
/// may declare (invariant_lint `naked-mutex`); zero overhead over
/// std::mutex — the wrapper exists so the capability attributes have a
/// type to hang off.
class GQL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GQL_ACQUIRE() { mu_.lock(); }
  void Unlock() GQL_RELEASE() { mu_.unlock(); }
  bool TryLock() GQL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op at runtime; tells the analysis this thread holds the mutex.
  /// For wait-predicate lambdas and callees whose callers' REQUIRES the
  /// analysis cannot propagate.
  void AssertHeld() const GQL_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Capability-annotated reader/writer mutex (SymbolTable's sharded
/// interning is the canonical user: writer lock on first sight of a
/// string, reader locks everywhere else).
class GQL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() GQL_ACQUIRE() { mu_.lock(); }
  void Unlock() GQL_RELEASE() { mu_.unlock(); }
  /// const so a reader lock composes with const accessors (the underlying
  /// std::shared_mutex is mutable).
  void LockShared() const GQL_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() const GQL_RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const GQL_ASSERT_CAPABILITY(this) {}

 private:
  mutable std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (the std::lock_guard replacement).
class GQL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) GQL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() GQL_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive lock over SharedMutex (std::unique_lock replacement).
class GQL_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) GQL_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() GQL_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared lock over SharedMutex (std::shared_lock replacement).
class GQL_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(const SharedMutex* mu) GQL_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() GQL_RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  const SharedMutex* const mu_;
};

/// Condition variable paired with Mutex. Wait() takes the annotated mutex
/// the caller already holds (GQL_REQUIRES), so waiting code stays inside
/// one MutexLock scope and the analysis sees the lock held across the
/// wait — the std::unique_lock juggling lives in here, adopt/release, and
/// never escapes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Atomically releases `mu`, waits, and re-acquires before returning.
  void Wait(Mutex& mu) GQL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // Still locked: ownership returns to the caller's scope.
  }

  /// Waits until pred() holds. The predicate runs with `mu` held; inside
  /// the lambda call mu.AssertHeld() before touching guarded fields (the
  /// REQUIRES here does not propagate into the lambda's own analysis).
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) GQL_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Waits until pred() holds or `ms` elapsed; returns pred()'s final
  /// verdict (the std::condition_variable::wait_for contract).
  template <typename Pred>
  bool WaitForMs(Mutex& mu, int64_t ms, Pred pred) GQL_REQUIRES(mu) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (!pred()) {
      std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
      std::cv_status st = cv_.wait_until(lk, deadline);
      lk.release();
      if (st == std::cv_status::timeout) return pred();
    }
    return true;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace graphql

#endif  // GRAPHQL_COMMON_THREAD_ANNOTATIONS_H_
