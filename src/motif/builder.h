#ifndef GRAPHQL_MOTIF_BUILDER_H_
#define GRAPHQL_MOTIF_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "lang/ast.h"

namespace graphql::motif {

/// Name-to-declaration registry used to resolve `graph G1 as X;` member
/// references and recursive motifs (Section 2). Populated from the
/// `graph ... ;` statements of a parsed program.
class MotifRegistry {
 public:
  /// Registers a declaration under its own name; unnamed declarations are
  /// rejected. Re-registering a name overwrites it.
  Status Register(const lang::GraphDecl& decl);

  /// Registers every named graph declaration of a program.
  Status RegisterProgram(const lang::Program& program);

  const lang::GraphDecl* Find(const std::string& name) const;

 private:
  std::unordered_map<std::string, lang::GraphDecl> decls_;
};

/// One concrete graph derived from a motif, together with the scope table
/// mapping every dotted name visible at the motif's top level (e.g. "v1",
/// "X.v1", exported aliases) to a node id.
struct BuiltGraph {
  Graph graph;
  std::unordered_map<std::string, NodeId> node_names;
  std::unordered_map<std::string, EdgeId> edge_names;
  /// Per-node / per-edge `where` clauses from the declaration (indexed by
  /// node/edge id; unification concatenates the clauses of merged nodes).
  /// Consumed by algebra::GraphPattern; empty for plain data graphs.
  std::vector<std::vector<lang::ExprPtr>> node_wheres;
  std::vector<std::vector<lang::ExprPtr>> edge_wheres;
};

struct BuildOptions {
  /// Maximum number of recursive motif expansions along any derivation
  /// (Section 2.3 repetition). Non-recursive motifs are unaffected.
  size_t max_depth = 8;
  /// Upper bound on the number of derived graphs (disjunction and
  /// repetition multiply alternatives); exceeding it is a LimitExceeded.
  size_t max_graphs = 4096;
  /// When true, tuple literals on nodes/edges/graphs are evaluated (they
  /// must be constant) and stored as attributes. Patterns and data graphs
  /// both want this; graph templates evaluate tuples themselves instead.
  bool tuples_as_attributes = true;
};

/// Compiles a `graph { ... }` declaration into the set of concrete graphs
/// it derives (Section 2: the language of a graph grammar).
///
/// - Concatenation by edges and by unification (Figure 4.4) is resolved
///   with a union-find over provisional nodes; after unification, parallel
///   edges with identical endpoints are merged and their attributes
///   combined ("two edges are unified automatically if their respective end
///   nodes are unified").
/// - Disjunction (Figure 4.5) forks the derivation per alternative.
/// - Repetition (Figure 4.6) expands recursive references up to
///   BuildOptions::max_depth; base-case alternatives terminate derivations.
/// - `export Nested.v as v` re-binds a nested node in the current scope.
///
/// `where` clauses are ignored here: predicates belong to the pattern layer
/// (algebra::GraphPattern), which compiles them from the same AST.
class MotifBuilder {
 public:
  MotifBuilder(const MotifRegistry* registry, BuildOptions options)
      : registry_(registry), options_(options) {}

  /// Derives every concrete graph of the motif, in a deterministic order
  /// (alternatives explored in source order, shallower derivations first
  /// within a member).
  Result<std::vector<BuiltGraph>> Build(const lang::GraphDecl& decl) const;

  /// Derives the motif and requires exactly one result (the common case for
  /// non-recursive, disjunction-free motifs).
  Result<BuiltGraph> BuildSingle(const lang::GraphDecl& decl) const;

 private:
  struct State;  // Provisional graph under construction.

  Result<std::vector<State>> ExpandBody(
      const lang::GraphBody& body, std::vector<State> states,
      const std::string& prefix, std::vector<std::string>* expansion_stack,
      size_t depth_used) const;

  Result<std::vector<State>> ExpandMember(
      const lang::MemberDecl& member, std::vector<State> states,
      const std::string& prefix, std::vector<std::string>* expansion_stack,
      size_t depth_used) const;

  Result<BuiltGraph> Finish(const State& state,
                            const lang::GraphDecl& decl) const;

  const MotifRegistry* registry_;
  BuildOptions options_;
};

/// Evaluates a constant expression (literals and arithmetic only; names are
/// rejected). Used for tuple values in patterns and data graphs.
Result<Value> EvalConstExpr(const lang::Expr& expr);

/// Evaluates a constant TupleLit into an attribute tuple.
Result<AttrTuple> EvalConstTuple(const lang::TupleLit& tuple);

}  // namespace graphql::motif

#endif  // GRAPHQL_MOTIF_BUILDER_H_
