#include "motif/builder.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace graphql::motif {

using lang::GraphBody;
using lang::GraphDecl;
using lang::MemberDecl;

// Cap on nested graph-reference expansions (native-stack protection).
constexpr size_t kMaxExpansionNesting = 200;

Status MotifRegistry::Register(const GraphDecl& decl) {
  if (decl.name.empty()) {
    return Status::InvalidArgument(
        "cannot register an anonymous graph declaration");
  }
  decls_[decl.name] = decl;
  return Status::OK();
}

Status MotifRegistry::RegisterProgram(const lang::Program& program) {
  for (const lang::Statement& stmt : program.statements) {
    if (stmt.kind == lang::Statement::Kind::kGraphDecl) {
      GQL_RETURN_IF_ERROR(Register(stmt.graph));
    }
  }
  return Status::OK();
}

const GraphDecl* MotifRegistry::Find(const std::string& name) const {
  auto it = decls_.find(name);
  return it == decls_.end() ? nullptr : &it->second;
}

Result<Value> EvalConstExpr(const lang::Expr& expr) {
  switch (expr.kind) {
    case lang::Expr::Kind::kLiteral:
      return expr.literal;
    case lang::Expr::Kind::kName:
      return Status::InvalidArgument(
          "name '" + Join(expr.path, ".") +
          "' is not allowed in a constant tuple value (names are only "
          "meaningful inside graph templates)");
    case lang::Expr::Kind::kBinary: {
      GQL_ASSIGN_OR_RETURN(Value lhs, EvalConstExpr(*expr.lhs));
      GQL_ASSIGN_OR_RETURN(Value rhs, EvalConstExpr(*expr.rhs));
      switch (expr.op) {
        case lang::BinaryOp::kAdd:
          return Value::Add(lhs, rhs);
        case lang::BinaryOp::kSub:
          return Value::Sub(lhs, rhs);
        case lang::BinaryOp::kMul:
          return Value::Mul(lhs, rhs);
        case lang::BinaryOp::kDiv:
          return Value::Div(lhs, rhs);
        case lang::BinaryOp::kEq:
          return Value(lhs == rhs);
        case lang::BinaryOp::kNe:
          return Value(lhs != rhs);
        case lang::BinaryOp::kLt: {
          GQL_ASSIGN_OR_RETURN(bool b, Value::Less(lhs, rhs));
          return Value(b);
        }
        case lang::BinaryOp::kLe: {
          GQL_ASSIGN_OR_RETURN(bool b, Value::LessEq(lhs, rhs));
          return Value(b);
        }
        case lang::BinaryOp::kGt: {
          GQL_ASSIGN_OR_RETURN(bool b, Value::Less(rhs, lhs));
          return Value(b);
        }
        case lang::BinaryOp::kGe: {
          GQL_ASSIGN_OR_RETURN(bool b, Value::LessEq(rhs, lhs));
          return Value(b);
        }
        case lang::BinaryOp::kOr:
          return Value(lhs.Truthy() || rhs.Truthy());
        case lang::BinaryOp::kAnd:
          return Value(lhs.Truthy() && rhs.Truthy());
      }
      return Status::Internal("unhandled binary operator");
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<AttrTuple> EvalConstTuple(const lang::TupleLit& tuple) {
  AttrTuple out(tuple.tag);
  for (const auto& [name, expr] : tuple.entries) {
    GQL_ASSIGN_OR_RETURN(Value v, EvalConstExpr(*expr));
    out.Set(name, std::move(v));
  }
  return out;
}

/// A provisional graph under construction: nodes/edges addressed by index
/// with a union-find over nodes so that `unify` is O(alpha) per merge.
struct MotifBuilder::State {
  struct PNode {
    std::string canonical_name;  // Dotted path where first declared.
    AttrTuple attrs;
    std::vector<lang::ExprPtr> wheres;
  };
  struct PEdge {
    std::string canonical_name;
    int src = 0;
    int dst = 0;
    AttrTuple attrs;
    std::vector<lang::ExprPtr> wheres;
  };

  std::vector<PNode> pnodes;
  std::vector<int> parent;  // Union-find forest over pnodes.
  std::vector<PEdge> pedges;
  std::unordered_map<std::string, int> node_scope;
  std::unordered_map<std::string, int> edge_scope;
  size_t depth_used = 0;
  bool any_unify = false;

  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  /// Merges b into a (the smaller root index wins, for determinism).
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent[b] = a;
    pnodes[a].attrs.MergeFrom(pnodes[b].attrs);
    for (auto& w : pnodes[b].wheres) pnodes[a].wheres.push_back(w);
    pnodes[b].wheres.clear();
    any_unify = true;
  }

  int AddPNode(std::string canonical_name, AttrTuple attrs,
               std::vector<lang::ExprPtr> wheres = {}) {
    int id = static_cast<int>(pnodes.size());
    pnodes.push_back(PNode{std::move(canonical_name), std::move(attrs),
                           std::move(wheres)});
    parent.push_back(id);
    return id;
  }
};

Result<std::vector<BuiltGraph>> MotifBuilder::Build(
    const GraphDecl& decl) const {
  std::vector<std::string> expansion_stack;
  if (!decl.name.empty()) expansion_stack.push_back(decl.name);
  std::vector<State> initial(1);
  GQL_ASSIGN_OR_RETURN(
      std::vector<State> states,
      ExpandBody(decl.body, std::move(initial), "", &expansion_stack, 0));
  std::vector<BuiltGraph> out;
  out.reserve(states.size());
  for (const State& s : states) {
    GQL_ASSIGN_OR_RETURN(BuiltGraph g, Finish(s, decl));
    out.push_back(std::move(g));
  }
  return out;
}

Result<BuiltGraph> MotifBuilder::BuildSingle(const GraphDecl& decl) const {
  GQL_ASSIGN_OR_RETURN(std::vector<BuiltGraph> all, Build(decl));
  if (all.empty()) {
    return Status::InvalidArgument("motif '" + decl.name +
                                   "' derives no graphs");
  }
  if (all.size() > 1) {
    return Status::InvalidArgument(
        "motif '" + decl.name + "' derives " + std::to_string(all.size()) +
        " graphs; expected exactly one");
  }
  return std::move(all[0]);
}

Result<std::vector<MotifBuilder::State>> MotifBuilder::ExpandBody(
    const GraphBody& body, std::vector<State> states,
    const std::string& prefix, std::vector<std::string>* expansion_stack,
    size_t depth_used) const {
  for (const MemberDecl& member : body.members) {
    GQL_ASSIGN_OR_RETURN(states, ExpandMember(member, std::move(states),
                                              prefix, expansion_stack,
                                              depth_used));
    if (states.size() > options_.max_graphs) {
      return Status::LimitExceeded(
          "motif derives more than " + std::to_string(options_.max_graphs) +
          " graphs");
    }
  }
  return states;
}

Result<std::vector<MotifBuilder::State>> MotifBuilder::ExpandMember(
    const MemberDecl& member, std::vector<State> states,
    const std::string& prefix, std::vector<std::string>* expansion_stack,
    size_t depth_used) const {
  switch (member.kind) {
    case MemberDecl::Kind::kNode: {
      AttrTuple attrs;
      if (member.node.tuple && options_.tuples_as_attributes) {
        GQL_ASSIGN_OR_RETURN(attrs, EvalConstTuple(*member.node.tuple));
      }
      for (State& s : states) {
        std::string canonical = prefix + member.node.name;
        std::vector<lang::ExprPtr> wheres;
        if (member.node.where) wheres.push_back(member.node.where);
        int id = s.AddPNode(member.node.name.empty() ? "" : canonical, attrs,
                            std::move(wheres));
        if (!member.node.name.empty()) s.node_scope[canonical] = id;
      }
      return states;
    }
    case MemberDecl::Kind::kEdge: {
      AttrTuple attrs;
      if (member.edge.tuple && options_.tuples_as_attributes) {
        GQL_ASSIGN_OR_RETURN(attrs, EvalConstTuple(*member.edge.tuple));
      }
      std::string src_name = prefix + Join(member.edge.src, ".");
      std::string dst_name = prefix + Join(member.edge.dst, ".");
      for (State& s : states) {
        auto src_it = s.node_scope.find(src_name);
        auto dst_it = s.node_scope.find(dst_name);
        if (src_it == s.node_scope.end()) {
          return Status::NotFound("edge endpoint '" + src_name +
                                  "' is not a declared node");
        }
        if (dst_it == s.node_scope.end()) {
          return Status::NotFound("edge endpoint '" + dst_name +
                                  "' is not a declared node");
        }
        std::string canonical = prefix + member.edge.name;
        int eid = static_cast<int>(s.pedges.size());
        std::vector<lang::ExprPtr> wheres;
        if (member.edge.where) wheres.push_back(member.edge.where);
        s.pedges.push_back(State::PEdge{
            member.edge.name.empty() ? "" : canonical, src_it->second,
            dst_it->second, attrs, std::move(wheres)});
        if (!member.edge.name.empty()) s.edge_scope[canonical] = eid;
      }
      return states;
    }
    case MemberDecl::Kind::kGraphRef: {
      const std::string& target = member.graph_ref.graph_name;
      const GraphDecl* nested = registry_ ? registry_->Find(target) : nullptr;
      if (nested == nullptr) {
        return Status::NotFound("graph member '" + target +
                                "' is not a registered motif");
      }
      // Expansion proceeds by C++ recursion; bound the nesting depth so a
      // huge max_depth cannot overflow the native stack before the
      // graph-count limit fires.
      if (expansion_stack->size() > kMaxExpansionNesting) {
        return Status::LimitExceeded(
            "motif expansion exceeds the maximum nesting depth of " +
            std::to_string(kMaxExpansionNesting));
      }
      bool recursive =
          std::find(expansion_stack->begin(), expansion_stack->end(),
                    target) != expansion_stack->end();
      std::string alias = member.graph_ref.alias.empty()
                              ? target
                              : member.graph_ref.alias;
      std::string nested_prefix = prefix + alias + ".";
      expansion_stack->push_back(target);
      std::vector<State> out;
      for (State& s : states) {
        if (recursive && s.depth_used >= options_.max_depth) {
          continue;  // This derivation cannot expand further; it dies.
        }
        State forked = std::move(s);
        if (recursive) ++forked.depth_used;
        GQL_ASSIGN_OR_RETURN(
            std::vector<State> expanded,
            ExpandBody(nested->body, {std::move(forked)}, nested_prefix,
                       expansion_stack, depth_used));
        for (State& e : expanded) out.push_back(std::move(e));
        if (out.size() > options_.max_graphs) {
          return Status::LimitExceeded(
              "motif derives more than " +
              std::to_string(options_.max_graphs) + " graphs");
        }
      }
      expansion_stack->pop_back();
      return out;
    }
    case MemberDecl::Kind::kUnify: {
      for (State& s : states) {
        int first = -1;
        for (const auto& path : member.unify.names) {
          std::string name = prefix + Join(path, ".");
          auto it = s.node_scope.find(name);
          if (it == s.node_scope.end()) {
            return Status::NotFound("unify target '" + name +
                                    "' is not a declared node");
          }
          if (first < 0) {
            first = it->second;
          } else {
            s.Union(first, it->second);
          }
        }
      }
      return states;
    }
    case MemberDecl::Kind::kExport: {
      std::string source = prefix + Join(member.export_decl.source, ".");
      std::string as = prefix + member.export_decl.as;
      for (State& s : states) {
        auto it = s.node_scope.find(source);
        if (it == s.node_scope.end()) {
          return Status::NotFound("export source '" + source +
                                  "' is not a declared node");
        }
        s.node_scope[as] = it->second;
      }
      return states;
    }
    case MemberDecl::Kind::kDisjunction: {
      if (member.alternatives.size() == 1) {
        // Single anonymous block: plain grouping (also used by the parser
        // to encode multi-declarator statements); inline it.
        return ExpandBody(*member.alternatives[0], std::move(states), prefix,
                          expansion_stack, depth_used);
      }
      std::vector<State> out;
      for (const auto& alt : member.alternatives) {
        std::vector<State> copies = states;  // Fork per alternative.
        GQL_ASSIGN_OR_RETURN(
            std::vector<State> expanded,
            ExpandBody(*alt, std::move(copies), prefix, expansion_stack,
                       depth_used));
        for (State& e : expanded) out.push_back(std::move(e));
        if (out.size() > options_.max_graphs) {
          return Status::LimitExceeded(
              "motif derives more than " +
              std::to_string(options_.max_graphs) + " graphs");
        }
      }
      return out;
    }
  }
  return Status::Internal("unhandled member kind");
}

Result<BuiltGraph> MotifBuilder::Finish(const State& state,
                                        const GraphDecl& decl) const {
  State s = state;  // Mutable copy for Find() path compression.
  BuiltGraph built;
  built.graph.set_name(decl.name);
  if (decl.tuple && options_.tuples_as_attributes) {
    GQL_ASSIGN_OR_RETURN(AttrTuple attrs, EvalConstTuple(*decl.tuple));
    built.graph.attrs() = std::move(attrs);
  }

  // Compact union-find roots into dense node ids.
  std::vector<NodeId> compact(s.pnodes.size(), kInvalidNode);
  for (size_t i = 0; i < s.pnodes.size(); ++i) {
    int root = s.Find(static_cast<int>(i));
    if (compact[root] == kInvalidNode) {
      compact[root] = built.graph.AddNode(s.pnodes[root].canonical_name,
                                          s.pnodes[root].attrs);
      built.node_wheres.push_back(s.pnodes[root].wheres);
    }
    compact[i] = compact[root];
  }
  for (const auto& [name, idx] : s.node_scope) {
    built.node_names[name] = compact[s.Find(idx)];
  }

  // Emit edges; when any unification happened, parallel edges between the
  // same endpoints are merged (the paper: "two edges are unified
  // automatically if their respective end nodes are unified").
  std::unordered_map<uint64_t, EdgeId> seen;
  std::vector<EdgeId> edge_compact(s.pedges.size(), kInvalidEdge);
  for (size_t i = 0; i < s.pedges.size(); ++i) {
    const State::PEdge& e = s.pedges[i];
    NodeId u = compact[s.Find(e.src)];
    NodeId v = compact[s.Find(e.dst)];
    NodeId lo = std::min(u, v);
    NodeId hi = std::max(u, v);
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
                   static_cast<uint32_t>(hi);
    if (s.any_unify) {
      auto it = seen.find(key);
      if (it != seen.end()) {
        built.graph.edge(it->second).attrs.MergeFrom(e.attrs);
        for (const auto& w : e.wheres) {
          built.edge_wheres[it->second].push_back(w);
        }
        edge_compact[i] = it->second;
        continue;
      }
    }
    EdgeId eid = built.graph.AddEdge(u, v, e.canonical_name, e.attrs);
    built.edge_wheres.push_back(e.wheres);
    edge_compact[i] = eid;
    if (s.any_unify) seen[key] = eid;
  }
  for (const auto& [name, idx] : s.edge_scope) {
    built.edge_names[name] = edge_compact[idx];
  }
  return built;
}

}  // namespace graphql::motif
