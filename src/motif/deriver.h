#ifndef GRAPHQL_MOTIF_DERIVER_H_
#define GRAPHQL_MOTIF_DERIVER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "motif/builder.h"

namespace graphql::motif {

/// True if the motif (transitively) references itself through the registry,
/// i.e. it uses repetition (Section 2.3) and derives unboundedly many
/// graphs without a depth limit.
bool IsRecursive(const lang::GraphDecl& decl, const MotifRegistry& registry);

/// Parses `source` as a single `graph ...` declaration and derives all of
/// its concrete graphs. `registry` may be null for self-contained motifs.
Result<std::vector<BuiltGraph>> BuildFromSource(
    std::string_view source, const MotifRegistry* registry = nullptr,
    BuildOptions options = {});

/// Parses `source` as a single, non-recursive, disjunction-free graph
/// declaration and returns the one concrete graph it denotes. This is the
/// convenient way to write data graphs inline (tests, examples).
Result<Graph> GraphFromSource(std::string_view source);

/// Parses a whole program of `graph ...;` declarations and returns one data
/// graph per statement, in order.
Result<std::vector<Graph>> GraphsFromProgramSource(std::string_view source);

}  // namespace graphql::motif

#endif  // GRAPHQL_MOTIF_DERIVER_H_
