#include "motif/deriver.h"

#include <unordered_set>

#include "lang/parser.h"

namespace graphql::motif {

namespace {

bool BodyReferences(const lang::GraphBody& body, const std::string& target,
                    const MotifRegistry& registry,
                    std::unordered_set<std::string>* visited) {
  for (const lang::MemberDecl& member : body.members) {
    switch (member.kind) {
      case lang::MemberDecl::Kind::kGraphRef: {
        const std::string& name = member.graph_ref.graph_name;
        if (name == target) return true;
        if (visited->insert(name).second) {
          const lang::GraphDecl* nested = registry.Find(name);
          if (nested != nullptr &&
              BodyReferences(nested->body, target, registry, visited)) {
            return true;
          }
        }
        break;
      }
      case lang::MemberDecl::Kind::kDisjunction:
        for (const auto& alt : member.alternatives) {
          if (BodyReferences(*alt, target, registry, visited)) return true;
        }
        break;
      default:
        break;
    }
  }
  return false;
}

}  // namespace

bool IsRecursive(const lang::GraphDecl& decl, const MotifRegistry& registry) {
  if (decl.name.empty()) return false;
  std::unordered_set<std::string> visited;
  return BodyReferences(decl.body, decl.name, registry, &visited);
}

Result<std::vector<BuiltGraph>> BuildFromSource(std::string_view source,
                                                const MotifRegistry* registry,
                                                BuildOptions options) {
  GQL_ASSIGN_OR_RETURN(lang::GraphDecl decl,
                       lang::Parser::ParseGraph(source));
  MotifBuilder builder(registry, options);
  return builder.Build(decl);
}

Result<Graph> GraphFromSource(std::string_view source) {
  GQL_ASSIGN_OR_RETURN(lang::GraphDecl decl,
                       lang::Parser::ParseGraph(source));
  MotifBuilder builder(nullptr, BuildOptions{});
  GQL_ASSIGN_OR_RETURN(BuiltGraph built, builder.BuildSingle(decl));
  return std::move(built.graph);
}

Result<std::vector<Graph>> GraphsFromProgramSource(std::string_view source) {
  GQL_ASSIGN_OR_RETURN(lang::Program program,
                       lang::Parser::ParseProgram(source));
  MotifRegistry registry;
  GQL_RETURN_IF_ERROR(registry.RegisterProgram(program));
  MotifBuilder builder(&registry, BuildOptions{});
  std::vector<Graph> out;
  for (const lang::Statement& stmt : program.statements) {
    if (stmt.kind != lang::Statement::Kind::kGraphDecl) {
      return Status::InvalidArgument(
          "program contains a non-graph statement; only `graph ...;` "
          "declarations denote data graphs");
    }
    GQL_ASSIGN_OR_RETURN(BuiltGraph built, builder.BuildSingle(stmt.graph));
    out.push_back(std::move(built.graph));
  }
  return out;
}

}  // namespace graphql::motif
