#ifndef GRAPHQL_LANG_TOKEN_H_
#define GRAPHQL_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace graphql::lang {

/// Token kinds of the GraphQL surface language (Appendix 4.A of the paper,
/// plus the `export`/`as` keywords from Section 2 and the `:=` assignment
/// used in the paper's examples).
enum class TokenKind {
  kEnd = 0,
  // Literals and identifiers.
  kIdent,
  kInt,
  kFloat,
  kString,
  // Keywords.
  kGraph,
  kNode,
  kEdge,
  kUnify,
  kExport,
  kWhere,
  kFor,
  kExhaustive,
  kIn,
  kDoc,
  kLet,
  kReturn,
  kAs,
  // Punctuation and operators.
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kLAngle,     // <
  kRAngle,     // >
  kComma,      // ,
  kSemicolon,  // ;
  kDot,        // .
  kAssign,     // = (tuple/let binding)
  kColonEq,    // :=
  kPipe,       // |
  kAmp,        // &
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
  kEq,         // ==
  kNe,         // !=
  kGe,         // >=
  kLe,         // <=
};

/// Returns a printable name for diagnostics ("'{'", "identifier", ...).
const char* TokenKindName(TokenKind kind);

/// Half-open region of source text, 1-based. The span of a token is the
/// token itself; the span of an AST node is the token that best identifies
/// it (a declared name, an operator's left operand, a keyword). line == 0
/// means "unknown" (synthesized nodes).
struct SourceSpan {
  int line = 0;    ///< 1-based line of the first character.
  int column = 0;  ///< 1-based column of the first character.
  int length = 1;  ///< Characters covered on that line (>= 1).

  bool valid() const { return line > 0; }
};

/// One lexical token with source position (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      ///< Identifier/keyword text or string payload.
  int64_t int_value = 0;
  double float_value = 0;
  int line = 0;
  int column = 0;
  int length = 1;  ///< Source characters the token covers.

  SourceSpan span() const { return SourceSpan{line, column, length}; }

  std::string Describe() const;
};

}  // namespace graphql::lang

#endif  // GRAPHQL_LANG_TOKEN_H_
