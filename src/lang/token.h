#ifndef GRAPHQL_LANG_TOKEN_H_
#define GRAPHQL_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace graphql::lang {

/// Token kinds of the GraphQL surface language (Appendix 4.A of the paper,
/// plus the `export`/`as` keywords from Section 2 and the `:=` assignment
/// used in the paper's examples).
enum class TokenKind {
  kEnd = 0,
  // Literals and identifiers.
  kIdent,
  kInt,
  kFloat,
  kString,
  // Keywords.
  kGraph,
  kNode,
  kEdge,
  kUnify,
  kExport,
  kWhere,
  kFor,
  kExhaustive,
  kIn,
  kDoc,
  kLet,
  kReturn,
  kAs,
  // Punctuation and operators.
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kLAngle,     // <
  kRAngle,     // >
  kComma,      // ,
  kSemicolon,  // ;
  kDot,        // .
  kAssign,     // = (tuple/let binding)
  kColonEq,    // :=
  kPipe,       // |
  kAmp,        // &
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
  kEq,         // ==
  kNe,         // !=
  kGe,         // >=
  kLe,         // <=
};

/// Returns a printable name for diagnostics ("'{'", "identifier", ...).
const char* TokenKindName(TokenKind kind);

/// One lexical token with source position (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      ///< Identifier/keyword text or string payload.
  int64_t int_value = 0;
  double float_value = 0;
  int line = 0;
  int column = 0;

  std::string Describe() const;
};

}  // namespace graphql::lang

#endif  // GRAPHQL_LANG_TOKEN_H_
