#ifndef GRAPHQL_LANG_PRINTER_H_
#define GRAPHQL_LANG_PRINTER_H_

#include <string>

#include "lang/ast.h"

namespace graphql::lang {

/// Renders AST nodes back to GraphQL source text. The output of
/// PrintGraphDecl / PrintProgram re-parses to an equivalent AST (verified by
/// round-trip tests), which makes the printer usable for query shipping and
/// debugging.
std::string PrintExpr(const Expr& expr);
std::string PrintTuple(const TupleLit& tuple);
std::string PrintGraphDecl(const GraphDecl& decl, int indent = 0);
std::string PrintStatement(const Statement& stmt);
std::string PrintProgram(const Program& program);

}  // namespace graphql::lang

#endif  // GRAPHQL_LANG_PRINTER_H_
