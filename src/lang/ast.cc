#include "lang/ast.h"

namespace graphql::lang {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "|";
    case BinaryOp::kAnd:
      return "&";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v, SourceSpan span) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  e->span = span;
  return e;
}

ExprPtr Expr::Name(std::vector<std::string> path, SourceSpan span) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kName;
  e->path = std::move(path);
  e->span = span;
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  if (e->lhs) e->span = e->lhs->span;
  return e;
}

}  // namespace graphql::lang
