#include "lang/printer.h"

#include "common/strings.h"

namespace graphql::lang {

namespace {

int Precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return 1;
    case BinaryOp::kAnd:
      return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return 5;
  }
  return 0;
}

std::string PrintExprPrec(const Expr& expr, int parent_prec) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal.ToString();
    case Expr::Kind::kName:
      return Join(expr.path, ".");
    case Expr::Kind::kBinary: {
      int prec = Precedence(expr.op);
      std::string out = PrintExprPrec(*expr.lhs, prec) + " " +
                        BinaryOpName(expr.op) + " " +
                        PrintExprPrec(*expr.rhs, prec + 1);
      if (prec < parent_prec) return "(" + out + ")";
      return out;
    }
  }
  return "?";
}

std::string Indent(int n) { return std::string(static_cast<size_t>(n), ' '); }

std::string PrintBody(const GraphBody& body, int indent);

std::string PrintMember(const MemberDecl& member, int indent) {
  std::string pad = Indent(indent);
  switch (member.kind) {
    case MemberDecl::Kind::kNode: {
      std::string out = pad + "node";
      if (!member.node.name.empty()) out += " " + member.node.name;
      if (member.node.tuple) out += " " + PrintTuple(*member.node.tuple);
      if (member.node.where) {
        out += " where " + PrintExpr(*member.node.where);
      }
      return out + ";\n";
    }
    case MemberDecl::Kind::kEdge: {
      std::string out = pad + "edge";
      if (!member.edge.name.empty()) out += " " + member.edge.name;
      out += " (" + Join(member.edge.src, ".") + ", " +
             Join(member.edge.dst, ".") + ")";
      if (member.edge.tuple) out += " " + PrintTuple(*member.edge.tuple);
      if (member.edge.where) {
        out += " where " + PrintExpr(*member.edge.where);
      }
      return out + ";\n";
    }
    case MemberDecl::Kind::kGraphRef: {
      std::string out = pad + "graph " + member.graph_ref.graph_name;
      if (!member.graph_ref.alias.empty()) {
        out += " as " + member.graph_ref.alias;
      }
      return out + ";\n";
    }
    case MemberDecl::Kind::kUnify: {
      std::vector<std::string> names;
      names.reserve(member.unify.names.size());
      for (const auto& n : member.unify.names) names.push_back(Join(n, "."));
      std::string out = pad + "unify " + Join(names, ", ");
      if (member.unify.where) {
        out += " where " + PrintExpr(*member.unify.where);
      }
      return out + ";\n";
    }
    case MemberDecl::Kind::kExport:
      return pad + "export " + Join(member.export_decl.source, ".") + " as " +
             member.export_decl.as + ";\n";
    case MemberDecl::Kind::kDisjunction: {
      std::string out = pad;
      for (size_t i = 0; i < member.alternatives.size(); ++i) {
        if (i > 0) out += " | ";
        out += "{\n" + PrintBody(*member.alternatives[i], indent + 2) + pad +
               "}";
      }
      return out + ";\n";
    }
  }
  return pad + "/* ? */\n";
}

std::string PrintBody(const GraphBody& body, int indent) {
  std::string out;
  for (const MemberDecl& m : body.members) out += PrintMember(m, indent);
  return out;
}

}  // namespace

std::string PrintExpr(const Expr& expr) { return PrintExprPrec(expr, 0); }

std::string PrintTuple(const TupleLit& tuple) {
  std::string out = "<";
  if (!tuple.tag.empty()) out += tuple.tag;
  bool first = true;
  for (const auto& [name, value] : tuple.entries) {
    if (!first) {
      out += ", ";
    } else if (!tuple.tag.empty()) {
      out += " ";
    }
    first = false;
    out += name + "=" + PrintExpr(*value);
  }
  out += ">";
  return out;
}

std::string PrintGraphDecl(const GraphDecl& decl, int indent) {
  std::string pad = Indent(indent);
  std::string out = pad + "graph";
  if (!decl.name.empty()) out += " " + decl.name;
  if (decl.tuple) out += " " + PrintTuple(*decl.tuple);
  // Special-case a body that is exactly one top-level disjunction: print it
  // in the paper's `graph G { ... } | { ... }` style.
  if (decl.body.members.size() == 1 &&
      decl.body.members[0].kind == MemberDecl::Kind::kDisjunction &&
      decl.body.members[0].alternatives.size() > 1) {
    const MemberDecl& disj = decl.body.members[0];
    for (size_t i = 0; i < disj.alternatives.size(); ++i) {
      out += i == 0 ? " {\n" : " | {\n";
      out += PrintBody(*disj.alternatives[i], indent + 2);
      out += pad + "}";
    }
  } else {
    out += " {\n" + PrintBody(decl.body, indent + 2) + pad + "}";
  }
  if (decl.where) out += " where " + PrintExpr(*decl.where);
  return out;
}

std::string PrintStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kGraphDecl:
      return PrintGraphDecl(stmt.graph) + ";\n";
    case Statement::Kind::kAssign:
      return stmt.assign_target + " := " + PrintGraphDecl(stmt.graph) + ";\n";
    case Statement::Kind::kFlwr: {
      const FlwrExpr& f = stmt.flwr;
      std::string out = "for ";
      out += f.pattern ? PrintGraphDecl(*f.pattern) : f.pattern_ref;
      if (f.exhaustive) out += " exhaustive";
      out += " in doc(\"" + EscapeStringLiteral(f.doc) + "\")";
      if (f.where) out += " where " + PrintExpr(*f.where);
      if (f.is_let) {
        out += " let " + f.let_target + " := ";
      } else {
        out += " return ";
      }
      out += f.template_decl ? PrintGraphDecl(*f.template_decl)
                             : f.template_ref;
      return out + ";\n";
    }
  }
  return ";\n";
}

std::string PrintProgram(const Program& program) {
  std::string out;
  for (const Statement& s : program.statements) out += PrintStatement(s);
  return out;
}

}  // namespace graphql::lang
