#ifndef GRAPHQL_LANG_PARSER_H_
#define GRAPHQL_LANG_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "lang/ast.h"
#include "lang/token.h"

namespace graphql::lang {

/// Recursive-descent parser for the GraphQL grammar of Appendix 4.A,
/// extended with:
///  - `graph G1 as X;` member aliasing (Section 2.1),
///  - `export Nested.v as v;` (Section 2.3),
///  - anonymous-block disjunction `{...} | {...}` both as a member and as
///    the whole body of a `graph` declaration (Sections 2.2, 2.3),
///  - top-level assignment `C := graph { ... };` (Figure 4.12),
///  - `where` clauses on `unify` members (Figure 4.12).
class Parser {
 public:
  /// Parses a whole program (a sequence of `;`-terminated statements).
  static Result<Program> ParseProgram(std::string_view source);

  /// Parses a single `graph ... { ... } [where ...]` declaration. The
  /// trailing semicolon is optional. Convenience entry point for building
  /// patterns/templates directly from strings.
  static Result<GraphDecl> ParseGraph(std::string_view source);

  /// Parses a standalone expression (used in tests).
  static Result<ExprPtr> ParseExpression(std::string_view source);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  bool Check(TokenKind kind, size_t ahead = 0) const {
    return Peek(ahead).kind == kind;
  }
  const Token& Advance();
  bool Match(TokenKind kind);
  Result<Token> Expect(TokenKind kind, const char* context);
  Status ErrorHere(const std::string& message) const;

  Result<Program> Program_();
  Result<Statement> Statement_();
  Result<GraphDecl> GraphDecl_();
  Result<GraphBody> GraphBodyBlock();          // "{" MemberDecl* "}"
  Result<std::vector<MemberDecl>> Members();   // MemberDecl*
  Result<MemberDecl> Member();
  Result<NodeDecl> NodeDecl_();
  Result<EdgeDecl> EdgeDecl_();
  Result<TupleLit> Tuple_();
  /// Parses a dotted name; when `span` is non-null it receives the span of
  /// the path's first identifier.
  Result<std::vector<std::string>> Names_(SourceSpan* span = nullptr);
  Result<FlwrExpr> Flwr_();

  Result<ExprPtr> Expr_();        // full precedence chain
  Result<ExprPtr> OrExpr();
  Result<ExprPtr> AndExpr();
  Result<ExprPtr> CmpExpr();
  Result<ExprPtr> AddExpr();
  Result<ExprPtr> MulExpr();
  Result<ExprPtr> Primary();

  /// Maximum recursion depth for nested graph bodies and expressions.
  /// Inputs nesting deeper than this return kParseError instead of
  /// overflowing the stack (hostile-input guard; legitimate programs stay
  /// far below it).
  static constexpr int kMaxNestingDepth = 200;

  /// RAII depth counter for the recursive productions.
  class DepthGuard {
   public:
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    int* depth_;
  };

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace graphql::lang

#endif  // GRAPHQL_LANG_PARSER_H_
