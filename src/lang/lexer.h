#ifndef GRAPHQL_LANG_LEXER_H_
#define GRAPHQL_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "lang/token.h"

namespace graphql::lang {

/// Hand-written scanner for GraphQL source text.
///
/// Lexical structure: C-style identifiers; decimal integer and float
/// literals; double-quoted strings with \\ and \" escapes; `//` line
/// comments and `/* */` block comments; the punctuation of Appendix 4.A.
class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  /// Scans the whole input; returns the token stream terminated by a kEnd
  /// token, or a ParseError status describing the first bad character.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> Next();
  Result<Token> NextImpl();
  void SkipWhitespaceAndComments();
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= src_.size(); }
  /// Error anchored at an explicit position (the offending character),
  /// not at the scanner's current position, which may already be past it.
  Status ErrorAt(int line, int column, const std::string& message) const;

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace graphql::lang

#endif  // GRAPHQL_LANG_LEXER_H_
