#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace graphql::lang {

namespace {

const std::unordered_map<std::string_view, TokenKind>& Keywords() {
  static const auto* kKeywords =
      new std::unordered_map<std::string_view, TokenKind>{
          {"graph", TokenKind::kGraph},
          {"node", TokenKind::kNode},
          {"edge", TokenKind::kEdge},
          {"unify", TokenKind::kUnify},
          {"export", TokenKind::kExport},
          {"where", TokenKind::kWhere},
          {"for", TokenKind::kFor},
          {"exhaustive", TokenKind::kExhaustive},
          {"in", TokenKind::kIn},
          {"doc", TokenKind::kDoc},
          {"let", TokenKind::kLet},
          {"return", TokenKind::kReturn},
          {"as", TokenKind::kAs},
      };
  return *kKeywords;
}

}  // namespace

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Status Lexer::ErrorAt(int line, int column, const std::string& message) const {
  return Status::ParseError(message + " at line " + std::to_string(line) +
                            ", column " + std::to_string(column));
}

void Lexer::SkipWhitespaceAndComments() {
  for (;;) {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    if (Peek() == '/' && Peek(1) == '/') {
      while (!AtEnd() && Peek() != '\n') Advance();
      continue;
    }
    if (Peek() == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
      if (!AtEnd()) {
        Advance();
        Advance();
      }
      continue;
    }
    return;
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    GQL_ASSIGN_OR_RETURN(Token tok, Next());
    bool end = tok.kind == TokenKind::kEnd;
    tokens.push_back(std::move(tok));
    if (end) return tokens;
  }
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  size_t start = pos_;
  GQL_ASSIGN_OR_RETURN(Token tok, NextImpl());
  // Byte length of the lexeme; for the only multi-line lexeme (a string
  // literal containing newlines) caret rendering clamps to the line end.
  if (pos_ > start) tok.length = static_cast<int>(pos_ - start);
  return tok;
}

Result<Token> Lexer::NextImpl() {
  Token tok;
  tok.line = line_;
  tok.column = column_;
  if (AtEnd()) {
    tok.kind = TokenKind::kEnd;
    return tok;
  }
  char c = Peek();

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string ident;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      ident += Advance();
    }
    auto it = Keywords().find(ident);
    if (it != Keywords().end()) {
      tok.kind = it->second;
      tok.text = ident;
    } else {
      tok.kind = TokenKind::kIdent;
      tok.text = std::move(ident);
    }
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string num;
    bool is_float = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      num += Advance();
    }
    // A '.' is part of the number only when followed by a digit; otherwise
    // it is member access (e.g. tuples never contain `1.x`).
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      num += Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        num += Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = 1;
      if (Peek(1) == '+' || Peek(1) == '-') save = 2;
      if (std::isdigit(static_cast<unsigned char>(Peek(save)))) {
        is_float = true;
        num += Advance();  // e
        if (Peek() == '+' || Peek() == '-') num += Advance();
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          num += Advance();
        }
      }
    }
    if (is_float) {
      tok.kind = TokenKind::kFloat;
      tok.float_value = std::strtod(num.c_str(), nullptr);
    } else {
      tok.kind = TokenKind::kInt;
      tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
    }
    return tok;
  }

  if (c == '"') {
    Advance();
    std::string text;
    while (!AtEnd() && Peek() != '"') {
      char d = Advance();
      if (d == '\\' && !AtEnd()) {
        char e = Advance();
        switch (e) {
          case 'n':
            text += '\n';
            break;
          case 't':
            text += '\t';
            break;
          default:
            text += e;
        }
      } else {
        text += d;
      }
    }
    if (AtEnd()) {
      // Point at the opening quote, not the end of input.
      return ErrorAt(tok.line, tok.column, "unterminated string literal");
    }
    Advance();  // closing quote
    tok.kind = TokenKind::kString;
    tok.text = std::move(text);
    return tok;
  }

  Advance();
  switch (c) {
    case '{':
      tok.kind = TokenKind::kLBrace;
      return tok;
    case '}':
      tok.kind = TokenKind::kRBrace;
      return tok;
    case '(':
      tok.kind = TokenKind::kLParen;
      return tok;
    case ')':
      tok.kind = TokenKind::kRParen;
      return tok;
    case ',':
      tok.kind = TokenKind::kComma;
      return tok;
    case ';':
      tok.kind = TokenKind::kSemicolon;
      return tok;
    case '.':
      tok.kind = TokenKind::kDot;
      return tok;
    case '|':
      tok.kind = TokenKind::kPipe;
      return tok;
    case '&':
      tok.kind = TokenKind::kAmp;
      return tok;
    case '+':
      tok.kind = TokenKind::kPlus;
      return tok;
    case '-':
      tok.kind = TokenKind::kMinus;
      return tok;
    case '*':
      tok.kind = TokenKind::kStar;
      return tok;
    case '/':
      tok.kind = TokenKind::kSlash;
      return tok;
    case '<':
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kLe;
      } else {
        tok.kind = TokenKind::kLAngle;
      }
      return tok;
    case '>':
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kGe;
      } else {
        tok.kind = TokenKind::kRAngle;
      }
      return tok;
    case '=':
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kEq;
      } else {
        tok.kind = TokenKind::kAssign;
      }
      return tok;
    case '!':
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kNe;
        return tok;
      }
      return ErrorAt(tok.line, tok.column, "unexpected character '!'");
    case ':':
      if (Peek() == '=') {
        Advance();
        tok.kind = TokenKind::kColonEq;
        return tok;
      }
      return ErrorAt(tok.line, tok.column, "unexpected character ':'");
    default:
      return ErrorAt(tok.line, tok.column,
                     std::string("unexpected character '") + c + "'");
  }
}

}  // namespace graphql::lang
