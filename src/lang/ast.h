#ifndef GRAPHQL_LANG_AST_H_
#define GRAPHQL_LANG_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "lang/token.h"

namespace graphql::lang {

// Abstract syntax of the GraphQL language (Appendix 4.A), extended with the
// Section-2 constructs: `graph G as X` aliasing, `unify`, `export ... as`,
// and anonymous-block disjunction (`{ ... } | { ... }`).
//
// The same syntactic shape `graph ... { ... } [where ...]` serves three
// roles distinguished by position: a graph *motif/pattern* (Sections 2,
// 3.2), a graph *template* (composition, Section 3.3), and a plain graph
// literal (data). Later passes (motif::Builder, algebra::GraphPattern,
// algebra::GraphTemplate) interpret one GraphDecl accordingly.

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Binary operators of the expression grammar, in GraphQL surface syntax:
/// | & + - * / == != > >= < <=.
enum class BinaryOp {
  kOr,
  kAnd,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* BinaryOpName(BinaryOp op);

/// Expression tree node: literal, dotted name (`P.v1.name`), or binary op.
struct Expr {
  enum class Kind { kLiteral, kName, kBinary };

  Kind kind = Kind::kLiteral;

  // kLiteral
  Value literal;

  // kName: the dotted path, e.g. {"P", "v1", "name"}.
  std::vector<std::string> path;

  // kBinary
  BinaryOp op = BinaryOp::kOr;
  ExprPtr lhs;
  ExprPtr rhs;

  /// Where the expression starts (a binary node inherits its left
  /// operand's span, so a conjunct's span is the conjunct's first token).
  SourceSpan span;

  static ExprPtr Literal(Value v, SourceSpan span = {});
  static ExprPtr Name(std::vector<std::string> path, SourceSpan span = {});
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
};

/// A tuple literal `<tag? name=expr, ...>`. In patterns the values are
/// literals (equality constraints); in templates they are full expressions
/// evaluated against the bound parameters.
struct TupleLit {
  std::string tag;
  std::vector<std::pair<std::string, ExprPtr>> entries;
};

/// `node v1 <tuple>? (where expr)?` — one declarator of a node statement.
struct NodeDecl {
  std::string name;  ///< May be empty (anonymous node).
  std::optional<TupleLit> tuple;
  ExprPtr where;  ///< Per-node predicate; null when absent.
  SourceSpan span;  ///< The declared name (or the `node` keyword).
};

/// `edge e1 (a.b, c) <tuple>? (where expr)?`.
struct EdgeDecl {
  std::string name;  ///< May be empty.
  std::vector<std::string> src;  ///< Dotted name of the source node.
  std::vector<std::string> dst;  ///< Dotted name of the target node.
  std::optional<TupleLit> tuple;
  ExprPtr where;
  SourceSpan span;      ///< The declared name (or the `edge` keyword).
  SourceSpan src_span;  ///< The source endpoint name.
  SourceSpan dst_span;  ///< The target endpoint name.
};

/// `graph G;` or `graph G1 as X;` — embeds a named graph (by reference to a
/// declaration or runtime binding) into the enclosing body.
struct GraphRefDecl {
  std::string graph_name;
  std::string alias;  ///< Empty when no `as` clause; names then resolve
                      ///< through `graph_name` itself.
  SourceSpan span;    ///< The referenced graph name.
};

/// `unify a.b, c.d (, more)* (where expr)?;` — merges the named nodes. The
/// optional where makes the unification conditional (used by templates,
/// Figure 4.12).
struct UnifyDecl {
  std::vector<std::vector<std::string>> names;  ///< ≥2 dotted names.
  ExprPtr where;
  SourceSpan span;                     ///< The `unify` keyword.
  std::vector<SourceSpan> name_spans;  ///< One per entry of `names`.
};

/// `export Nested.v as v;` — re-exposes a nested node under a new name
/// (Section 2.3); equivalent to declaring `node v` and unifying.
struct ExportDecl {
  std::vector<std::string> source;  ///< Dotted name in a nested graph.
  std::string as;
  SourceSpan span;  ///< The source name.
};

struct GraphBody;

/// One member of a graph body. A kDisjunction member holds ≥2 alternative
/// anonymous bodies of which exactly one is instantiated (Section 2.2).
struct MemberDecl {
  enum class Kind {
    kNode,
    kEdge,
    kGraphRef,
    kUnify,
    kExport,
    kDisjunction,
  };
  Kind kind = Kind::kNode;
  NodeDecl node;
  EdgeDecl edge;
  GraphRefDecl graph_ref;
  UnifyDecl unify;
  ExportDecl export_decl;
  std::vector<std::shared_ptr<GraphBody>> alternatives;
};

struct GraphBody {
  std::vector<MemberDecl> members;
};

/// `graph Name? <tuple>? { body } (where expr)?`.
struct GraphDecl {
  std::string name;  ///< Empty for anonymous graphs.
  std::optional<TupleLit> tuple;
  GraphBody body;
  ExprPtr where;    ///< Graph-wide predicate.
  SourceSpan span;  ///< The declared name (or the `graph` keyword).
};

/// FLWR expression:
///   for (ID | GraphPattern) [exhaustive] in doc("name") [where expr]
///     ( return GraphTemplate | let ID := GraphTemplate )
struct FlwrExpr {
  std::optional<GraphDecl> pattern;  ///< Inline pattern, or ...
  std::string pattern_ref;           ///< ... reference to a declared one.
  bool exhaustive = false;
  std::string doc;
  ExprPtr where;
  bool is_let = false;
  std::string let_target;                 ///< Target variable for `let`.
  std::optional<GraphDecl> template_decl; ///< Inline template, or ...
  std::string template_ref;               ///< ... a bare identifier.
  SourceSpan span;           ///< The `for` keyword.
  SourceSpan pattern_span;   ///< The pattern reference / inline pattern.
  SourceSpan doc_span;       ///< The doc("...") name string.
  SourceSpan template_span;  ///< The template reference / inline template.
};

/// Top-level statement. `Assign` covers the paper's `C := graph {};` form.
struct Statement {
  enum class Kind { kGraphDecl, kFlwr, kAssign };
  Kind kind = Kind::kGraphDecl;
  GraphDecl graph;        // kGraphDecl and kAssign (the right-hand side).
  std::string assign_target;  // kAssign
  FlwrExpr flwr;          // kFlwr
  SourceSpan span;        ///< First token of the statement.
};

struct Program {
  std::vector<Statement> statements;
};

}  // namespace graphql::lang

#endif  // GRAPHQL_LANG_AST_H_
