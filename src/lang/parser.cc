#include "lang/parser.h"

#include <utility>

#include "common/strings.h"
#include "lang/lexer.h"

namespace graphql::lang {

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

Result<Token> Parser::Expect(TokenKind kind, const char* context) {
  if (Check(kind)) return Advance();
  return ErrorHere(std::string("expected ") + TokenKindName(kind) + " in " +
                   context + ", found " + Peek().Describe());
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  return Status::ParseError(message + " at line " + std::to_string(t.line) +
                            ", column " + std::to_string(t.column));
}

Result<Program> Parser::ParseProgram(std::string_view source) {
  GQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(source).Tokenize());
  Parser parser(std::move(tokens));
  return parser.Program_();
}

Result<GraphDecl> Parser::ParseGraph(std::string_view source) {
  GQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(source).Tokenize());
  Parser parser(std::move(tokens));
  GQL_ASSIGN_OR_RETURN(GraphDecl decl, parser.GraphDecl_());
  parser.Match(TokenKind::kSemicolon);
  if (!parser.Check(TokenKind::kEnd)) {
    return parser.ErrorHere("trailing input after graph declaration");
  }
  return decl;
}

Result<ExprPtr> Parser::ParseExpression(std::string_view source) {
  GQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer(source).Tokenize());
  Parser parser(std::move(tokens));
  GQL_ASSIGN_OR_RETURN(ExprPtr e, parser.Expr_());
  if (!parser.Check(TokenKind::kEnd)) {
    return parser.ErrorHere("trailing input after expression");
  }
  return e;
}

Result<Program> Parser::Program_() {
  Program program;
  while (!Check(TokenKind::kEnd)) {
    GQL_ASSIGN_OR_RETURN(Statement stmt, Statement_());
    program.statements.push_back(std::move(stmt));
  }
  return program;
}

Result<Statement> Parser::Statement_() {
  Statement stmt;
  stmt.span = Peek().span();
  if (Check(TokenKind::kGraph)) {
    stmt.kind = Statement::Kind::kGraphDecl;
    GQL_ASSIGN_OR_RETURN(stmt.graph, GraphDecl_());
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "statement").status());
    return stmt;
  }
  if (Check(TokenKind::kFor)) {
    stmt.kind = Statement::Kind::kFlwr;
    GQL_ASSIGN_OR_RETURN(stmt.flwr, Flwr_());
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "statement").status());
    return stmt;
  }
  if (Check(TokenKind::kIdent) && Check(TokenKind::kColonEq, 1)) {
    stmt.kind = Statement::Kind::kAssign;
    stmt.assign_target = Advance().text;
    Advance();  // :=
    GQL_ASSIGN_OR_RETURN(stmt.graph, GraphDecl_());
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "statement").status());
    return stmt;
  }
  return ErrorHere("expected 'graph', 'for', or an assignment, found " +
                   Peek().Describe());
}

Result<GraphDecl> Parser::GraphDecl_() {
  SourceSpan kw_span = Peek().span();
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kGraph, "graph declaration").status());
  GraphDecl decl;
  decl.span = kw_span;
  if (Check(TokenKind::kIdent)) {
    decl.span = Peek().span();
    decl.name = Advance().text;
  }
  if (Check(TokenKind::kLAngle)) {
    GQL_ASSIGN_OR_RETURN(TupleLit t, Tuple_());
    decl.tuple = std::move(t);
  }
  GQL_ASSIGN_OR_RETURN(GraphBody body, GraphBodyBlock());
  // Top-level disjunction: graph G { ... } | { ... } | ...
  if (Check(TokenKind::kPipe)) {
    MemberDecl disj;
    disj.kind = MemberDecl::Kind::kDisjunction;
    disj.alternatives.push_back(std::make_shared<GraphBody>(std::move(body)));
    while (Match(TokenKind::kPipe)) {
      GQL_ASSIGN_OR_RETURN(GraphBody alt, GraphBodyBlock());
      disj.alternatives.push_back(
          std::make_shared<GraphBody>(std::move(alt)));
    }
    GraphBody wrapper;
    wrapper.members.push_back(std::move(disj));
    decl.body = std::move(wrapper);
  } else {
    decl.body = std::move(body);
  }
  if (Match(TokenKind::kWhere)) {
    GQL_ASSIGN_OR_RETURN(decl.where, Expr_());
  }
  return decl;
}

Result<GraphBody> Parser::GraphBodyBlock() {
  DepthGuard guard(&depth_);
  if (depth_ > kMaxNestingDepth) {
    return ErrorHere("graph body nesting exceeds the maximum depth");
  }
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "graph body").status());
  GQL_ASSIGN_OR_RETURN(std::vector<MemberDecl> members, Members());
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "graph body").status());
  GraphBody body;
  body.members = std::move(members);
  return body;
}

Result<std::vector<MemberDecl>> Parser::Members() {
  std::vector<MemberDecl> members;
  while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEnd)) {
    GQL_ASSIGN_OR_RETURN(MemberDecl m, Member());
    members.push_back(std::move(m));
  }
  return members;
}

Result<MemberDecl> Parser::Member() {
  MemberDecl member;
  // Span of the member's introducing keyword; declarators without a name
  // fall back to it.
  SourceSpan kw_span = Peek().span();
  if (Match(TokenKind::kNode)) {
    member.kind = MemberDecl::Kind::kNode;
    GQL_ASSIGN_OR_RETURN(member.node, NodeDecl_());
    if (!member.node.span.valid()) member.node.span = kw_span;
    // `node a, b, c;` expands into sibling members returned one at a time:
    // we rewrite the commas by pushing extra members through a small queue.
    // Simpler: collect into a disjunction-free multi list via recursion.
    if (Check(TokenKind::kComma)) {
      // Build a synthetic container: we return the first node and re-queue
      // the rest by rewinding is complex; instead we parse all declarators
      // here and wrap them in consecutive members via a vector hack below.
      // To keep Member() single-valued, we use the alternatives field as a
      // carrier — but that is obscure. Instead: loop in place.
      std::vector<NodeDecl> extra;
      while (Match(TokenKind::kComma)) {
        GQL_ASSIGN_OR_RETURN(NodeDecl n, NodeDecl_());
        if (!n.span.valid()) n.span = kw_span;
        extra.push_back(std::move(n));
      }
      GQL_RETURN_IF_ERROR(
          Expect(TokenKind::kSemicolon, "node declaration").status());
      // Pack extras into sibling members using a dedicated wrapper body.
      MemberDecl first = std::move(member);
      if (extra.empty()) return first;
      // Represent a multi-declarator statement as a flat sequence: we store
      // the first directly and the rest inside a single-alternative
      // disjunction-like group that the builder flattens.
      auto group = std::make_shared<GraphBody>();
      group->members.push_back(std::move(first));
      for (auto& n : extra) {
        MemberDecl m;
        m.kind = MemberDecl::Kind::kNode;
        m.node = std::move(n);
        group->members.push_back(std::move(m));
      }
      MemberDecl seq;
      seq.kind = MemberDecl::Kind::kDisjunction;
      seq.alternatives.push_back(std::move(group));
      return seq;
    }
    GQL_RETURN_IF_ERROR(
        Expect(TokenKind::kSemicolon, "node declaration").status());
    return member;
  }
  if (Match(TokenKind::kEdge)) {
    member.kind = MemberDecl::Kind::kEdge;
    GQL_ASSIGN_OR_RETURN(member.edge, EdgeDecl_());
    if (!member.edge.span.valid()) member.edge.span = kw_span;
    if (Check(TokenKind::kComma)) {
      auto group = std::make_shared<GraphBody>();
      group->members.push_back(std::move(member));
      while (Match(TokenKind::kComma)) {
        MemberDecl m;
        m.kind = MemberDecl::Kind::kEdge;
        GQL_ASSIGN_OR_RETURN(m.edge, EdgeDecl_());
        if (!m.edge.span.valid()) m.edge.span = kw_span;
        group->members.push_back(std::move(m));
      }
      GQL_RETURN_IF_ERROR(
          Expect(TokenKind::kSemicolon, "edge declaration").status());
      MemberDecl seq;
      seq.kind = MemberDecl::Kind::kDisjunction;
      seq.alternatives.push_back(std::move(group));
      return seq;
    }
    GQL_RETURN_IF_ERROR(
        Expect(TokenKind::kSemicolon, "edge declaration").status());
    return member;
  }
  if (Match(TokenKind::kGraph)) {
    member.kind = MemberDecl::Kind::kGraphRef;
    GQL_ASSIGN_OR_RETURN(
        Token name, Expect(TokenKind::kIdent, "graph member reference"));
    member.graph_ref.graph_name = name.text;
    member.graph_ref.span = name.span();
    if (Match(TokenKind::kAs)) {
      GQL_ASSIGN_OR_RETURN(Token alias,
                           Expect(TokenKind::kIdent, "graph member alias"));
      member.graph_ref.alias = alias.text;
    }
    if (Check(TokenKind::kComma)) {
      auto group = std::make_shared<GraphBody>();
      group->members.push_back(std::move(member));
      while (Match(TokenKind::kComma)) {
        MemberDecl m;
        m.kind = MemberDecl::Kind::kGraphRef;
        GQL_ASSIGN_OR_RETURN(
            Token more, Expect(TokenKind::kIdent, "graph member reference"));
        m.graph_ref.graph_name = more.text;
        m.graph_ref.span = more.span();
        if (Match(TokenKind::kAs)) {
          GQL_ASSIGN_OR_RETURN(
              Token alias, Expect(TokenKind::kIdent, "graph member alias"));
          m.graph_ref.alias = alias.text;
        }
        group->members.push_back(std::move(m));
      }
      GQL_RETURN_IF_ERROR(
          Expect(TokenKind::kSemicolon, "graph member reference").status());
      MemberDecl seq;
      seq.kind = MemberDecl::Kind::kDisjunction;
      seq.alternatives.push_back(std::move(group));
      return seq;
    }
    GQL_RETURN_IF_ERROR(
        Expect(TokenKind::kSemicolon, "graph member reference").status());
    return member;
  }
  if (Match(TokenKind::kUnify)) {
    member.kind = MemberDecl::Kind::kUnify;
    member.unify.span = kw_span;
    SourceSpan name_span;
    GQL_ASSIGN_OR_RETURN(std::vector<std::string> first, Names_(&name_span));
    member.unify.names.push_back(std::move(first));
    member.unify.name_spans.push_back(name_span);
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kComma, "unify").status());
    GQL_ASSIGN_OR_RETURN(std::vector<std::string> second, Names_(&name_span));
    member.unify.names.push_back(std::move(second));
    member.unify.name_spans.push_back(name_span);
    while (Match(TokenKind::kComma)) {
      GQL_ASSIGN_OR_RETURN(std::vector<std::string> more, Names_(&name_span));
      member.unify.names.push_back(std::move(more));
      member.unify.name_spans.push_back(name_span);
    }
    if (Match(TokenKind::kWhere)) {
      GQL_ASSIGN_OR_RETURN(member.unify.where, Expr_());
    }
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "unify").status());
    return member;
  }
  if (Match(TokenKind::kExport)) {
    member.kind = MemberDecl::Kind::kExport;
    GQL_ASSIGN_OR_RETURN(member.export_decl.source,
                         Names_(&member.export_decl.span));
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kAs, "export").status());
    GQL_ASSIGN_OR_RETURN(Token as,
                         Expect(TokenKind::kIdent, "export alias"));
    member.export_decl.as = as.text;
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "export").status());
    return member;
  }
  if (Check(TokenKind::kLBrace)) {
    // Anonymous block, possibly a disjunction: { ... } | { ... } ...
    member.kind = MemberDecl::Kind::kDisjunction;
    GQL_ASSIGN_OR_RETURN(GraphBody first, GraphBodyBlock());
    member.alternatives.push_back(
        std::make_shared<GraphBody>(std::move(first)));
    while (Match(TokenKind::kPipe)) {
      GQL_ASSIGN_OR_RETURN(GraphBody alt, GraphBodyBlock());
      member.alternatives.push_back(
          std::make_shared<GraphBody>(std::move(alt)));
    }
    Match(TokenKind::kSemicolon);  // optional trailing ';' after a block
    return member;
  }
  return ErrorHere("expected a graph member declaration, found " +
                   Peek().Describe());
}

Result<NodeDecl> Parser::NodeDecl_() {
  NodeDecl node;
  if (Check(TokenKind::kIdent)) {
    // Graph templates may declare nodes under dotted parameter paths, e.g.
    // `node P.v1, P.v2;` (Figure 4.12); store the joined path as the name.
    GQL_ASSIGN_OR_RETURN(std::vector<std::string> path, Names_(&node.span));
    node.name = Join(path, ".");
  }
  if (Check(TokenKind::kLAngle)) {
    GQL_ASSIGN_OR_RETURN(TupleLit t, Tuple_());
    node.tuple = std::move(t);
  }
  if (Match(TokenKind::kWhere)) {
    GQL_ASSIGN_OR_RETURN(node.where, Expr_());
  }
  return node;
}

Result<EdgeDecl> Parser::EdgeDecl_() {
  EdgeDecl edge;
  if (Check(TokenKind::kIdent)) {
    edge.span = Peek().span();
    edge.name = Advance().text;
  }
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "edge endpoints").status());
  GQL_ASSIGN_OR_RETURN(edge.src, Names_(&edge.src_span));
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kComma, "edge endpoints").status());
  GQL_ASSIGN_OR_RETURN(edge.dst, Names_(&edge.dst_span));
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "edge endpoints").status());
  if (Check(TokenKind::kLAngle)) {
    GQL_ASSIGN_OR_RETURN(TupleLit t, Tuple_());
    edge.tuple = std::move(t);
  }
  if (Match(TokenKind::kWhere)) {
    GQL_ASSIGN_OR_RETURN(edge.where, Expr_());
  }
  return edge;
}

Result<TupleLit> Parser::Tuple_() {
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kLAngle, "tuple").status());
  TupleLit tuple;
  // A leading identifier not followed by '=' is the tuple's tag.
  if (Check(TokenKind::kIdent) && !Check(TokenKind::kAssign, 1)) {
    tuple.tag = Advance().text;
  }
  bool first = true;
  while (!Check(TokenKind::kRAngle)) {
    if (!first) Match(TokenKind::kComma);  // commas between entries optional
    first = false;
    GQL_ASSIGN_OR_RETURN(Token name,
                         Expect(TokenKind::kIdent, "tuple attribute"));
    GQL_RETURN_IF_ERROR(Expect(TokenKind::kAssign, "tuple attribute").status());
    // Attribute values are parsed at additive precedence so that the
    // closing '>' of the tuple is never consumed as a comparison operator;
    // parenthesize to embed comparisons.
    GQL_ASSIGN_OR_RETURN(ExprPtr value, AddExpr());
    tuple.entries.emplace_back(name.text, std::move(value));
  }
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kRAngle, "tuple").status());
  return tuple;
}

Result<std::vector<std::string>> Parser::Names_(SourceSpan* span) {
  GQL_ASSIGN_OR_RETURN(Token first, Expect(TokenKind::kIdent, "name"));
  if (span != nullptr) *span = first.span();
  std::vector<std::string> path = {first.text};
  while (Match(TokenKind::kDot)) {
    GQL_ASSIGN_OR_RETURN(Token part, Expect(TokenKind::kIdent, "name"));
    path.push_back(part.text);
  }
  return path;
}

Result<FlwrExpr> Parser::Flwr_() {
  FlwrExpr flwr;
  flwr.span = Peek().span();
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kFor, "FLWR expression").status());
  if (Check(TokenKind::kGraph)) {
    GQL_ASSIGN_OR_RETURN(GraphDecl pattern, GraphDecl_());
    flwr.pattern_span = pattern.span;
    flwr.pattern = std::move(pattern);
  } else {
    GQL_ASSIGN_OR_RETURN(Token ref,
                         Expect(TokenKind::kIdent, "FLWR pattern"));
    flwr.pattern_ref = ref.text;
    flwr.pattern_span = ref.span();
  }
  flwr.exhaustive = Match(TokenKind::kExhaustive);
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kIn, "FLWR expression").status());
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kDoc, "FLWR expression").status());
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "doc()").status());
  GQL_ASSIGN_OR_RETURN(Token doc, Expect(TokenKind::kString, "doc()"));
  flwr.doc = doc.text;
  flwr.doc_span = doc.span();
  GQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "doc()").status());
  if (Match(TokenKind::kWhere)) {
    GQL_ASSIGN_OR_RETURN(flwr.where, Expr_());
  }
  if (Match(TokenKind::kReturn)) {
    flwr.is_let = false;
  } else if (Match(TokenKind::kLet)) {
    flwr.is_let = true;
    GQL_ASSIGN_OR_RETURN(Token target,
                         Expect(TokenKind::kIdent, "let binding"));
    flwr.let_target = target.text;
    if (!Match(TokenKind::kColonEq) && !Match(TokenKind::kAssign)) {
      return ErrorHere("expected ':=' or '=' in let binding, found " +
                       Peek().Describe());
    }
  } else {
    return ErrorHere("expected 'return' or 'let' in FLWR expression, found " +
                     Peek().Describe());
  }
  if (Check(TokenKind::kGraph)) {
    GQL_ASSIGN_OR_RETURN(GraphDecl tmpl, GraphDecl_());
    flwr.template_span = tmpl.span;
    flwr.template_decl = std::move(tmpl);
  } else {
    GQL_ASSIGN_OR_RETURN(Token ref,
                         Expect(TokenKind::kIdent, "FLWR template"));
    flwr.template_ref = ref.text;
    flwr.template_span = ref.span();
  }
  return flwr;
}

Result<ExprPtr> Parser::Expr_() { return OrExpr(); }

Result<ExprPtr> Parser::OrExpr() {
  GQL_ASSIGN_OR_RETURN(ExprPtr lhs, AndExpr());
  while (Match(TokenKind::kPipe)) {
    GQL_ASSIGN_OR_RETURN(ExprPtr rhs, AndExpr());
    lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::AndExpr() {
  GQL_ASSIGN_OR_RETURN(ExprPtr lhs, CmpExpr());
  while (Match(TokenKind::kAmp)) {
    GQL_ASSIGN_OR_RETURN(ExprPtr rhs, CmpExpr());
    lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::CmpExpr() {
  GQL_ASSIGN_OR_RETURN(ExprPtr lhs, AddExpr());
  for (;;) {
    BinaryOp op;
    if (Match(TokenKind::kEq)) {
      op = BinaryOp::kEq;
    } else if (Match(TokenKind::kNe)) {
      op = BinaryOp::kNe;
    } else if (Match(TokenKind::kLAngle)) {
      op = BinaryOp::kLt;
    } else if (Match(TokenKind::kLe)) {
      op = BinaryOp::kLe;
    } else if (Match(TokenKind::kRAngle)) {
      op = BinaryOp::kGt;
    } else if (Match(TokenKind::kGe)) {
      op = BinaryOp::kGe;
    } else if (Check(TokenKind::kAssign)) {
      // The paper freely writes `=` for equality inside predicates
      // (Figure 4.8: `where v1.name="A"`); accept it as '=='.
      Advance();
      op = BinaryOp::kEq;
    } else {
      return lhs;
    }
    GQL_ASSIGN_OR_RETURN(ExprPtr rhs, AddExpr());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::AddExpr() {
  GQL_ASSIGN_OR_RETURN(ExprPtr lhs, MulExpr());
  for (;;) {
    BinaryOp op;
    if (Match(TokenKind::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Match(TokenKind::kMinus)) {
      op = BinaryOp::kSub;
    } else {
      return lhs;
    }
    GQL_ASSIGN_OR_RETURN(ExprPtr rhs, MulExpr());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::MulExpr() {
  GQL_ASSIGN_OR_RETURN(ExprPtr lhs, Primary());
  for (;;) {
    BinaryOp op;
    if (Match(TokenKind::kStar)) {
      op = BinaryOp::kMul;
    } else if (Match(TokenKind::kSlash)) {
      op = BinaryOp::kDiv;
    } else {
      return lhs;
    }
    GQL_ASSIGN_OR_RETURN(ExprPtr rhs, Primary());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::Primary() {
  // Guards every expression recursion cycle: parenthesized expressions and
  // unary minus re-enter through here, and each step in the precedence
  // chain passes through Primary.
  DepthGuard guard(&depth_);
  if (depth_ > kMaxNestingDepth) {
    return ErrorHere("expression nesting exceeds the maximum depth");
  }
  if (Match(TokenKind::kLParen)) {
    GQL_ASSIGN_OR_RETURN(ExprPtr e, Expr_());
    GQL_RETURN_IF_ERROR(
        Expect(TokenKind::kRParen, "parenthesized expression").status());
    return e;
  }
  if (Check(TokenKind::kMinus)) {
    SourceSpan minus_span = Advance().span();
    GQL_ASSIGN_OR_RETURN(ExprPtr operand, Primary());
    return Expr::Binary(BinaryOp::kSub,
                        Expr::Literal(Value(int64_t{0}), minus_span),
                        std::move(operand));
  }
  if (Check(TokenKind::kInt)) {
    const Token& t = Advance();
    return Expr::Literal(Value(t.int_value), t.span());
  }
  if (Check(TokenKind::kFloat)) {
    const Token& t = Advance();
    return Expr::Literal(Value(t.float_value), t.span());
  }
  if (Check(TokenKind::kString)) {
    const Token& t = Advance();
    return Expr::Literal(Value(t.text), t.span());
  }
  if (Check(TokenKind::kIdent)) {
    // `true`/`false` act as boolean literals in expression position (they
    // are not reserved words; a dotted path starting with them still
    // parses as a name).
    if (!Check(TokenKind::kDot, 1)) {
      if (Peek().text == "true") {
        return Expr::Literal(Value(true), Advance().span());
      }
      if (Peek().text == "false") {
        return Expr::Literal(Value(false), Advance().span());
      }
    }
    SourceSpan name_span;
    GQL_ASSIGN_OR_RETURN(std::vector<std::string> path, Names_(&name_span));
    return Expr::Name(std::move(path), name_span);
  }
  return ErrorHere("expected an expression, found " + Peek().Describe());
}

}  // namespace graphql::lang
