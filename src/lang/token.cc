#include "lang/token.h"

namespace graphql::lang {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kInt:
      return "integer literal";
    case TokenKind::kFloat:
      return "float literal";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kGraph:
      return "'graph'";
    case TokenKind::kNode:
      return "'node'";
    case TokenKind::kEdge:
      return "'edge'";
    case TokenKind::kUnify:
      return "'unify'";
    case TokenKind::kExport:
      return "'export'";
    case TokenKind::kWhere:
      return "'where'";
    case TokenKind::kFor:
      return "'for'";
    case TokenKind::kExhaustive:
      return "'exhaustive'";
    case TokenKind::kIn:
      return "'in'";
    case TokenKind::kDoc:
      return "'doc'";
    case TokenKind::kLet:
      return "'let'";
    case TokenKind::kReturn:
      return "'return'";
    case TokenKind::kAs:
      return "'as'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLAngle:
      return "'<'";
    case TokenKind::kRAngle:
      return "'>'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kColonEq:
      return "':='";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kEq:
      return "'=='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kLe:
      return "'<='";
  }
  return "?";
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier '" + text + "'";
    case TokenKind::kString:
      return "string \"" + text + "\"";
    case TokenKind::kInt:
      return "integer " + std::to_string(int_value);
    case TokenKind::kFloat:
      return "float " + std::to_string(float_value);
    default:
      return TokenKindName(kind);
  }
}

}  // namespace graphql::lang
