#include "algebra/expr.h"

#include "common/strings.h"

namespace graphql::algebra {

NodeId BoundGraph::ResolveNode(const std::string& dotted) const {
  if (names != nullptr) {
    auto it = names->find(dotted);
    if (it == names->end()) return kInvalidNode;
    NodeId pattern_node = it->second;
    if (mapping != nullptr) {
      if (pattern_node < 0 ||
          static_cast<size_t>(pattern_node) >= mapping->size()) {
        return kInvalidNode;
      }
      return (*mapping)[pattern_node];
    }
    return pattern_node;
  }
  if (attr_graph == nullptr) return kInvalidNode;
  return attr_graph->FindNode(dotted);
}

EdgeId BoundGraph::ResolveEdge(const std::string& dotted) const {
  if (edge_names != nullptr) {
    auto it = edge_names->find(dotted);
    if (it == edge_names->end()) return kInvalidEdge;
    EdgeId pattern_edge = it->second;
    if (edge_mapping != nullptr) {
      if (pattern_edge < 0 ||
          static_cast<size_t>(pattern_edge) >= edge_mapping->size()) {
        return kInvalidEdge;
      }
      return (*edge_mapping)[pattern_edge];
    }
    return pattern_edge;
  }
  if (attr_graph == nullptr) return kInvalidEdge;
  return attr_graph->FindEdgeByName(dotted);
}

Result<Value> Bindings::ResolveInGraph(const BoundGraph& g,
                                       const std::vector<std::string>& path,
                                       size_t start,
                                       bool allow_graph_attr) const {
  size_t n = path.size() - start;
  if (g.attr_graph == nullptr) {
    return Status::Internal("binding without an attribute graph");
  }
  if (n == 1) {
    if (allow_graph_attr) {
      return g.attr_graph->attrs().GetOrNull(path[start]);
    }
    return Status::InvalidArgument("cannot resolve bare name '" +
                                   path[start] + "'");
  }
  // The attribute name is always the final path element; everything before
  // it (possibly dotted, e.g. "X.v1") names a node or edge.
  std::string prefix = path[start];
  for (size_t i = start + 1; i + 1 < path.size(); ++i) {
    prefix += ".";
    prefix += path[i];
  }
  NodeId v = g.ResolveNode(prefix);
  if (v != kInvalidNode) {
    return g.attr_graph->node(v).attrs.GetOrNull(path.back());
  }
  EdgeId e = g.ResolveEdge(prefix);
  if (e != kInvalidEdge) {
    return g.attr_graph->edge(e).attrs.GetOrNull(path.back());
  }
  return Status::NotFound("cannot resolve '" +
                          Join({path.begin() + static_cast<long>(start),
                                path.end()},
                               ".") +
                          "' to a node or edge attribute");
}

Result<Value> Bindings::ResolvePath(
    const std::vector<std::string>& path) const {
  if (path.empty()) return Status::Internal("empty name path");
  if (path.size() == 1) {
    if (current_node_graph_ != nullptr) {
      return current_node_graph_->node(current_node_).attrs.GetOrNull(
          path[0]);
    }
    if (current_edge_graph_ != nullptr) {
      return current_edge_graph_->edge(current_edge_).attrs.GetOrNull(
          path[0]);
    }
    if (has_default_ && default_.attr_graph != nullptr) {
      return default_.attr_graph->attrs().GetOrNull(path[0]);
    }
    return Status::NotFound("cannot resolve bare name '" + path[0] + "'");
  }
  auto it = named_.find(path[0]);
  if (it != named_.end()) {
    Result<Value> r = ResolveInGraph(it->second, path, 1,
                                     /*allow_graph_attr=*/true);
    if (r.ok()) return r;
    // Fall through: `P.v1` may also be resolvable via the default binding
    // when the binding name shadows a node-name prefix.
  }
  if (has_default_) {
    return ResolveInGraph(default_, path, 0, /*allow_graph_attr=*/false);
  }
  if (it != named_.end()) {
    return ResolveInGraph(it->second, path, 1, /*allow_graph_attr=*/true);
  }
  return Status::NotFound("cannot resolve '" + Join(path, ".") + "'");
}

Result<Value> EvalExpr(const lang::Expr& expr, const Bindings& bindings) {
  switch (expr.kind) {
    case lang::Expr::Kind::kLiteral:
      return expr.literal;
    case lang::Expr::Kind::kName:
      return bindings.ResolvePath(expr.path);
    case lang::Expr::Kind::kBinary: {
      // Short-circuit the logical operators.
      if (expr.op == lang::BinaryOp::kAnd) {
        GQL_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.lhs, bindings));
        if (!lhs.Truthy()) return Value(false);
        GQL_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.rhs, bindings));
        return Value(rhs.Truthy());
      }
      if (expr.op == lang::BinaryOp::kOr) {
        GQL_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.lhs, bindings));
        if (lhs.Truthy()) return Value(true);
        GQL_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.rhs, bindings));
        return Value(rhs.Truthy());
      }
      GQL_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.lhs, bindings));
      GQL_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.rhs, bindings));
      switch (expr.op) {
        case lang::BinaryOp::kAdd:
          return Value::Add(lhs, rhs);
        case lang::BinaryOp::kSub:
          return Value::Sub(lhs, rhs);
        case lang::BinaryOp::kMul:
          return Value::Mul(lhs, rhs);
        case lang::BinaryOp::kDiv:
          return Value::Div(lhs, rhs);
        case lang::BinaryOp::kEq:
          // An absent attribute (null) never equals anything, including
          // another absent attribute: SQL-style missing-data semantics.
          if (lhs.is_null() || rhs.is_null()) return Value(false);
          return Value(lhs == rhs);
        case lang::BinaryOp::kNe:
          if (lhs.is_null() || rhs.is_null()) return Value(true);
          return Value(lhs != rhs);
        case lang::BinaryOp::kLt: {
          if (lhs.is_null() || rhs.is_null()) return Value(false);
          GQL_ASSIGN_OR_RETURN(bool b, Value::Less(lhs, rhs));
          return Value(b);
        }
        case lang::BinaryOp::kLe: {
          if (lhs.is_null() || rhs.is_null()) return Value(false);
          GQL_ASSIGN_OR_RETURN(bool b, Value::LessEq(lhs, rhs));
          return Value(b);
        }
        case lang::BinaryOp::kGt: {
          if (lhs.is_null() || rhs.is_null()) return Value(false);
          GQL_ASSIGN_OR_RETURN(bool b, Value::Less(rhs, lhs));
          return Value(b);
        }
        case lang::BinaryOp::kGe: {
          if (lhs.is_null() || rhs.is_null()) return Value(false);
          GQL_ASSIGN_OR_RETURN(bool b, Value::LessEq(rhs, lhs));
          return Value(b);
        }
        case lang::BinaryOp::kAnd:
        case lang::BinaryOp::kOr:
          break;  // Handled above.
      }
      return Status::Internal("unhandled binary operator");
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const lang::Expr& expr, const Bindings& bindings) {
  GQL_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, bindings));
  return v.Truthy();
}

void CollectNames(const lang::Expr& expr,
                  std::vector<std::vector<std::string>>* out) {
  switch (expr.kind) {
    case lang::Expr::Kind::kLiteral:
      return;
    case lang::Expr::Kind::kName:
      out->push_back(expr.path);
      return;
    case lang::Expr::Kind::kBinary:
      CollectNames(*expr.lhs, out);
      CollectNames(*expr.rhs, out);
      return;
  }
}

void SplitConjuncts(const lang::ExprPtr& expr,
                    std::vector<lang::ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == lang::Expr::Kind::kBinary &&
      expr->op == lang::BinaryOp::kAnd) {
    SplitConjuncts(expr->lhs, out);
    SplitConjuncts(expr->rhs, out);
    return;
  }
  out->push_back(expr);
}

}  // namespace graphql::algebra
