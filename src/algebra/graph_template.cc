#include "algebra/graph_template.h"

#include <algorithm>

#include "common/strings.h"
#include "lang/parser.h"

namespace graphql::algebra {

BoundGraph TemplateParam::Bound() const {
  if (matched_ != nullptr) return matched_->Bound();
  BoundGraph bound;
  bound.attr_graph = plain_;
  return bound;
}

bool TemplateParam::ResolveNode(const std::string& dotted, const Graph** graph,
                                NodeId* node) const {
  if (matched_ != nullptr) {
    auto it = matched_->pattern->node_names().find(dotted);
    if (it == matched_->pattern->node_names().end()) return false;
    *graph = matched_->data;
    *node = matched_->node_mapping[it->second];
    return true;
  }
  if (plain_ != nullptr) {
    NodeId v = plain_->FindNode(dotted);
    if (v == kInvalidNode) return false;
    *graph = plain_;
    *node = v;
    return true;
  }
  return false;
}

Graph TemplateParam::MaterializeCopy() const {
  if (matched_ != nullptr) return matched_->Materialize();
  if (plain_ != nullptr) return *plain_;
  return Graph();
}

Result<GraphTemplate> GraphTemplate::Create(lang::GraphDecl decl) {
  GraphTemplate t;
  t.decl_ = std::move(decl);
  return t;
}

Result<GraphTemplate> GraphTemplate::Parse(std::string_view source) {
  GQL_ASSIGN_OR_RETURN(lang::GraphDecl decl, lang::Parser::ParseGraph(source));
  return Create(std::move(decl));
}

namespace {

/// Working state of one instantiation: an append-only graph plus a
/// union-find so `unify` can merge nodes declared earlier.
struct Assembly {
  Graph work;
  std::vector<NodeId> parent;
  std::unordered_map<std::string, NodeId> scope;
  // Absorbed parameter name -> [begin, end) node-id range in `work`.
  std::unordered_map<std::string, std::pair<NodeId, NodeId>> ranges;
  bool any_unify = false;

  NodeId Find(NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  void Union(NodeId a, NodeId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent[b] = a;
    work.node(a).attrs.MergeFrom(work.node(b).attrs);
    any_unify = true;
  }

  NodeId Add(std::string name, AttrTuple attrs) {
    NodeId id = work.AddNode(std::move(name), std::move(attrs));
    parent.push_back(id);
    return id;
  }
};

}  // namespace

Result<Graph> GraphTemplate::Instantiate(
    const std::unordered_map<std::string, TemplateParam>& params) const {
  Assembly a;

  // Bindings over the actual parameters, used for tuple-template values.
  Bindings param_bindings;
  for (const auto& [name, param] : params) {
    param_bindings.Bind(name, param.Bound());
  }

  auto eval_tuple = [&](const lang::TupleLit& tuple,
                        AttrTuple* out) -> Status {
    if (!tuple.tag.empty()) out->set_tag(tuple.tag);
    for (const auto& [key, expr] : tuple.entries) {
      GQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, param_bindings));
      out->Set(key, std::move(v));
    }
    return Status::OK();
  };

  // Processes the body members in order with manual recursion over
  // single-alternative groups; returns on the first error.
  std::vector<std::pair<const lang::GraphBody*, size_t>> frames;
  frames.emplace_back(&decl_.body, 0);
  while (!frames.empty()) {
    auto& [body, idx] = frames.back();
    if (idx >= body->members.size()) {
      frames.pop_back();
      continue;
    }
    const lang::MemberDecl& member = body->members[idx++];
    switch (member.kind) {
      case lang::MemberDecl::Kind::kDisjunction: {
        if (member.alternatives.size() != 1) {
          return Status::Unsupported(
              "graph templates cannot contain disjunctions");
        }
        frames.emplace_back(member.alternatives[0].get(), 0);
        break;
      }
      case lang::MemberDecl::Kind::kGraphRef: {
        const std::string& pname = member.graph_ref.graph_name;
        const std::string alias = member.graph_ref.alias.empty()
                                      ? pname
                                      : member.graph_ref.alias;
        auto it = params.find(pname);
        if (it == params.end()) {
          return Status::NotFound("template references parameter '" + pname +
                                  "' which was not supplied");
        }
        Graph copy = it->second.MaterializeCopy();
        NodeId begin = static_cast<NodeId>(a.work.NumNodes());
        // Absorb manually so the union-find stays in sync.
        for (size_t v = 0; v < copy.NumNodes(); ++v) {
          const Graph::Node& n = copy.node(static_cast<NodeId>(v));
          NodeId id = a.Add(n.name, n.attrs);
          if (!n.name.empty()) a.scope[alias + "." + n.name] = id;
        }
        for (size_t e = 0; e < copy.NumEdges(); ++e) {
          const Graph::Edge& ed = copy.edge(static_cast<EdgeId>(e));
          a.work.AddEdge(ed.src + begin, ed.dst + begin, ed.name, ed.attrs);
        }
        a.ranges[alias] = {begin, static_cast<NodeId>(a.work.NumNodes())};
        break;
      }
      case lang::MemberDecl::Kind::kNode: {
        const std::string& name = member.node.name;
        AttrTuple attrs;
        // `node P.v1` initializes from the parameter's bound node.
        size_t dot = name.find('.');
        if (dot != std::string::npos) {
          std::string head = name.substr(0, dot);
          std::string rest = name.substr(dot + 1);
          auto it = params.find(head);
          if (it != params.end()) {
            const Graph* src = nullptr;
            NodeId v = kInvalidNode;
            if (!it->second.ResolveNode(rest, &src, &v)) {
              return Status::NotFound("template node '" + name +
                                      "': parameter '" + head +
                                      "' has no node '" + rest + "'");
            }
            attrs = src->node(v).attrs;
          }
        }
        if (member.node.tuple) {
          GQL_RETURN_IF_ERROR(eval_tuple(*member.node.tuple, &attrs));
        }
        NodeId id = a.Add(name, std::move(attrs));
        if (!name.empty()) a.scope[name] = id;
        break;
      }
      case lang::MemberDecl::Kind::kEdge: {
        std::string src_name = Join(member.edge.src, ".");
        std::string dst_name = Join(member.edge.dst, ".");
        auto sit = a.scope.find(src_name);
        auto dit = a.scope.find(dst_name);
        if (sit == a.scope.end()) {
          return Status::NotFound("template edge endpoint '" + src_name +
                                  "' is not declared");
        }
        if (dit == a.scope.end()) {
          return Status::NotFound("template edge endpoint '" + dst_name +
                                  "' is not declared");
        }
        AttrTuple attrs;
        if (member.edge.tuple) {
          GQL_RETURN_IF_ERROR(eval_tuple(*member.edge.tuple, &attrs));
        }
        a.work.AddEdge(sit->second, dit->second, member.edge.name,
                       std::move(attrs));
        break;
      }
      case lang::MemberDecl::Kind::kExport: {
        std::string source = Join(member.export_decl.source, ".");
        auto it = a.scope.find(source);
        if (it == a.scope.end()) {
          return Status::NotFound("template export source '" + source +
                                  "' is not declared");
        }
        a.scope[member.export_decl.as] = it->second;
        break;
      }
      case lang::MemberDecl::Kind::kUnify: {
        // Classify operands: concrete scope entries vs at most one
        // existential variable `A.x` over an absorbed parameter A.
        std::vector<NodeId> concrete;
        std::string var_name;
        std::pair<NodeId, NodeId> var_range{0, 0};
        for (const auto& path : member.unify.names) {
          std::string joined = Join(path, ".");
          auto sit = a.scope.find(joined);
          if (sit != a.scope.end()) {
            concrete.push_back(sit->second);
            continue;
          }
          auto rit = a.ranges.find(path[0]);
          if (path.size() >= 2 && rit != a.ranges.end()) {
            if (!var_name.empty()) {
              return Status::Unsupported(
                  "unify supports at most one existential variable, got '" +
                  var_name + "' and '" + joined + "'");
            }
            var_name = joined;
            var_range = rit->second;
            continue;
          }
          return Status::NotFound("unify target '" + joined +
                                  "' is not declared");
        }
        if (concrete.empty()) {
          return Status::InvalidArgument(
              "unify requires at least one concrete node");
        }

        auto unify_all = [&](NodeId extra) {
          NodeId first = concrete[0];
          for (size_t i = 1; i < concrete.size(); ++i) {
            a.Union(first, concrete[i]);
          }
          if (extra != kInvalidNode) a.Union(first, extra);
        };

        if (member.unify.where == nullptr) {
          if (!var_name.empty()) {
            return Status::InvalidArgument(
                "existential unify ('" + var_name +
                "') requires a where clause");
          }
          unify_all(kInvalidNode);
          break;
        }

        // Conditional unification: evaluate the predicate against the
        // working graph, with scope names (and the candidate variable)
        // resolving to union-find roots.
        std::unordered_map<std::string, NodeId> eval_names;
        for (const auto& [n, id] : a.scope) eval_names[n] = a.Find(id);
        Bindings bindings = param_bindings;
        BoundGraph work_bound;
        work_bound.attr_graph = &a.work;
        work_bound.names = &eval_names;
        bindings.SetDefault(work_bound);

        if (var_name.empty()) {
          GQL_ASSIGN_OR_RETURN(bool ok,
                               EvalPredicate(*member.unify.where, bindings));
          if (ok) unify_all(kInvalidNode);
          break;
        }
        for (NodeId x = var_range.first; x < var_range.second; ++x) {
          // Skip candidates that were already merged away (their root is
          // a different node); evaluating the root keeps semantics stable.
          NodeId root = a.Find(x);
          if (root != x) continue;
          eval_names[var_name] = root;
          GQL_ASSIGN_OR_RETURN(bool ok,
                               EvalPredicate(*member.unify.where, bindings));
          if (ok) {
            unify_all(root);
            break;
          }
        }
        break;
      }
    }
  }

  // Compact union-find classes into the result graph; merge edges whose
  // endpoints coincide after unification.
  Graph out(decl_.name);
  if (decl_.tuple) {
    AttrTuple gattrs;
    GQL_RETURN_IF_ERROR(eval_tuple(*decl_.tuple, &gattrs));
    out.attrs() = std::move(gattrs);
  }
  std::vector<NodeId> compact(a.work.NumNodes(), kInvalidNode);
  for (size_t i = 0; i < a.work.NumNodes(); ++i) {
    NodeId root = a.Find(static_cast<NodeId>(i));
    if (compact[root] == kInvalidNode) {
      compact[root] =
          out.AddNode(a.work.node(root).name, a.work.node(root).attrs);
    }
    compact[i] = compact[root];
  }
  std::unordered_map<uint64_t, EdgeId> seen;
  for (size_t e = 0; e < a.work.NumEdges(); ++e) {
    const Graph::Edge& ed = a.work.edge(static_cast<EdgeId>(e));
    NodeId u = compact[ed.src];
    NodeId v = compact[ed.dst];
    if (a.any_unify) {
      NodeId lo = std::min(u, v);
      NodeId hi = std::max(u, v);
      uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
          static_cast<uint32_t>(hi);
      auto it = seen.find(key);
      if (it != seen.end()) {
        out.edge(it->second).attrs.MergeFrom(ed.attrs);
        continue;
      }
      seen[key] = static_cast<EdgeId>(out.NumEdges());
    }
    out.AddEdge(u, v, ed.name, ed.attrs);
  }
  return out;
}

}  // namespace graphql::algebra
