#include "algebra/matched_graph.h"

#include <unordered_set>

namespace graphql::algebra {

NodeId MatchedGraph::DataNode(const std::string& name) const {
  auto it = pattern->node_names().find(name);
  if (it == pattern->node_names().end()) return kInvalidNode;
  NodeId u = it->second;
  if (u < 0 || static_cast<size_t>(u) >= node_mapping.size()) {
    return kInvalidNode;
  }
  return node_mapping[u];
}

BoundGraph MatchedGraph::Bound() const {
  BoundGraph bound;
  bound.attr_graph = data;
  bound.names = &pattern->node_names();
  bound.mapping = &node_mapping;
  bound.edge_names = &pattern->edge_names();
  bound.edge_mapping = &edge_mapping;
  return bound;
}

Graph MatchedGraph::Materialize() const {
  const Graph& motif = pattern->graph();
  Graph out(pattern->name());
  out.attrs() = data->attrs();
  out.Reserve(motif.NumNodes(), motif.NumEdges());
  for (size_t u = 0; u < motif.NumNodes(); ++u) {
    NodeId v = node_mapping[u];
    out.AddNode(motif.node(static_cast<NodeId>(u)).name,
                data->node(v).attrs);
  }
  for (size_t e = 0; e < motif.NumEdges(); ++e) {
    const Graph::Edge& pe = motif.edge(static_cast<EdgeId>(e));
    AttrTuple attrs;
    if (e < edge_mapping.size() && edge_mapping[e] != kInvalidEdge) {
      attrs = data->edge(edge_mapping[e]).attrs;
    }
    out.AddEdge(pe.src, pe.dst, pe.name, std::move(attrs));
  }
  return out;
}

bool MatchedGraph::Verify() const {
  const Graph& motif = pattern->graph();
  if (node_mapping.size() != motif.NumNodes()) return false;
  std::unordered_set<NodeId> used;
  for (size_t u = 0; u < motif.NumNodes(); ++u) {
    NodeId v = node_mapping[u];
    if (v == kInvalidNode || static_cast<size_t>(v) >= data->NumNodes()) {
      return false;
    }
    if (!used.insert(v).second) return false;  // Not injective.
    if (!pattern->NodeCompatible(static_cast<NodeId>(u), *data, v)) {
      return false;
    }
  }
  for (size_t e = 0; e < motif.NumEdges(); ++e) {
    const Graph::Edge& pe = motif.edge(static_cast<EdgeId>(e));
    NodeId du = node_mapping[pe.src];
    NodeId dv = node_mapping[pe.dst];
    if (!data->HasEdgeBetween(du, dv)) return false;
    EdgeId de =
        e < edge_mapping.size() ? edge_mapping[e] : data->FindEdge(du, dv);
    if (de == kInvalidEdge) return false;
    if (!pattern->EdgeCompatible(static_cast<EdgeId>(e), *data, de)) {
      return false;
    }
  }
  if (pattern->has_global_pred()) {
    Result<bool> r =
        pattern->EvalGlobalPred(*data, node_mapping, edge_mapping);
    if (!r.ok() || !r.value()) return false;
  }
  return true;
}

GraphCollection Materialize(const std::vector<MatchedGraph>& matches) {
  GraphCollection out;
  for (const MatchedGraph& m : matches) out.Add(m.Materialize());
  return out;
}

}  // namespace graphql::algebra
