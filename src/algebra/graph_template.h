#ifndef GRAPHQL_ALGEBRA_GRAPH_TEMPLATE_H_
#define GRAPHQL_ALGEBRA_GRAPH_TEMPLATE_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "algebra/matched_graph.h"
#include "common/result.h"
#include "graph/graph.h"
#include "lang/ast.h"

namespace graphql::algebra {

/// An actual parameter passed to a graph template: either a plain graph
/// (e.g. the accumulator of a `let` clause) or a matched graph (the binding
/// produced by a selection).
class TemplateParam {
 public:
  TemplateParam() = default;
  static TemplateParam Plain(const Graph* g) {
    TemplateParam p;
    p.plain_ = g;
    return p;
  }
  static TemplateParam Matched(const MatchedGraph* m) {
    TemplateParam p;
    p.matched_ = m;
    return p;
  }

  bool is_plain() const { return plain_ != nullptr; }
  bool is_matched() const { return matched_ != nullptr; }
  const Graph* plain() const { return plain_; }
  const MatchedGraph* matched() const { return matched_; }

  /// BoundGraph view for expression evaluation (`P.v1.name`).
  BoundGraph Bound() const;

  /// Resolves a node name local to the parameter (e.g. "v1" for `P.v1`) to
  /// the graph holding its attributes and its id there. Returns false if
  /// unknown.
  bool ResolveNode(const std::string& dotted, const Graph** graph,
                   NodeId* node) const;

  /// Copies the parameter's graph out: the plain graph verbatim, or the
  /// materialized matched subgraph.
  Graph MaterializeCopy() const;

 private:
  const Graph* plain_ = nullptr;
  const MatchedGraph* matched_ = nullptr;
};

/// A graph template (Definition 4.4): formal parameters (referenced by name
/// inside the body) plus a body of node/edge/graph/unify members.
/// Instantiation with actual parameters produces a concrete graph — this is
/// the primitive composition operator's engine.
///
/// Member semantics (Figures 4.11–4.13):
///  - `graph C;` copies the parameter C into the result; its named nodes
///    become addressable as `C.<name>`.
///  - `node P.v1 <tuple>?;` creates a node initialized from the node bound
///    to `P.v1` (attributes copied), then applies the tuple template whose
///    values are expressions over the parameters. A plain `node x;` creates
///    a fresh node.
///  - `edge e (a, b) <tuple>?;` connects declared/absorbed nodes.
///  - `unify a, b (where pred)?;` merges nodes; when one operand is
///    `C.x` with `x` unbound in C, it denotes an existential variable over
///    C's nodes: the first node satisfying the predicate is unified (the
///    paper's conditional unification, Figure 4.12). Edges whose endpoints
///    become equal are merged automatically.
class GraphTemplate {
 public:
  /// Wraps a declaration as a template. Disjunction/repetition inside a
  /// template body is rejected at Instantiate time.
  static Result<GraphTemplate> Create(lang::GraphDecl decl);

  /// Parses source text as one `graph ...` declaration.
  static Result<GraphTemplate> Parse(std::string_view source);

  const std::string& name() const { return decl_.name; }
  const lang::GraphDecl& decl() const { return decl_; }

  /// Instantiates the template with actual parameters keyed by formal name.
  Result<Graph> Instantiate(
      const std::unordered_map<std::string, TemplateParam>& params) const;

 private:
  lang::GraphDecl decl_;
};

}  // namespace graphql::algebra

#endif  // GRAPHQL_ALGEBRA_GRAPH_TEMPLATE_H_
