#ifndef GRAPHQL_ALGEBRA_OPS_H_
#define GRAPHQL_ALGEBRA_OPS_H_

#include <vector>

#include "algebra/graph_template.h"
#include "algebra/matched_graph.h"
#include "common/result.h"
#include "graph/collection.h"

namespace graphql::algebra {

/// Bulk operators of the graph algebra (Section 3.3). Each takes one or
/// more collections of graphs and produces a collection of graphs; together
/// with selection (match::SelectCollection — layered above this module so
/// it can use the optimized access methods) and primitive composition, the
/// five basic operators are relationally complete.

/// Cartesian product C x D: one output graph per pair, containing the two
/// constituent graphs unconnected. Constituents keep their names and become
/// addressable as `G1`/`G2` subcomponents via name prefixes.
GraphCollection CartesianProduct(const GraphCollection& c,
                                 const GraphCollection& d);

/// Valued join: C x D filtered by a predicate over the constituent graphs'
/// attributes (Figure 4.10). The predicate sees each constituent under its
/// own graph name (e.g. `G1.id == G2.id`); pairs where evaluation fails
/// with an error are dropped.
Result<GraphCollection> ValuedJoin(const GraphCollection& c,
                                   const GraphCollection& d,
                                   const lang::ExprPtr& predicate);

/// Primitive composition w_T(C): instantiates a single-parameter template
/// for every matched graph in `matches`, binding the parameter to the
/// pattern's name (Section 3.3, Composition).
Result<GraphCollection> Compose(const GraphTemplate& tmpl,
                                const std::vector<MatchedGraph>& matches);

/// Set operators. Membership uses whole-graph identity (same structure,
/// names, and attributes under the identity mapping), matching the bulk
/// relational semantics; graphs are not deduplicated within one input.
GraphCollection UnionAll(const GraphCollection& c, const GraphCollection& d);
GraphCollection SetUnion(const GraphCollection& c, const GraphCollection& d);
GraphCollection SetDifference(const GraphCollection& c,
                              const GraphCollection& d);
GraphCollection SetIntersection(const GraphCollection& c,
                                const GraphCollection& d);

// ---------------------------------------------------------------------------
// Ordering and aggregation (the paper's Section 7 lists "ordering
// (ranking), aggregation (OLAP processing)" as open operator work; these
// are straightforward bulk implementations in the same graphs-at-a-time
// style: collections in, collections/graphs out).
// ---------------------------------------------------------------------------

/// Stable-sorts a collection by a per-graph key expression (evaluated with
/// the member graph as the default binding, also bound under its own
/// name). Members whose key evaluates to null or fails to resolve sort
/// after all others, preserving input order among themselves.
Result<GraphCollection> OrderBy(const GraphCollection& c,
                                const lang::ExprPtr& key,
                                bool descending = false);

/// Aggregate over a per-graph value expression. Returns a single-node
/// graph whose node carries `count` (members with a non-null value) plus,
/// when at least one value is numeric, `sum`, `min`, `max`, and `avg` —
/// the relational-simulation convention of Theorem 4.5 (a tuple is a
/// one-node graph).
Result<Graph> Aggregate(const GraphCollection& c,
                        const lang::ExprPtr& value_expr,
                        const std::string& result_name = "agg");

/// Groups members by a key expression and returns one single-node graph
/// per group with attributes `key` and `count`, ordered by first
/// appearance of the key.
Result<GraphCollection> GroupCount(const GraphCollection& c,
                                   const lang::ExprPtr& key);

}  // namespace graphql::algebra

#endif  // GRAPHQL_ALGEBRA_OPS_H_
