#ifndef GRAPHQL_ALGEBRA_PATTERN_H_
#define GRAPHQL_ALGEBRA_PATTERN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/expr.h"
#include "common/result.h"
#include "common/symbols.h"
#include "graph/graph.h"
#include "motif/builder.h"

namespace graphql {
class GraphSnapshot;
}

namespace graphql::algebra {

/// A graph pattern P = (M, F): a graph motif plus a predicate on its
/// attributes (Definition 4.1). This class owns the compiled form used by
/// the matcher:
///  - the concrete motif structure (a Graph whose node/edge attributes act
///    as equality constraints, e.g. `node v <label="A">` or a tuple tag),
///  - per-node and per-edge predicate lists (inline `where` clauses plus
///    conjuncts of the graph-wide predicate that reference exactly one node
///    or one edge — the paper's predicate pushdown, Section 4.1),
///  - the residual graph-wide predicate (e.g. `u1.label == u2.label`).
///
/// Thread-compatibility: the two-argument NodeCompatible/EdgeCompatible
/// overloads use an internal scratch mapping, so they must not be called
/// concurrently on one pattern. Concurrent callers (the parallel pipeline
/// stages) pass their own per-worker PatternScratch to the overloads below;
/// everything else on a compiled pattern is read-only.
class PatternScratch;

class GraphPattern {
 public:
  /// Compiles a declaration into a single pattern. Fails if the motif uses
  /// disjunction or repetition (use CreateAll for those).
  static Result<GraphPattern> Create(
      const lang::GraphDecl& decl,
      const motif::MotifRegistry* registry = nullptr,
      motif::BuildOptions options = {});

  /// Compiles a (possibly recursive / disjunctive) declaration into the
  /// pattern alternatives it derives; a graph matches the pattern if it
  /// matches any alternative (Definition 4.2, recursive patterns).
  static Result<std::vector<GraphPattern>> CreateAll(
      const lang::GraphDecl& decl,
      const motif::MotifRegistry* registry = nullptr,
      motif::BuildOptions options = {});

  /// Parses source text as one `graph ...` declaration and compiles it.
  static Result<GraphPattern> Parse(
      std::string_view source, const motif::MotifRegistry* registry = nullptr,
      motif::BuildOptions options = {});

  /// Builds a pattern directly from a concrete graph: every node/edge
  /// attribute becomes an equality constraint. Programmatic entry point
  /// used by the workload generators.
  static GraphPattern FromGraph(Graph motif);

  const std::string& name() const { return name_; }
  const Graph& graph() const { return built_.graph; }
  const std::unordered_map<std::string, NodeId>& node_names() const {
    return built_.node_names;
  }
  const std::unordered_map<std::string, EdgeId>& edge_names() const {
    return built_.edge_names;
  }

  /// True if data node `v` can host pattern node `u`: tuple tag matches,
  /// every pattern attribute equals the data attribute, and every pushed
  /// node predicate holds. This is the feasible-mate test F_u(v).
  bool NodeCompatible(NodeId u, const Graph& data, NodeId v) const;

  /// True if data edge `de` can host pattern edge `pe` (tag, attribute
  /// equality, pushed edge predicates F_e).
  bool EdgeCompatible(EdgeId pe, const Graph& data, EdgeId de) const;

  /// Thread-safe variants: evaluate pushed predicates through the caller's
  /// scratch instead of the shared internal one. Each concurrent worker
  /// owns one PatternScratch (resized to this pattern on first use).
  bool NodeCompatible(NodeId u, const Graph& data, NodeId v,
                      PatternScratch* scratch) const;
  bool EdgeCompatible(EdgeId pe, const Graph& data, EdgeId de,
                      PatternScratch* scratch) const;

  /// Snapshot fast paths: identical verdicts to the Graph overloads, but
  /// tag and attribute-equality checks compare pre-interned symbol ids
  /// against the snapshot's columns — no std::string is touched unless
  /// the node/edge carries pushed predicates (which still evaluate
  /// against `data` through the expression engine). `data` must be the
  /// graph `snap` was compiled from.
  bool NodeCompatible(NodeId u, const GraphSnapshot& snap, const Graph& data,
                      NodeId v) const;
  bool NodeCompatible(NodeId u, const GraphSnapshot& snap, const Graph& data,
                      NodeId v, PatternScratch* scratch) const;
  bool EdgeCompatible(EdgeId pe, const GraphSnapshot& snap, const Graph& data,
                      EdgeId de) const;
  bool EdgeCompatible(EdgeId pe, const GraphSnapshot& snap, const Graph& data,
                      EdgeId de, PatternScratch* scratch) const;

  /// Pre-interned tuple tag of a pattern node/edge (kNoSymbol = untagged).
  SymbolId node_tag_sym(NodeId u) const { return node_tag_syms_[u]; }
  SymbolId edge_tag_sym(EdgeId e) const { return edge_tag_syms_[e]; }

  /// One attribute-equality constraint in interned form: the data entity
  /// must carry attribute `attr_sym` with a value equal to `value`
  /// (`val_sym` short-circuits the comparison for string constants).
  struct SymReq {
    SymbolId attr_sym;
    Value value;
    SymbolId val_sym;  // kNoSymbol when `value` is not a string.
  };

  /// Interned attribute-equality constraints of node `u` — the exact
  /// probes NodeCompatibleSnap runs per candidate, exposed so the
  /// vectorized kernels can evaluate them column-at-a-time instead.
  const std::vector<SymReq>& NodeReqs(NodeId u) const {
    return node_reqs_[u];
  }

  /// Evaluates a subset of the predicates pushed to node `u` (indices into
  /// NodePreds(u)), with bindings and verdict identical to the full
  /// NodePredsOk pass. The vectorized kernels route only the conjuncts the
  /// bytecode compiler did not cover through this AST-interpreter path.
  bool NodePredsOkSubset(NodeId u, const Graph& data, NodeId v,
                         const std::vector<uint32_t>& indices,
                         PatternScratch* scratch) const;

  /// True if some conjunct could not be pushed down to a node or edge.
  bool has_global_pred() const { return !global_preds_.empty(); }

  /// Evaluates the residual graph-wide predicate under a complete mapping.
  /// `edge_mapping` may be empty when the pattern has no edge-attribute
  /// references in its residual predicate.
  Result<bool> EvalGlobalPred(const Graph& data,
                              const std::vector<NodeId>& node_mapping,
                              const std::vector<EdgeId>& edge_mapping) const;

  /// Number of predicates pushed to node u (used by cost statistics).
  size_t NodePredCount(NodeId u) const {
    return node_preds_[u].size();
  }

  /// True if pattern edge `e` carries any pushed predicate (the matcher
  /// skips edge-compatibility scans for predicate- and attribute-free
  /// edges).
  bool EdgeHasPredicates(EdgeId e) const { return !edge_preds_[e].empty(); }

  /// Raw predicate expressions (consumed by the Datalog translator).
  const std::vector<lang::ExprPtr>& NodePreds(NodeId u) const {
    return node_preds_[u];
  }
  const std::vector<lang::ExprPtr>& EdgePreds(EdgeId e) const {
    return edge_preds_[e];
  }
  const std::vector<lang::ExprPtr>& GlobalPreds() const {
    return global_preds_;
  }

 private:
  GraphPattern() = default;

  static Result<GraphPattern> Compile(std::string pattern_name,
                                      motif::BuiltGraph built,
                                      const lang::ExprPtr& where);

  /// Classifies a conjunct: returns the single pattern node (or edge) it
  /// references, or pushes it to the residual global list.
  void RouteConjunct(const lang::ExprPtr& conjunct);

  /// Interns tags and attribute constraints into SymbolTable::Global()
  /// (called once at compile; the snapshot compatibility paths read these).
  void InternSymbols();

  std::string name_;
  motif::BuiltGraph built_;
  std::vector<std::vector<lang::ExprPtr>> node_preds_;
  std::vector<std::vector<lang::ExprPtr>> edge_preds_;
  std::vector<lang::ExprPtr> global_preds_;
  std::vector<SymbolId> node_tag_syms_;
  std::vector<SymbolId> edge_tag_syms_;
  std::vector<std::vector<SymReq>> node_reqs_;
  std::vector<std::vector<SymReq>> edge_reqs_;

  bool NodeCompatibleWith(NodeId u, const Graph& data, NodeId v,
                          std::vector<NodeId>* mapping) const;
  bool EdgeCompatibleWith(EdgeId pe, const Graph& data, EdgeId de,
                          std::vector<NodeId>* mapping,
                          std::vector<EdgeId>* edge_mapping) const;
  bool NodeCompatibleSnap(NodeId u, const GraphSnapshot& snap,
                          const Graph& data, NodeId v,
                          std::vector<NodeId>* mapping) const;
  bool EdgeCompatibleSnap(EdgeId pe, const GraphSnapshot& snap,
                          const Graph& data, EdgeId de,
                          std::vector<NodeId>* mapping,
                          std::vector<EdgeId>* edge_mapping) const;
  bool NodePredsOk(NodeId u, const Graph& data, NodeId v,
                   std::vector<NodeId>* mapping) const;
  bool EdgePredsOk(EdgeId pe, const Graph& data, EdgeId de,
                   std::vector<NodeId>* mapping,
                   std::vector<EdgeId>* edge_mapping) const;

  // Scratch state for predicate evaluation (see class comment).
  mutable std::vector<NodeId> scratch_mapping_;
  mutable std::vector<EdgeId> scratch_edge_mapping_;
};

/// Per-worker scratch mappings for the thread-safe compatibility overloads.
/// Grown lazily to the pattern it is used with; entries are invalid outside
/// a call, so one scratch can be reused across patterns and stages.
class PatternScratch {
 public:
  void Reset() {
    mapping_.clear();
    edge_mapping_.clear();
  }

 private:
  friend class GraphPattern;
  std::vector<NodeId> mapping_;
  std::vector<EdgeId> edge_mapping_;
};

}  // namespace graphql::algebra

#endif  // GRAPHQL_ALGEBRA_PATTERN_H_
