#ifndef GRAPHQL_ALGEBRA_EXPR_H_
#define GRAPHQL_ALGEBRA_EXPR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "lang/ast.h"

namespace graphql::algebra {

/// One graph visible to dotted-name resolution during predicate or template
/// evaluation.
///
/// Two configurations:
///  - Plain graph: `names`/`mapping` null; node lookups go through
///    Graph::FindNode and attributes are read from `attr_graph` directly.
///  - Matched graph: `names` maps dotted pattern names to *pattern* node
///    ids and `mapping` translates those to nodes of `attr_graph` (the data
///    graph). This is how `P.v1.name` reads the attribute of the data node
///    bound to pattern node v1.
struct BoundGraph {
  const Graph* attr_graph = nullptr;
  const std::unordered_map<std::string, NodeId>* names = nullptr;
  const std::vector<NodeId>* mapping = nullptr;
  const std::unordered_map<std::string, EdgeId>* edge_names = nullptr;
  const std::vector<EdgeId>* edge_mapping = nullptr;

  /// Resolves a dotted node name to a node of attr_graph; kInvalidNode if
  /// unknown or (for matched graphs) currently unmapped.
  NodeId ResolveNode(const std::string& dotted) const;

  /// Resolves a dotted edge name to an edge of attr_graph; kInvalidEdge if
  /// unknown or unmapped.
  EdgeId ResolveEdge(const std::string& dotted) const;
};

/// Name-resolution environment for expression evaluation. Holds named graph
/// bindings (e.g. P -> a matched graph, C -> an accumulator graph), an
/// optional default binding (the enclosing pattern, so `v1.name` works
/// without the `P.` prefix), and an optional current node/edge for
/// single-identifier attribute references inside per-node and per-edge
/// `where` clauses.
class Bindings {
 public:
  void Bind(const std::string& name, BoundGraph g) { named_[name] = g; }
  void SetDefault(BoundGraph g) {
    default_ = g;
    has_default_ = true;
  }
  void SetCurrentNode(const Graph* g, NodeId v) {
    current_node_graph_ = g;
    current_node_ = v;
  }
  void ClearCurrentNode() { current_node_graph_ = nullptr; }
  void SetCurrentEdge(const Graph* g, EdgeId e) {
    current_edge_graph_ = g;
    current_edge_ = e;
  }
  void ClearCurrentEdge() { current_edge_graph_ = nullptr; }

  /// Resolves a dotted path to an attribute value. Resolution order:
  ///  1. single identifier: current node attr, then current edge attr, then
  ///     default binding's graph attribute;
  ///  2. `B.rest` where B is a named binding: within B, `rest` is a graph
  ///     attribute (1 element) or node/edge path + attribute;
  ///  3. otherwise the whole path resolves against the default binding:
  ///     longest node/edge-name prefix + attribute.
  /// Missing attributes resolve to the null Value (predicates on absent
  /// attributes are simply false), but unknown node paths are an error.
  Result<Value> ResolvePath(const std::vector<std::string>& path) const;

 private:
  Result<Value> ResolveInGraph(const BoundGraph& g,
                               const std::vector<std::string>& path,
                               size_t start, bool allow_graph_attr) const;

  std::unordered_map<std::string, BoundGraph> named_;
  BoundGraph default_;
  bool has_default_ = false;
  const Graph* current_node_graph_ = nullptr;
  NodeId current_node_ = kInvalidNode;
  const Graph* current_edge_graph_ = nullptr;
  EdgeId current_edge_ = kInvalidEdge;
};

/// Evaluates an expression tree against the bindings. Comparison operators
/// yield booleans; `&`/`|` use truthiness; arithmetic follows Value rules.
/// Equality/inequality on a null operand yields false/true respectively
/// (absent attribute never equals anything), other comparisons on null are
/// a TypeError.
Result<Value> EvalExpr(const lang::Expr& expr, const Bindings& bindings);

/// Evaluates an expression and coerces the result to a boolean.
Result<bool> EvalPredicate(const lang::Expr& expr, const Bindings& bindings);

/// Walks `expr` and reports every dotted name it references.
void CollectNames(const lang::Expr& expr,
                  std::vector<std::vector<std::string>>* out);

/// Splits a predicate into its top-level conjuncts (children of `&`).
void SplitConjuncts(const lang::ExprPtr& expr,
                    std::vector<lang::ExprPtr>* out);

}  // namespace graphql::algebra

#endif  // GRAPHQL_ALGEBRA_EXPR_H_
