#include "algebra/ops.h"

#include <algorithm>
#include <unordered_map>

namespace graphql::algebra {

namespace {

/// Builds the product graph of a pair: both constituents absorbed,
/// unconnected, with their node names prefixed by their graph names so the
/// components stay addressable.
Graph PairGraph(const Graph& g1, const Graph& g2) {
  Graph out;
  std::string p1 = g1.name().empty() ? "" : g1.name() + ".";
  std::string p2 = g2.name().empty() ? "" : g2.name() + ".";
  out.Reserve(g1.NumNodes() + g2.NumNodes(), g1.NumEdges() + g2.NumEdges());
  out.Absorb(g1, p1);
  out.Absorb(g2, p2);
  // Keep the constituents' graph-level attributes reachable by prefixing
  // their names (product graphs have no attributes of their own).
  for (const auto& [k, v] : g1.attrs().attrs()) {
    out.attrs().Set(p1 + k, v);
  }
  for (const auto& [k, v] : g2.attrs().attrs()) {
    out.attrs().Set(p2 + k, v);
  }
  return out;
}

bool ContainsIdentical(const GraphCollection& c, const Graph& g) {
  for (const Graph& member : c) {
    if (member.IdenticalTo(g)) return true;
  }
  return false;
}

}  // namespace

GraphCollection CartesianProduct(const GraphCollection& c,
                                 const GraphCollection& d) {
  GraphCollection out;
  for (const Graph& g1 : c) {
    for (const Graph& g2 : d) {
      out.Add(PairGraph(g1, g2));
    }
  }
  return out;
}

Result<GraphCollection> ValuedJoin(const GraphCollection& c,
                                   const GraphCollection& d,
                                   const lang::ExprPtr& predicate) {
  GraphCollection out;
  for (const Graph& g1 : c) {
    for (const Graph& g2 : d) {
      Bindings bindings;
      BoundGraph b1;
      b1.attr_graph = &g1;
      BoundGraph b2;
      b2.attr_graph = &g2;
      if (!g1.name().empty()) bindings.Bind(g1.name(), b1);
      if (!g2.name().empty()) bindings.Bind(g2.name(), b2);
      GQL_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*predicate, bindings));
      if (keep) out.Add(PairGraph(g1, g2));
    }
  }
  return out;
}

Result<GraphCollection> Compose(const GraphTemplate& tmpl,
                                const std::vector<MatchedGraph>& matches) {
  GraphCollection out;
  for (const MatchedGraph& m : matches) {
    std::unordered_map<std::string, TemplateParam> params;
    params[m.pattern->name()] = TemplateParam::Matched(&m);
    GQL_ASSIGN_OR_RETURN(Graph g, tmpl.Instantiate(params));
    out.Add(std::move(g));
  }
  return out;
}

GraphCollection UnionAll(const GraphCollection& c, const GraphCollection& d) {
  GraphCollection out;
  for (const Graph& g : c) out.Add(g);
  for (const Graph& g : d) out.Add(g);
  return out;
}

GraphCollection SetUnion(const GraphCollection& c, const GraphCollection& d) {
  GraphCollection out;
  for (const Graph& g : c) out.Add(g);
  for (const Graph& g : d) {
    if (!ContainsIdentical(c, g)) out.Add(g);
  }
  return out;
}

GraphCollection SetDifference(const GraphCollection& c,
                              const GraphCollection& d) {
  GraphCollection out;
  for (const Graph& g : c) {
    if (!ContainsIdentical(d, g)) out.Add(g);
  }
  return out;
}

GraphCollection SetIntersection(const GraphCollection& c,
                                const GraphCollection& d) {
  GraphCollection out;
  for (const Graph& g : c) {
    if (ContainsIdentical(d, g)) out.Add(g);
  }
  return out;
}

namespace {

/// Evaluates `expr` against one member graph; null Value when the key is
/// absent or unresolvable (those members sort/aggregate as missing).
Value EvalMemberKey(const Graph& g, const lang::ExprPtr& expr) {
  Bindings bindings;
  BoundGraph bound;
  bound.attr_graph = &g;
  bindings.SetDefault(bound);
  if (!g.name().empty()) bindings.Bind(g.name(), bound);
  Result<Value> v = EvalExpr(*expr, bindings);
  return v.ok() ? std::move(v).value() : Value();
}

}  // namespace

Result<GraphCollection> OrderBy(const GraphCollection& c,
                                const lang::ExprPtr& key, bool descending) {
  if (key == nullptr) {
    return Status::InvalidArgument("OrderBy requires a key expression");
  }
  std::vector<std::pair<Value, size_t>> keyed;
  keyed.reserve(c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    keyed.emplace_back(EvalMemberKey(c[i], key), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&](const auto& a, const auto& b) {
                     // Nulls always sort last regardless of direction.
                     if (a.first.is_null() || b.first.is_null()) {
                       return !a.first.is_null() && b.first.is_null();
                     }
                     return descending ? b.first < a.first
                                       : a.first < b.first;
                   });
  GraphCollection out(c.name());
  for (const auto& [v, i] : keyed) out.Add(c[i]);
  return out;
}

Result<Graph> Aggregate(const GraphCollection& c,
                        const lang::ExprPtr& value_expr,
                        const std::string& result_name) {
  if (value_expr == nullptr) {
    return Status::InvalidArgument("Aggregate requires a value expression");
  }
  int64_t count = 0;
  bool any_numeric = false;
  double sum = 0;
  Value min_v;
  Value max_v;
  for (const Graph& g : c) {
    Value v = EvalMemberKey(g, value_expr);
    if (v.is_null()) continue;
    ++count;
    if (min_v.is_null() || v < min_v) min_v = v;
    if (max_v.is_null() || max_v < v) max_v = v;
    if (v.is_numeric()) {
      any_numeric = true;
      sum += v.NumericAsDouble();
    }
  }
  Graph out(result_name);
  AttrTuple attrs;
  attrs.Set("count", Value(count));
  if (any_numeric && count > 0) {
    attrs.Set("sum", Value(sum));
    attrs.Set("avg", Value(sum / static_cast<double>(count)));
  }
  if (count > 0) {
    attrs.Set("min", min_v);
    attrs.Set("max", max_v);
  }
  out.AddNode("t", std::move(attrs));
  return out;
}

Result<GraphCollection> GroupCount(const GraphCollection& c,
                                   const lang::ExprPtr& key) {
  if (key == nullptr) {
    return Status::InvalidArgument("GroupCount requires a key expression");
  }
  std::vector<Value> order;
  std::unordered_map<Value, int64_t, ValueHash> counts;
  for (const Graph& g : c) {
    Value v = EvalMemberKey(g, key);
    auto [it, inserted] = counts.try_emplace(v, 0);
    if (inserted) order.push_back(v);
    ++it->second;
  }
  GraphCollection out;
  for (const Value& v : order) {
    Graph g("group");
    AttrTuple attrs;
    attrs.Set("key", v);
    attrs.Set("count", Value(counts.at(v)));
    g.AddNode("t", std::move(attrs));
    out.Add(std::move(g));
  }
  return out;
}

}  // namespace graphql::algebra
