#include "algebra/pattern.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"
#include "graph/snapshot.h"
#include "lang/parser.h"

namespace graphql::algebra {

Result<GraphPattern> GraphPattern::Create(const lang::GraphDecl& decl,
                                          const motif::MotifRegistry* registry,
                                          motif::BuildOptions options) {
  GQL_ASSIGN_OR_RETURN(std::vector<GraphPattern> all,
                       CreateAll(decl, registry, options));
  if (all.size() != 1) {
    return Status::InvalidArgument(
        "pattern '" + decl.name + "' derives " + std::to_string(all.size()) +
        " motifs; use CreateAll for disjunctive or recursive patterns");
  }
  return std::move(all[0]);
}

Result<std::vector<GraphPattern>> GraphPattern::CreateAll(
    const lang::GraphDecl& decl, const motif::MotifRegistry* registry,
    motif::BuildOptions options) {
  options.tuples_as_attributes = true;
  motif::MotifBuilder builder(registry, options);
  GQL_ASSIGN_OR_RETURN(std::vector<motif::BuiltGraph> built, builder.Build(decl));
  std::vector<GraphPattern> out;
  out.reserve(built.size());
  for (motif::BuiltGraph& b : built) {
    GQL_ASSIGN_OR_RETURN(GraphPattern p,
                         Compile(decl.name, std::move(b), decl.where));
    out.push_back(std::move(p));
  }
  return out;
}

Result<GraphPattern> GraphPattern::Parse(std::string_view source,
                                         const motif::MotifRegistry* registry,
                                         motif::BuildOptions options) {
  GQL_ASSIGN_OR_RETURN(lang::GraphDecl decl, lang::Parser::ParseGraph(source));
  return Create(decl, registry, options);
}

GraphPattern GraphPattern::FromGraph(Graph motif) {
  GraphPattern p;
  p.name_ = motif.name();
  motif::BuiltGraph built;
  // Index node/edge names for reference resolution.
  for (size_t v = 0; v < motif.NumNodes(); ++v) {
    const auto& name = motif.node(static_cast<NodeId>(v)).name;
    if (!name.empty()) built.node_names[name] = static_cast<NodeId>(v);
  }
  for (size_t e = 0; e < motif.NumEdges(); ++e) {
    const auto& name = motif.edge(static_cast<EdgeId>(e)).name;
    if (!name.empty()) built.edge_names[name] = static_cast<EdgeId>(e);
  }
  built.node_wheres.resize(motif.NumNodes());
  built.edge_wheres.resize(motif.NumEdges());
  built.graph = std::move(motif);
  p.node_preds_.resize(built.graph.NumNodes());
  p.edge_preds_.resize(built.graph.NumEdges());
  p.scratch_mapping_.assign(built.graph.NumNodes(), kInvalidNode);
  p.scratch_edge_mapping_.assign(built.graph.NumEdges(), kInvalidEdge);
  p.built_ = std::move(built);
  p.InternSymbols();
  return p;
}

Result<GraphPattern> GraphPattern::Compile(std::string pattern_name,
                                           motif::BuiltGraph built,
                                           const lang::ExprPtr& where) {
  GraphPattern p;
  p.name_ = std::move(pattern_name);
  p.node_preds_.resize(built.graph.NumNodes());
  p.edge_preds_.resize(built.graph.NumEdges());
  for (size_t u = 0; u < built.node_wheres.size(); ++u) {
    for (const auto& w : built.node_wheres[u]) p.node_preds_[u].push_back(w);
  }
  for (size_t e = 0; e < built.edge_wheres.size(); ++e) {
    for (const auto& w : built.edge_wheres[e]) p.edge_preds_[e].push_back(w);
  }
  p.scratch_mapping_.assign(built.graph.NumNodes(), kInvalidNode);
  p.scratch_edge_mapping_.assign(built.graph.NumEdges(), kInvalidEdge);
  p.built_ = std::move(built);
  p.InternSymbols();

  std::vector<lang::ExprPtr> conjuncts;
  SplitConjuncts(where, &conjuncts);
  for (const lang::ExprPtr& c : conjuncts) p.RouteConjunct(c);
  return p;
}

void GraphPattern::InternSymbols() {
  SymbolTable& syms = SymbolTable::Global();
  const Graph& g = built_.graph;
  auto intern_tuple = [&syms](const AttrTuple& t, SymbolId* tag_sym,
                              std::vector<SymReq>* reqs) {
    *tag_sym = t.has_tag() ? syms.Intern(t.tag()) : kNoSymbol;
    reqs->reserve(t.attrs().size());
    for (const auto& [k, val] : t.attrs()) {
      reqs->push_back(SymReq{
          syms.Intern(k), val,
          val.is_string() ? syms.Intern(val.AsString()) : kNoSymbol});
    }
  };
  node_tag_syms_.resize(g.NumNodes());
  node_reqs_.resize(g.NumNodes());
  for (size_t u = 0; u < g.NumNodes(); ++u) {
    intern_tuple(g.node(static_cast<NodeId>(u)).attrs, &node_tag_syms_[u],
                 &node_reqs_[u]);
  }
  edge_tag_syms_.resize(g.NumEdges());
  edge_reqs_.resize(g.NumEdges());
  for (size_t e = 0; e < g.NumEdges(); ++e) {
    intern_tuple(g.edge(static_cast<EdgeId>(e)).attrs, &edge_tag_syms_[e],
                 &edge_reqs_[e]);
  }
}

void GraphPattern::RouteConjunct(const lang::ExprPtr& conjunct) {
  std::vector<std::vector<std::string>> paths;
  CollectNames(*conjunct, &paths);

  std::unordered_set<NodeId> nodes;
  std::unordered_set<EdgeId> edges;
  bool other = false;
  for (const auto& path : paths) {
    size_t start = 0;
    if (path.size() >= 2 && path[0] == name_ && !name_.empty()) start = 1;
    if (path.size() - start < 2) {
      other = true;  // Graph-attribute or bare reference: keep global.
      continue;
    }
    std::string prefix = path[start];
    for (size_t i = start + 1; i + 1 < path.size(); ++i) {
      prefix += ".";
      prefix += path[i];
    }
    auto nit = built_.node_names.find(prefix);
    if (nit != built_.node_names.end()) {
      nodes.insert(nit->second);
      continue;
    }
    auto eit = built_.edge_names.find(prefix);
    if (eit != built_.edge_names.end()) {
      edges.insert(eit->second);
      continue;
    }
    other = true;  // References something outside the pattern.
  }

  if (!other && nodes.size() == 1 && edges.empty()) {
    node_preds_[*nodes.begin()].push_back(conjunct);
    return;
  }
  if (!other && edges.size() == 1 && nodes.empty()) {
    edge_preds_[*edges.begin()].push_back(conjunct);
    return;
  }
  global_preds_.push_back(conjunct);
}

bool GraphPattern::NodeCompatible(NodeId u, const Graph& data,
                                  NodeId v) const {
  return NodeCompatibleWith(u, data, v, &scratch_mapping_);
}

bool GraphPattern::EdgeCompatible(EdgeId pe, const Graph& data,
                                  EdgeId de) const {
  return EdgeCompatibleWith(pe, data, de, &scratch_mapping_,
                            &scratch_edge_mapping_);
}

bool GraphPattern::NodeCompatible(NodeId u, const Graph& data, NodeId v,
                                  PatternScratch* scratch) const {
  if (scratch->mapping_.size() < built_.graph.NumNodes()) {
    scratch->mapping_.resize(built_.graph.NumNodes(), kInvalidNode);
  }
  return NodeCompatibleWith(u, data, v, &scratch->mapping_);
}

bool GraphPattern::EdgeCompatible(EdgeId pe, const Graph& data, EdgeId de,
                                  PatternScratch* scratch) const {
  if (scratch->mapping_.size() < built_.graph.NumNodes()) {
    scratch->mapping_.resize(built_.graph.NumNodes(), kInvalidNode);
  }
  if (scratch->edge_mapping_.size() < built_.graph.NumEdges()) {
    scratch->edge_mapping_.resize(built_.graph.NumEdges(), kInvalidEdge);
  }
  return EdgeCompatibleWith(pe, data, de, &scratch->mapping_,
                            &scratch->edge_mapping_);
}

bool GraphPattern::NodeCompatibleWith(NodeId u, const Graph& data, NodeId v,
                                      std::vector<NodeId>* mapping) const {
  const AttrTuple& want = built_.graph.node(u).attrs;
  const AttrTuple& have = data.node(v).attrs;
  if (want.has_tag() && want.tag() != have.tag()) return false;
  for (const auto& [k, val] : want.attrs()) {
    auto got = have.Get(k);
    if (!got || !(*got == val)) return false;
  }
  if (node_preds_[u].empty()) return true;
  return NodePredsOk(u, data, v, mapping);
}

bool GraphPattern::NodePredsOk(NodeId u, const Graph& data, NodeId v,
                               std::vector<NodeId>* mapping) const {
  Bindings bindings;
  BoundGraph bound;
  bound.attr_graph = &data;
  bound.names = &built_.node_names;
  bound.mapping = mapping;
  bindings.SetDefault(bound);
  if (!name_.empty()) bindings.Bind(name_, bound);
  bindings.SetCurrentNode(&data, v);
  (*mapping)[u] = v;
  bool ok = true;
  for (const lang::ExprPtr& pred : node_preds_[u]) {
    Result<bool> r = EvalPredicate(*pred, bindings);
    if (!r.ok() || !r.value()) {
      ok = false;
      break;
    }
  }
  (*mapping)[u] = kInvalidNode;
  return ok;
}

bool GraphPattern::NodePredsOkSubset(NodeId u, const Graph& data, NodeId v,
                                     const std::vector<uint32_t>& indices,
                                     PatternScratch* scratch) const {
  if (indices.empty()) return true;
  if (scratch->mapping_.size() < built_.graph.NumNodes()) {
    scratch->mapping_.resize(built_.graph.NumNodes(), kInvalidNode);
  }
  std::vector<NodeId>* mapping = &scratch->mapping_;
  Bindings bindings;
  BoundGraph bound;
  bound.attr_graph = &data;
  bound.names = &built_.node_names;
  bound.mapping = mapping;
  bindings.SetDefault(bound);
  if (!name_.empty()) bindings.Bind(name_, bound);
  bindings.SetCurrentNode(&data, v);
  (*mapping)[u] = v;
  bool ok = true;
  for (uint32_t i : indices) {
    Result<bool> r = EvalPredicate(*node_preds_[u][i], bindings);
    if (!r.ok() || !r.value()) {
      ok = false;
      break;
    }
  }
  (*mapping)[u] = kInvalidNode;
  return ok;
}

bool GraphPattern::EdgeCompatibleWith(EdgeId pe, const Graph& data, EdgeId de,
                                      std::vector<NodeId>* mapping,
                                      std::vector<EdgeId>* edge_mapping) const {
  const AttrTuple& want = built_.graph.edge(pe).attrs;
  const AttrTuple& have = data.edge(de).attrs;
  if (want.has_tag() && want.tag() != have.tag()) return false;
  for (const auto& [k, val] : want.attrs()) {
    auto got = have.Get(k);
    if (!got || !(*got == val)) return false;
  }
  if (edge_preds_[pe].empty()) return true;
  return EdgePredsOk(pe, data, de, mapping, edge_mapping);
}

bool GraphPattern::EdgePredsOk(EdgeId pe, const Graph& data, EdgeId de,
                               std::vector<NodeId>* mapping,
                               std::vector<EdgeId>* edge_mapping) const {
  Bindings bindings;
  BoundGraph bound;
  bound.attr_graph = &data;
  bound.names = &built_.node_names;
  bound.mapping = mapping;
  bound.edge_names = &built_.edge_names;
  bound.edge_mapping = edge_mapping;
  bindings.SetDefault(bound);
  if (!name_.empty()) bindings.Bind(name_, bound);
  bindings.SetCurrentEdge(&data, de);
  (*edge_mapping)[pe] = de;
  bool ok = true;
  for (const lang::ExprPtr& pred : edge_preds_[pe]) {
    Result<bool> r = EvalPredicate(*pred, bindings);
    if (!r.ok() || !r.value()) {
      ok = false;
      break;
    }
  }
  (*edge_mapping)[pe] = kInvalidEdge;
  return ok;
}

// The Snap paths mirror the tuple probes in NodeCompatibleWith /
// EdgeCompatibleWith exactly: the attribute must exist and compare equal
// under Value semantics. String-vs-string equality reduces to symbol
// equality; everything else (numbers, bools, nulls, cross-kind numeric
// equality) goes through Value::operator== on the column's stored Value.

bool GraphPattern::NodeCompatibleSnap(NodeId u, const GraphSnapshot& snap,
                                      const Graph& data, NodeId v,
                                      std::vector<NodeId>* mapping) const {
  if (node_tag_syms_[u] != kNoSymbol &&
      node_tag_syms_[u] != snap.node_tag_sym(v)) {
    return false;
  }
  for (const SymReq& r : node_reqs_[u]) {
    const GraphSnapshot::Column* col = snap.NodeColumn(r.attr_sym);
    if (col == nullptr) return false;
    if (r.val_sym != kNoSymbol) {
      // String constant: equal iff the stored value is the same string.
      if (col->FindValSym(v) != r.val_sym) return false;
    } else {
      const Value* got = col->Find(v);
      if (got == nullptr || !(*got == r.value)) return false;
    }
  }
  if (node_preds_[u].empty()) return true;
  return NodePredsOk(u, data, v, mapping);
}

bool GraphPattern::EdgeCompatibleSnap(EdgeId pe, const GraphSnapshot& snap,
                                      const Graph& data, EdgeId de,
                                      std::vector<NodeId>* mapping,
                                      std::vector<EdgeId>* edge_mapping) const {
  if (edge_tag_syms_[pe] != kNoSymbol &&
      edge_tag_syms_[pe] != snap.edge_tag_sym(de)) {
    return false;
  }
  for (const SymReq& r : edge_reqs_[pe]) {
    const GraphSnapshot::Column* col = snap.EdgeColumn(r.attr_sym);
    if (col == nullptr) return false;
    if (r.val_sym != kNoSymbol) {
      if (col->FindValSym(de) != r.val_sym) return false;
    } else {
      const Value* got = col->Find(de);
      if (got == nullptr || !(*got == r.value)) return false;
    }
  }
  if (edge_preds_[pe].empty()) return true;
  return EdgePredsOk(pe, data, de, mapping, edge_mapping);
}

bool GraphPattern::NodeCompatible(NodeId u, const GraphSnapshot& snap,
                                  const Graph& data, NodeId v) const {
  return NodeCompatibleSnap(u, snap, data, v, &scratch_mapping_);
}

bool GraphPattern::NodeCompatible(NodeId u, const GraphSnapshot& snap,
                                  const Graph& data, NodeId v,
                                  PatternScratch* scratch) const {
  if (scratch->mapping_.size() < built_.graph.NumNodes()) {
    scratch->mapping_.resize(built_.graph.NumNodes(), kInvalidNode);
  }
  return NodeCompatibleSnap(u, snap, data, v, &scratch->mapping_);
}

bool GraphPattern::EdgeCompatible(EdgeId pe, const GraphSnapshot& snap,
                                  const Graph& data, EdgeId de) const {
  return EdgeCompatibleSnap(pe, snap, data, de, &scratch_mapping_,
                            &scratch_edge_mapping_);
}

bool GraphPattern::EdgeCompatible(EdgeId pe, const GraphSnapshot& snap,
                                  const Graph& data, EdgeId de,
                                  PatternScratch* scratch) const {
  if (scratch->mapping_.size() < built_.graph.NumNodes()) {
    scratch->mapping_.resize(built_.graph.NumNodes(), kInvalidNode);
  }
  if (scratch->edge_mapping_.size() < built_.graph.NumEdges()) {
    scratch->edge_mapping_.resize(built_.graph.NumEdges(), kInvalidEdge);
  }
  return EdgeCompatibleSnap(pe, snap, data, de, &scratch->mapping_,
                            &scratch->edge_mapping_);
}

Result<bool> GraphPattern::EvalGlobalPred(
    const Graph& data, const std::vector<NodeId>& node_mapping,
    const std::vector<EdgeId>& edge_mapping) const {
  if (global_preds_.empty()) return true;
  Bindings bindings;
  BoundGraph bound;
  bound.attr_graph = &data;
  bound.names = &built_.node_names;
  bound.mapping = &node_mapping;
  bound.edge_names = &built_.edge_names;
  if (!edge_mapping.empty()) bound.edge_mapping = &edge_mapping;
  bindings.SetDefault(bound);
  if (!name_.empty()) bindings.Bind(name_, bound);
  for (const lang::ExprPtr& pred : global_preds_) {
    GQL_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*pred, bindings));
    if (!ok) return false;
  }
  return true;
}

}  // namespace graphql::algebra
