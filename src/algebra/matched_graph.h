#ifndef GRAPHQL_ALGEBRA_MATCHED_GRAPH_H_
#define GRAPHQL_ALGEBRA_MATCHED_GRAPH_H_

#include <vector>

#include "algebra/expr.h"
#include "algebra/pattern.h"
#include "graph/collection.h"
#include "graph/graph.h"

namespace graphql::algebra {

/// A matched graph <Phi, P, G> (Definition 4.3): the binding produced when
/// pattern P matches data graph G under the injective mapping Phi. It
/// behaves like a graph (Materialize) while exposing the binding so that
/// composition operators and predicates can navigate `P.v1.attr` paths.
///
/// Lifetimes: a MatchedGraph references its pattern and data graph; both
/// must outlive it. The selection operator returns MatchedGraphs tied to
/// the input collection.
struct MatchedGraph {
  const GraphPattern* pattern = nullptr;
  const Graph* data = nullptr;
  /// Pattern node id -> data node id (size = pattern->graph().NumNodes()).
  std::vector<NodeId> node_mapping;
  /// Pattern edge id -> data edge id (size = pattern->graph().NumEdges()).
  std::vector<EdgeId> edge_mapping;

  /// The data node bound to the pattern node named `name` (dotted);
  /// kInvalidNode when unknown.
  NodeId DataNode(const std::string& name) const;

  /// A BoundGraph view for expression evaluation: pattern names resolve
  /// through the mapping into the data graph.
  BoundGraph Bound() const;

  /// Copies the matched subgraph out of the data graph as a standalone
  /// Graph: one node per pattern node (named like the pattern node, with
  /// the data node's attributes) and one edge per pattern edge. The data
  /// graph's own attributes are copied as the result's graph attributes.
  Graph Materialize() const;

  /// Verifies that this is a valid match: the mapping is injective, every
  /// pattern edge maps to a data edge with the mapped endpoints, and all
  /// predicates hold. Used by tests and assertions.
  bool Verify() const;
};

/// Materializes a set of matched graphs into a collection (helper for the
/// composition-free query results).
GraphCollection Materialize(const std::vector<MatchedGraph>& matches);

}  // namespace graphql::algebra

#endif  // GRAPHQL_ALGEBRA_MATCHED_GRAPH_H_
