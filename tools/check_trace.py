#!/usr/bin/env python3
"""Validates a Chrome-trace (Perfetto) file written by GQL_TRACE_EXPORT.

Usage:
    python3 tools/check_trace.py trace.json [--require-workers]

Checks the invariants the exporter (src/obs/trace_export.cc) guarantees,
so CI catches a malformed export before a human tries to load it:

  - the file is one JSON object with a "traceEvents" array;
  - every event carries a non-empty string "name", a "ph" in {B, E, M},
    and integer "pid"/"tid" fields;
  - duration events (B/E) carry a non-negative numeric "ts", and within
    each tid the B/E sequence is stack-balanced (every E closes the most
    recent open B of the same name; nothing stays open at the end);
  - at least one metadata event names the process, and every tid that
    appears on a duration event also appears on a thread_name metadata
    event or is the default evaluator lane.

With --require-workers, additionally fails unless at least one
"worker-<tid>" lane is present (used by CI lanes that force GQL_THREADS
so parallel stages must emit worker spans).

Exits 0 when valid; prints the first violation and exits 1 otherwise.
"""

import json
import sys

VALID_PHASES = {"B", "E", "M"}


def fail(message):
    print(f"check_trace: FAIL: {message}")
    sys.exit(1)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    require_workers = "--require-workers" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__)
        sys.exit(2)
    path = args[0]

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' must be a non-empty array")

    stacks = {}          # tid -> list of open span names
    duration_tids = set()
    named_tids = set()   # tids labeled by thread_name metadata
    worker_lanes = set()
    saw_process_name = False

    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing or empty 'name'")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail(f"{where} ({name!r}): 'ph' is {ph!r}, expected B/E/M")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"{where} ({name!r}): missing integer {key!r}")

        if ph == "M":
            if name == "process_name":
                saw_process_name = True
            if name == "thread_name":
                named_tids.add(ev["tid"])
                label = ev.get("args", {}).get("name", "")
                if isinstance(label, str) and label.startswith("worker-"):
                    worker_lanes.add(ev["tid"])
            continue

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where} ({name!r}): B/E event needs non-negative 'ts'")
        tid = ev["tid"]
        duration_tids.add(tid)
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            stack.append(name)
        else:
            if not stack:
                fail(f"{where}: E {name!r} on tid {tid} with no open span")
            top = stack.pop()
            if top != name:
                fail(f"{where}: E {name!r} closes open span {top!r} "
                     f"on tid {tid}")

    for tid, stack in stacks.items():
        if stack:
            fail(f"{path}: tid {tid} ends with unclosed spans {stack}")
    if not saw_process_name:
        fail(f"{path}: no process_name metadata event")
    unnamed = duration_tids - named_tids
    if unnamed:
        fail(f"{path}: duration tids without thread_name metadata: "
             f"{sorted(unnamed)}")
    if require_workers and not worker_lanes:
        fail(f"{path}: --require-workers set but no worker-<tid> lanes")

    begins = sum(1 for e in events if e.get("ph") == "B")
    lanes = len(duration_tids)
    workers = len(worker_lanes)
    print(f"check_trace: OK: {path}: {begins} spans across {lanes} lane(s)"
          f" ({workers} worker lane(s))")


if __name__ == "__main__":
    main()
