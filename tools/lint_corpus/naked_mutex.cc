// Seeded violation corpus: raw std synchronization primitives. Never
// compiled — exists so invariant_lint_test.py can prove the naked-mutex
// rule catches each primitive the wrappers replace.
#include <mutex>

#include <condition_variable>

struct BadCache {
  void Put(int k, int v) {
    std::lock_guard<std::mutex> lock(mu_);
    last_key_ = k;
    last_value_ = v;
    cv_.notify_one();
  }

  std::mutex mu_;
  std::condition_variable cv_;
  int last_key_ = 0;
  int last_value_ = 0;
};
