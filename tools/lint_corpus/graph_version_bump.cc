// Seeded violation corpus: a Graph mutator that forgets to bump the
// version counter, so the cached snapshot would serve stale data. Never
// compiled; drives the graph-version-bump rule test.
#include "graph/graph.h"

namespace graphql {

void Graph::RemoveLastNode() {
  nodes_.pop_back();
  adj_.pop_back();
}

void Graph::RenameOk(std::string name) {
  name_ = std::move(name);
  ++version_;
}

}  // namespace graphql
