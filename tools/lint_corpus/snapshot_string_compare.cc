// Seeded violation corpus: a snapshot hot-path helper that compares raw
// strings instead of interned symbol ids. Never compiled; drives the
// snapshot-string-compare rule test.
#include <string>

namespace graphql {

struct FakeSnap {
  std::string label;
};

bool LabelMatchesSnap(const FakeSnap& snap) {
  std::string wanted = "person";
  return snap.label == "person" || snap.label.compare(wanted) == 0;
}

int PlainHelper(const FakeSnap& snap) {
  // Same comparison outside a *Snap* function is out of scope.
  return snap.label == "ok" ? 1 : 0;
}

}  // namespace graphql
