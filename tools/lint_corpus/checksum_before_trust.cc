// Corpus for the checksum-before-trust rule. Not compiled; shape only.
//
// Layout note: the rule merges read lines within READ_CLUSTER_GAP and
// scans TRUST_FWD lines past a cluster for a trust token, so the
// violating functions up top are padded well away from the clean
// functions below — otherwise the clean code's Crc32c would launder the
// violations above it.
#include <fstream>
#include <string>
#include <vector>

// VIOLATION: reads a file raw and trusts fields with no CRC anywhere near.
bool LoadIndexNoVerify(int fd, std::vector<unsigned char>* out) {
  out->assign(1024, 0);
  long got = ::pread(fd, out->data(), out->size(), 0);
  if (got <= 0) return false;
  return (*out)[0] == 'G';  // Trusts the byte immediately.
}

// ---------------------------------------------------------------------
// Padding so the two violating clusters do not merge into one finding.
// ---------------------------------------------------------------------
//
//
//
//
//
//

// VIOLATION: line-oriented parse of an unverified file.
int CountEntries(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) ++n;
  return n;
}

// ---------------------------------------------------------------------
// Padding: more than TRUST_FWD lines must separate the last violating
// read above from the first trust token below, or the window scan would
// credit the violations with the clean code's checksum.
// ---------------------------------------------------------------------
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//
//

// CLEAN: the read is followed by a CRC check before anything is trusted.
bool LoadIndexVerified(int fd, std::vector<unsigned char>* out) {
  out->assign(1024, 0);
  long got = ::pread(fd, out->data(), out->size(), 0);
  if (got <= 0) return false;
  unsigned expect = 0x1234;
  if (Crc32c(out->data(), out->size()) != expect) return false;
  return (*out)[0] == 'G';
}

// CLEAN: delegation — the raw bytes go straight to a reader whose
// contract is "checksummed or error".
bool ReplayLogFile(int fd, std::vector<unsigned char>* bytes) {
  long got = ::pread(fd, bytes->data(), bytes->size(), 0);
  if (got <= 0) return false;
  return ReplayWalBuffer(*bytes, nullptr).ok();
}

// ---------------------------------------------------------------------
// Padding so the suppressed function below is outside the clusters and
// trust windows of the clean functions above.
// ---------------------------------------------------------------------
//
//
//
//
//
//
//
//
//
//

// CLEAN: suppressed with a reason.
std::string ReadMotd(const std::string& path) {
  // invariant-lint: allow(checksum-before-trust) operator-editable text
  // file; contents are displayed, never parsed into state.
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  return line;
}
