// Seeded violation corpus: an allocation sized directly by a wire-format
// length field with no validation, so a tiny frame could demand a huge
// buffer. Never compiled; drives the length-validated-alloc rule test.
#include <cstdint>
#include <string>

namespace graphql {

void DecodeUnchecked(uint32_t len, std::string* body) {
  body->resize(len);
}

void DecodeChecked(uint32_t len, std::string* body) {
  if (len > kMaxFrameBytes) return;
  body->resize(len);
}

void FixedAlloc(std::string* body) {
  body->reserve(4096);
}

}  // namespace graphql
