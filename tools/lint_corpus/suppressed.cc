// Seeded corpus: the same violations as the other files, silenced by
// allow() comments carrying a reason — must lint clean. The final
// function carries a bare allow() with no reason, which is itself a
// violation regardless of rule.
#include <deque>

namespace graphql {

int DrainSuppressed(std::deque<int>* work) {
  int sum = 0;
  // invariant-lint: allow(governor-charge-loop) drains a queue bounded
  // by the caller; at most kMaxPending entries.
  while (!work->empty()) {
    sum += work->front();
    work->pop_front();
  }
  return sum;
}

int BareAllow(std::deque<int>* work) {
  // invariant-lint: allow(governor-charge-loop)
  while (!work->empty()) {
    work->pop_front();
  }
  return 0;
}

}  // namespace graphql
