// Seeded violation corpus for the vectorized selection kernels: a
// column-scan worklist loop that fills candidate bitmaps without ever
// charging the governor — exactly the shape a batch kernel could smuggle
// past review, since the per-candidate charge no longer sits next to the
// per-candidate probe. Never compiled; drives the governor-charge-loop
// rule test over the src/match/vectorized.cc scope.
#include <deque>

namespace graphql::match {

int FillBitmapsWithoutCharging(std::deque<int>* columns) {
  int words = 0;
  while (!columns->empty()) {
    words += columns->front();
    columns->pop_front();
  }
  return words;
}

int FillBitmapsWithCharging(std::deque<int>* columns, int* budget) {
  int words = 0;
  while (!columns->empty()) {
    if (ChargeStep(budget)) break;
    words += columns->front();
    columns->pop_front();
  }
  return words;
}

}  // namespace graphql::match
