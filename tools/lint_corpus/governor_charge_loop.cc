// Seeded violation corpus: an unbounded worklist loop that never charges
// the governor, so a runaway query in it could not be cancelled. Never
// compiled; drives the governor-charge-loop rule test.
#include <deque>

namespace graphql {

int DrainWithoutCharging(std::deque<int>* work) {
  int sum = 0;
  while (!work->empty()) {
    sum += work->front();
    work->pop_front();
  }
  return sum;
}

int DrainWithCharging(std::deque<int>* work, int* budget) {
  int sum = 0;
  while (!work->empty()) {
    if (ChargeStep(budget)) break;
    sum += work->front();
    work->pop_front();
  }
  return sum;
}

}  // namespace graphql
