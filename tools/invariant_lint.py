#!/usr/bin/env python3
"""Project invariant linter: mechanical checks for the engine's contracts.

The codebase has a handful of invariants that the type system cannot
express and code review keeps re-litigating. This linter makes them
mechanical. Rules:

  naked-mutex             No std synchronization primitive outside
                          src/common/thread_annotations.h — everything
                          goes through the capability-annotated wrappers
                          so Clang Thread Safety Analysis sees every lock.
  graph-version-bump      Every Graph mutator bumps version_; the cached
                          snapshot is keyed by it, so a missed bump means
                          queries silently run against stale data.
  snapshot-string-compare Snapshot hot loops in src/match/ compare
                          interned symbol ids, never std::string — the
                          whole point of compiling a snapshot.
  governor-charge-loop    Unbounded worklist loops in the match stages
                          charge the governor, so runaway queries stay
                          cancellable and limits mean what they say.
  length-validated-alloc  Wire-format length fields are validated
                          (CheckCount / kMax* cap) before sizing an
                          allocation — a 16-byte frame must not be able
                          to request a 4GB buffer.
  checksum-before-trust   Bytes read raw from the OS (pread/mmap/
                          ifstream) in the durable-storage layer are
                          checksum-verified — or handed to a reader that
                          verifies them — before any field is trusted.
                          A torn write must surface as DataLoss, never
                          as a half-applied record.

Suppression: a line (or the line above it) may carry
    // invariant-lint: allow(<rule>) <reason>
The reason is mandatory; a bare allow() is itself a violation.

Usage:
    invariant_lint.py [--root DIR] [--json] [--rule RULE file...]

With no files, lints the tree under --root (default: repo root inferred
from this script's location) with each rule applied to its home paths.
With --rule and explicit files, applies just that rule to those files
(how the corpus tests drive it). Exit 0 clean, 1 violations, 2 usage.
"""

import argparse
import json
import os
import re
import sys

RULES = (
    "naked-mutex",
    "graph-version-bump",
    "snapshot-string-compare",
    "governor-charge-loop",
    "length-validated-alloc",
    "checksum-before-trust",
)

ALLOW_RE = re.compile(
    r"//\s*invariant-lint:\s*allow\(([a-z-]+)\)\s*(.*)")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def to_dict(self):
        return {"file": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_line_comment(line):
    """Drops a // comment (naive: does not track string literals; good
    enough for this codebase, which has no // inside string constants on
    the lines these rules look at)."""
    i = line.find("//")
    return line if i < 0 else line[:i]


def allows(lines, lineno, rule):
    """True when line `lineno` (1-based) or the contiguous comment block
    directly above it carries a valid allow(<rule>) suppression. An
    allow() with no reason never matches — the caller reports it
    separately via check_bare_allows."""
    candidates = []
    if 0 <= lineno - 1 < len(lines):
        candidates.append(lines[lineno - 1])
    idx = lineno - 2
    while idx >= 0 and lines[idx].lstrip().startswith("//"):
        candidates.append(lines[idx])
        idx -= 1
    for cand in candidates:
        m = ALLOW_RE.search(cand)
        if m and m.group(1) == rule and m.group(2).strip():
            return True
    return False


def check_bare_allows(path, lines, out):
    for i, line in enumerate(lines, 1):
        m = ALLOW_RE.search(line)
        if m and not m.group(2).strip():
            out.append(Violation(path, i, m.group(1),
                                 "allow() suppression without a reason"))


def extract_functions(text):
    """Yields (name, start_line, body) for every function-looking
    definition: a signature ending in ')' (plus optional const/noexcept/
    ctor-initializers) followed by a balanced-brace body. Line numbers
    are 1-based and refer to the line holding the opening brace."""
    sig_re = re.compile(
        r"([A-Za-z_~][\w:<>,]*)\s*\([^;{}()]*(?:\([^()]*\)[^;{}()]*)*\)\s*"
        r"(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>]+\s*)?"
        r"(?::\s*[^{;]+?)?\{", re.S)
    for m in sig_re.finditer(text):
        name = m.group(1)
        if name in ("if", "for", "while", "switch", "catch", "return"):
            continue
        open_pos = m.end() - 1
        depth = 0
        end = None
        for i in range(open_pos, len(text)):
            c = text[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if end is None:
            continue
        body = text[open_pos:end + 1]
        line = text.count("\n", 0, open_pos) + 1
        yield name, line, body


# ---------------------------------------------------------------- rules

NAKED_TOKENS = re.compile(
    r"std::(?:recursive_|shared_|timed_)?mutex\b|"
    r"std::condition_variable(?:_any)?\b|"
    r"std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b|"
    r"#include\s*<(?:mutex|shared_mutex|condition_variable)>")


def rule_naked_mutex(path, lines, out):
    for i, raw in enumerate(lines, 1):
        line = raw if raw.lstrip().startswith("#include") \
            else strip_line_comment(raw)
        m = NAKED_TOKENS.search(line)
        if m and not allows(lines, i, "naked-mutex"):
            out.append(Violation(
                path, i, "naked-mutex",
                f"'{m.group(0)}' outside common/thread_annotations.h; "
                "use the annotated Mutex/MutexLock/CondVar wrappers"))


MUTATION_TOKEN = re.compile(
    r"\b\w+_\s*(?:\[[^\]]*\]\s*)?\.\s*"
    r"(?:push_back|emplace_back|emplace|insert|erase|clear|pop_back|"
    r"pop_front|push_front|resize|assign|swap)\s*\(|"
    r"^\s*(?:\w+\.)?\w+_\s*=[^=]", re.M)
VERSION_TOKEN = re.compile(r"\bversion_")


def rule_graph_version_bump(path, lines, out):
    text = "\n".join(lines)
    for name, lineno, body in extract_functions(text):
        stripped = "\n".join(strip_line_comment(l)
                             for l in body.splitlines())
        if not MUTATION_TOKEN.search(stripped):
            continue
        if VERSION_TOKEN.search(stripped):
            continue
        if allows(lines, lineno, "graph-version-bump"):
            continue
        out.append(Violation(
            path, lineno, "graph-version-bump",
            f"'{name}' mutates graph state but never touches version_; "
            "the cached snapshot will serve stale data"))


STRING_CMP = re.compile(
    r"[=!]=\s*\"|\"\s*[=!]=|\.compare\s*\(|\bstd::string\s+\w+\s*[=(;]")


def rule_snapshot_string_compare(path, lines, out):
    text = "\n".join(lines)
    for name, lineno, body in extract_functions(text):
        if "Snap" not in name:
            continue
        for off, bline in enumerate(body.splitlines()):
            code = strip_line_comment(bline)
            m = STRING_CMP.search(code)
            if m is None:
                continue
            vline = lineno + off
            if allows(lines, vline, "snapshot-string-compare"):
                continue
            out.append(Violation(
                path, vline, "snapshot-string-compare",
                f"string comparison in snapshot hot path '{name}'; "
                "compare interned symbol ids instead"))


UNBOUNDED_LOOP = re.compile(
    r"while\s*\(\s*!\s*[\w.\->\[\]()]*?(?:\.|->)empty\s*\(\s*\)\s*\)|"
    r"while\s*\(\s*true\s*\)|for\s*\(\s*;\s*;\s*\)")
CHARGE_TOKEN = re.compile(
    r"\bCharge\w*\s*\(|\bBudget\s*\(\)|\bOnCharge\s*\(|budget\.|budget->")


def rule_governor_charge_loop(path, lines, out):
    text = "\n".join(lines)
    for m in UNBOUNDED_LOOP.finditer(text):
        lineno = text.count("\n", 0, m.start()) + 1
        if allows(lines, lineno, "governor-charge-loop"):
            continue
        # The loop body: balanced braces from the first '{' after the
        # loop header (single-statement bodies get the rest of the line).
        brace = text.find("{", m.end())
        semi = text.find(";", m.end())
        if brace < 0 or (0 <= semi < brace):
            body = text[m.end():semi + 1] if semi >= 0 else ""
        else:
            depth = 0
            end = len(text)
            for i in range(brace, len(text)):
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                    if depth == 0:
                        end = i
                        break
            body = text[brace:end + 1]
        if CHARGE_TOKEN.search(body):
            continue
        out.append(Violation(
            path, lineno, "governor-charge-loop",
            "unbounded loop never charges the governor; a runaway query "
            "here cannot be cancelled or limited"))


ALLOC_CALL = re.compile(r"(?:\.|->)(?:resize|reserve)\s*\(\s*([^)]+?)\s*\)")
LOOKBACK_LINES = 30


def rule_length_validated_alloc(path, lines, out):
    for i, raw in enumerate(lines, 1):
        code = strip_line_comment(raw)
        m = ALLOC_CALL.search(code)
        if m is None:
            continue
        arg = m.group(1)
        # Constant-sized allocations can't be attacker-controlled.
        if re.fullmatch(r"[\d'+*/\s xa-fA-F]+", arg):
            continue
        if allows(lines, i, "length-validated-alloc"):
            continue
        # An identifier from the size expression must appear in a
        # validation within the lookback window: a CheckCount() call or a
        # comparison against a kMax* cap.
        idents = set(re.findall(r"[A-Za-z_]\w*", arg))
        idents -= {"static_cast", "size_t", "uint64_t", "uint32_t", "int",
                   "const", "auto"}
        window = lines[max(0, i - 1 - LOOKBACK_LINES):i - 1]
        validated = False
        for wline in window:
            wcode = strip_line_comment(wline)
            if "CheckCount(" in wcode or "kMax" in wcode:
                if not idents or any(re.search(r"\b%s\b" % re.escape(x),
                                               wcode) for x in idents):
                    validated = True
                    break
        if not validated:
            out.append(Violation(
                path, i, "length-validated-alloc",
                f"allocation sized by '{arg}' with no CheckCount()/kMax* "
                f"validation in the preceding {LOOKBACK_LINES} lines"))


# Raw ingestion of bytes from the OS. std::getline is deliberately
# included: line-oriented parsing of an unverified file is exactly the
# pattern this rule exists to flag.
RAW_READ_RE = re.compile(
    r"::pread\s*\(|::read\s*\(|\bfread\s*\(|::mmap\s*\(|std::ifstream|"
    r"std::getline")
# Evidence the bytes are (or are about to be) verified: a CRC computation,
# or delegation to a reader whose contract is "checksummed or error".
TRUST_RE = re.compile(
    r"Crc32c|crc32|[Cc]hecksum|PageFile::(?:Open|FromBuffer)|"
    r"ReplayWalBuffer|Validate\s*\(")
READ_CLUSTER_GAP = 10  # Read lines this close merge into one finding.
TRUST_BACK = 5
TRUST_FWD = 30


def rule_checksum_before_trust(path, lines, out):
    """Cluster raw-read lines, then demand a trust token near the cluster.

    Clustering keeps a multi-line read loop (open / fstat / pread loop /
    getline loop) from producing one violation per line: the first line of
    the cluster anchors both the finding and any allow() suppression."""
    read_lines = []
    for i, raw in enumerate(lines, 1):
        if RAW_READ_RE.search(strip_line_comment(raw)):
            read_lines.append(i)
    clusters = []
    for i in read_lines:
        if clusters and i - clusters[-1][-1] <= READ_CLUSTER_GAP:
            clusters[-1].append(i)
        else:
            clusters.append([i])
    for cluster in clusters:
        first, last = cluster[0], cluster[-1]
        if allows(lines, first, "checksum-before-trust"):
            continue
        window = lines[max(0, first - 1 - TRUST_BACK):
                       min(len(lines), last + TRUST_FWD)]
        if any(TRUST_RE.search(strip_line_comment(w)) for w in window):
            continue
        out.append(Violation(
            path, first, "checksum-before-trust",
            "bytes read raw from the OS with no Crc32c/checksum validation "
            "(or delegation to a checksummed reader) within "
            f"{TRUST_FWD} lines — a torn or corrupt file must be detected "
            "before its contents are trusted"))


RULE_FUNCS = {
    "naked-mutex": rule_naked_mutex,
    "graph-version-bump": rule_graph_version_bump,
    "snapshot-string-compare": rule_snapshot_string_compare,
    "governor-charge-loop": rule_governor_charge_loop,
    "length-validated-alloc": rule_length_validated_alloc,
    "checksum-before-trust": rule_checksum_before_trust,
}

# rule -> (include globs, exclude basenames) relative to the repo root.
TREE_SCOPE = {
    "naked-mutex": (
        ["src"], {"thread_annotations.h"}),
    "graph-version-bump": (
        ["src/graph/graph.cc", "src/graph/graph.h"], set()),
    "snapshot-string-compare": (
        ["src/match"], set()),
    "governor-charge-loop": (
        ["src/match/matcher.cc", "src/match/refine.cc",
         "src/match/neighborhood.cc", "src/match/pipeline.cc",
         "src/match/vectorized.cc", "src/match/pred_bytecode.cc"], set()),
    "length-validated-alloc": (
        ["src/io/serialize.cc", "src/server/protocol.cc",
         "src/storage/wal.cc", "src/storage/pager.cc",
         "src/storage/engine.cc", "src/io/snapshot_v3.cc"], set()),
    # The durable layer: every byte that crosses the process boundary must
    # be checksummed (or read through a reader that checksums) before use.
    "checksum-before-trust": (
        ["src/storage", "src/io/snapshot_v3.cc"], set()),
}


def iter_sources(root, scopes, exclude):
    seen = set()
    for scope in scopes:
        path = os.path.join(root, scope)
        if os.path.isfile(path):
            if os.path.basename(path) not in exclude and path not in seen:
                seen.add(path)
                yield path
        elif os.path.isdir(path):
            for dirpath, _, names in os.walk(path):
                for name in sorted(names):
                    if not name.endswith((".h", ".cc")):
                        continue
                    if name in exclude:
                        continue
                    full = os.path.join(dirpath, name)
                    if full not in seen:
                        seen.add(full)
                        yield full


def lint_file(path, rules, violations):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        violations.append(Violation(path, 0, "io", str(e)))
        return
    check_bare_allows(path, lines, violations)
    for rule in rules:
        RULE_FUNCS[rule](path, lines, violations)


def main(argv):
    parser = argparse.ArgumentParser(
        description="GraphQL-at-a-time project invariant linter")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    parser.add_argument("--rule", choices=RULES, default=None,
                        help="apply one rule to the listed files")
    parser.add_argument("files", nargs="*",
                        help="files to lint (requires --rule)")
    args = parser.parse_args(argv)

    if bool(args.files) != bool(args.rule):
        parser.error("--rule and explicit files go together")

    violations = []
    if args.rule:
        for path in args.files:
            lint_file(path, [args.rule], violations)
    else:
        root = args.root or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        for rule in RULES:
            scopes, exclude = TREE_SCOPE[rule]
            for path in iter_sources(root, scopes, exclude):
                lint_file(path, [rule], violations)

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    if args.json:
        print(json.dumps({"violations": [v.to_dict() for v in violations],
                          "count": len(violations)}, indent=2))
    else:
        for v in violations:
            print(v)
        print(f"invariant-lint: {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
