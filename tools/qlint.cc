// qlint: standalone static checker for GraphQL query programs.
//
// Usage:
//   qlint FILE...        lint each file (use '-' for stdin)
//   qlint < program.gql  lint stdin
//
// Options:
//   --werror   treat warnings (lints, provable unsatisfiability) as errors
//   --quiet    print only the per-file summary lines
//
// For every file: parse, run the semantic analyzer (name/scope resolution,
// constant folding and satisfiability, structural lints, recursion
// classification), and print caret diagnostics. Since qlint runs outside a
// session, document registration and session-variable checks are skipped —
// only the program's own structure is validated.
//
// Exit status: 0 when every file is clean (warnings allowed unless
// --werror), 1 when any file has errors, 2 on usage or I/O problems.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lang/parser.h"
#include "sema/analyzer.h"
#include "sema/diagnostic.h"

namespace {

struct FileReport {
  size_t errors = 0;
  size_t warnings = 0;
};

FileReport LintSource(const std::string& label, const std::string& source,
                      bool quiet) {
  FileReport report;
  auto program = graphql::lang::Parser::ParseProgram(source);
  if (!program.ok()) {
    std::printf("%s: parse error: %s\n", label.c_str(),
                program.status().ToString().c_str());
    report.errors = 1;
    return report;
  }
  graphql::sema::Analysis analysis = graphql::sema::Analyze(*program);
  for (const graphql::sema::Diagnostic& d : analysis.diagnostics) {
    if (d.severity == graphql::sema::Severity::kError) ++report.errors;
    if (d.severity == graphql::sema::Severity::kWarning) ++report.warnings;
    if (!quiet) {
      std::printf("%s: %s\n", label.c_str(),
                  graphql::sema::RenderDiagnostic(source, d).c_str());
    }
  }
  std::printf("%s: %zu error%s, %zu warning%s\n", label.c_str(),
              report.errors, report.errors == 1 ? "" : "s", report.warnings,
              report.warnings == 1 ? "" : "s");
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--werror") == 0) {
      werror = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: qlint [--werror] [--quiet] FILE...  ('-' = stdin)\n");
      return 0;
    } else if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      std::fprintf(stderr, "qlint: unknown option %s\n", argv[i]);
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) paths.emplace_back("-");

  size_t total_errors = 0;
  size_t total_warnings = 0;
  for (const std::string& path : paths) {
    std::string source;
    std::string label = path;
    if (path == "-") {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      source = buf.str();
      label = "<stdin>";
    } else {
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "qlint: cannot open %s\n", path.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << file.rdbuf();
      source = buf.str();
    }
    FileReport report = LintSource(label, source, quiet);
    total_errors += report.errors;
    total_warnings += report.warnings;
  }
  if (total_errors > 0) return 1;
  if (werror && total_warnings > 0) return 1;
  return 0;
}
