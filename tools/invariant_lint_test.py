#!/usr/bin/env python3
"""Unit tests for invariant_lint.py: every rule catches its seeded
violation in tools/lint_corpus/, suppressions work (and bare ones are
themselves flagged), and the real tree lints clean."""

import os
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
CORPUS = os.path.join(HERE, "lint_corpus")
sys.path.insert(0, HERE)

import invariant_lint  # noqa: E402


def run_rule(rule, filename):
    """Lints one corpus file under one rule; returns the Violation list."""
    violations = []
    invariant_lint.lint_file(os.path.join(CORPUS, filename), [rule],
                             violations)
    return violations


class NakedMutexTest(unittest.TestCase):
    def test_catches_each_primitive(self):
        vs = run_rule("naked-mutex", "naked_mutex.cc")
        hit = "\n".join(v.message for v in vs)
        self.assertIn("#include <mutex>", hit)
        self.assertIn("#include <condition_variable>", hit)
        self.assertIn("std::lock_guard", hit)
        self.assertIn("std::mutex", hit)
        self.assertIn("std::condition_variable", hit)
        self.assertGreaterEqual(len(vs), 5)
        self.assertTrue(all(v.rule == "naked-mutex" for v in vs))

    def test_wrapper_header_is_out_of_scope_in_tree_mode(self):
        scopes, exclude = invariant_lint.TREE_SCOPE["naked-mutex"]
        paths = list(invariant_lint.iter_sources(ROOT, scopes, exclude))
        self.assertTrue(paths)
        self.assertFalse(
            any(p.endswith("thread_annotations.h") for p in paths))


class GraphVersionBumpTest(unittest.TestCase):
    def test_catches_missing_bump(self):
        vs = run_rule("graph-version-bump", "graph_version_bump.cc")
        self.assertEqual(len(vs), 1)
        self.assertIn("RemoveLastNode", vs[0].message)

    def test_bumping_mutator_is_clean(self):
        vs = run_rule("graph-version-bump", "graph_version_bump.cc")
        self.assertFalse(any("RenameOk" in v.message for v in vs))


class SnapshotStringCompareTest(unittest.TestCase):
    def test_catches_string_compare_in_snap_function(self):
        vs = run_rule("snapshot-string-compare",
                      "snapshot_string_compare.cc")
        self.assertTrue(vs)
        self.assertTrue(all("LabelMatchesSnap" in v.message for v in vs))

    def test_non_snap_function_out_of_scope(self):
        vs = run_rule("snapshot-string-compare",
                      "snapshot_string_compare.cc")
        self.assertFalse(
            any("PlainHelper" in v.message for v in vs))


class GovernorChargeLoopTest(unittest.TestCase):
    def test_catches_unchecked_worklist_loop(self):
        vs = run_rule("governor-charge-loop", "governor_charge_loop.cc")
        self.assertEqual(len(vs), 1)
        self.assertEqual(vs[0].rule, "governor-charge-loop")
        # The violation is the loop in DrainWithoutCharging (line 10);
        # DrainWithCharging's identical loop charges and stays clean.
        self.assertEqual(vs[0].line, 10)

    def test_catches_unchecked_bitmap_fill_loop(self):
        # The vectorized-kernel shape: a column-scan loop filling
        # candidate bitmaps with no charge token in its body.
        vs = run_rule("governor-charge-loop",
                      "governor_charge_loop_vectorized.cc")
        self.assertEqual(len(vs), 1)
        self.assertEqual(vs[0].line, 13)  # FillBitmapsWithoutCharging.

    def test_vectorized_kernels_are_in_tree_scope(self):
        # The batch kernels moved candidate iteration away from the
        # per-candidate charge sites, so they must stay under the rule.
        scopes, exclude = invariant_lint.TREE_SCOPE["governor-charge-loop"]
        paths = list(invariant_lint.iter_sources(ROOT, scopes, exclude))
        self.assertTrue(any(p.endswith("vectorized.cc") for p in paths))
        self.assertTrue(any(p.endswith("pred_bytecode.cc") for p in paths))


class LengthValidatedAllocTest(unittest.TestCase):
    def test_catches_unvalidated_length(self):
        vs = run_rule("length-validated-alloc",
                      "length_validated_alloc.cc")
        self.assertEqual(len(vs), 1)
        self.assertIn("len", vs[0].message)
        self.assertEqual(vs[0].line, 10)  # DecodeUnchecked's resize.


class ChecksumBeforeTrustTest(unittest.TestCase):
    def test_catches_raw_reads_without_verification(self):
        vs = run_rule("checksum-before-trust", "checksum_before_trust.cc")
        self.assertEqual(len(vs), 2)
        self.assertTrue(
            all(v.rule == "checksum-before-trust" for v in vs))
        # LoadIndexNoVerify's pread and CountEntries' ifstream/getline
        # cluster; the CRC-checked, delegating, and suppressed functions
        # further down must all stay clean.
        self.assertEqual(vs[0].line, 15)
        self.assertEqual(vs[1].line, 32)

    def test_read_loop_is_one_finding_not_one_per_line(self):
        # CountEntries has both an ifstream open and a getline loop; the
        # cluster must collapse them into a single violation.
        vs = run_rule("checksum-before-trust", "checksum_before_trust.cc")
        self.assertEqual(sum(1 for v in vs if 30 <= v.line <= 40), 1)

    def test_storage_layer_is_in_tree_scope(self):
        scopes, exclude = invariant_lint.TREE_SCOPE["checksum-before-trust"]
        paths = list(invariant_lint.iter_sources(ROOT, scopes, exclude))
        self.assertTrue(any(p.endswith("storage/wal.cc") for p in paths))
        self.assertTrue(any(p.endswith("storage/pager.cc") for p in paths))
        self.assertTrue(any(p.endswith("storage/engine.cc") for p in paths))
        self.assertTrue(any(p.endswith("io/snapshot_v3.cc") for p in paths))


class StorageDecodersInAllocScopeTest(unittest.TestCase):
    def test_wal_and_v3_decoders_are_in_tree_scope(self):
        # The durable layer decodes lengths from disk exactly like the
        # wire protocol does from sockets; same rule, same scope.
        scopes, exclude = invariant_lint.TREE_SCOPE["length-validated-alloc"]
        paths = list(invariant_lint.iter_sources(ROOT, scopes, exclude))
        for tail in ("storage/wal.cc", "storage/pager.cc",
                     "storage/engine.cc", "io/snapshot_v3.cc"):
            self.assertTrue(any(p.endswith(tail) for p in paths), tail)


class SuppressionTest(unittest.TestCase):
    def test_allow_with_reason_suppresses(self):
        vs = run_rule("governor-charge-loop", "suppressed.cc")
        lines = [v.line for v in vs if v.rule == "governor-charge-loop"]
        self.assertNotIn(13, lines)  # DrainSuppressed's loop.

    def test_bare_allow_is_flagged_and_does_not_suppress(self):
        vs = run_rule("governor-charge-loop", "suppressed.cc")
        self.assertTrue(any("without a reason" in v.message for v in vs))
        self.assertTrue(
            any(v.rule == "governor-charge-loop" and v.line > 15
                for v in vs))


class TreeIsCleanTest(unittest.TestCase):
    def test_whole_tree_lints_clean(self):
        violations = []
        for rule in invariant_lint.RULES:
            scopes, exclude = invariant_lint.TREE_SCOPE[rule]
            for path in invariant_lint.iter_sources(ROOT, scopes, exclude):
                invariant_lint.lint_file(path, [rule], violations)
        self.assertEqual([str(v) for v in violations], [])

    def test_main_exit_codes(self):
        self.assertEqual(invariant_lint.main(["--root", ROOT]), 0)
        bad = os.path.join(CORPUS, "naked_mutex.cc")
        self.assertEqual(
            invariant_lint.main(["--rule", "naked-mutex", bad]), 1)


if __name__ == "__main__":
    unittest.main()
