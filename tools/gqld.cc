// gqld: the GraphQL query server daemon.
//
// Usage:
//   gqld [--host H] [--port N] [--workers N] [--max-concurrent N]
//        [--pool-mb N] [--timeout-cap-ms N] [--drain-grace-ms N]
//        [--data-dir DIR] [--checkpoint-every N]
//        [--load NAME=PATH ...] [--print-port]
//
//   --host H            listen address (default 127.0.0.1; gqld has no
//                       authentication — widen deliberately)
//   --port N            listen port (default 7411; 0 = kernel-assigned,
//                       printed on stdout)
//   --workers N         connection-serving threads (default: cores)
//   --max-concurrent N  queries admitted concurrently (default 2x cores)
//   --pool-mb N         shared query-memory pool (default unlimited)
//   --timeout-cap-ms N  server-wide cap on per-query deadlines
//   --drain-grace-ms N  SIGTERM drain grace before cancelling (default 2000)
//   --data-dir DIR      durable mode: recover published docs from DIR
//                       (WAL + v3 checkpoints) on start, WAL-log every
//                       commit, checkpoint on clean shutdown
//   --checkpoint-every N  auto-checkpoint after N WAL records (default 64)
//   --load NAME=PATH    publish a collection file as shared doc("NAME")
//                       before serving (repeatable; in durable mode the
//                       publishes are WAL-logged like any commit)
//   --print-port        print "PORT <n>" once listening (for harnesses)
//
// Signals: SIGTERM and SIGINT both trigger a graceful drain — new queries
// are shed with kResourceExhausted, in-flight queries finish (up to the
// grace period, then they are cancelled), responses are flushed, and the
// process exits 0. The SIGINT-cancels-a-query behavior belongs to gqlsh
// (common/signals.h SigintCancelScope); a server process owns its signals
// for lifecycle, which is exactly why that handler is installed scoped
// and explicitly rather than ambiently.
//
// Wire protocol: see src/server/protocol.h; clients: tools/loadgen,
// server::Client.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/governor.h"
#include "io/serialize.h"
#include "server/server.h"
#include "storage/engine.h"

using namespace graphql;

namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void HandleShutdownSignal(int) { g_shutdown_requested = 1; }

long long ParseNum(const char* flag, const char* value) {
  char* end = nullptr;
  long long n = std::strtoll(value, &end, 10);
  if (end == nullptr || *end != '\0' || n < 0) {
    std::fprintf(stderr, "gqld: %s wants a non-negative integer, got %s\n",
                 flag, value);
    std::exit(2);
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  options.port = 7411;
  bool print_port = false;
  std::string data_dir;
  uint64_t checkpoint_every = 64;
  std::vector<std::pair<std::string, std::string>> preload;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gqld: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = static_cast<int>(ParseNum("--port", next()));
    } else if (arg == "--workers") {
      options.worker_threads = static_cast<int>(ParseNum("--workers", next()));
    } else if (arg == "--max-concurrent") {
      options.admission.max_concurrent =
          static_cast<int>(ParseNum("--max-concurrent", next()));
    } else if (arg == "--pool-mb") {
      options.admission.memory_pool_bytes =
          static_cast<uint64_t>(ParseNum("--pool-mb", next())) * 1024 * 1024;
    } else if (arg == "--timeout-cap-ms") {
      options.max_timeout_ms = ParseNum("--timeout-cap-ms", next());
    } else if (arg == "--drain-grace-ms") {
      options.drain_grace_ms =
          static_cast<int>(ParseNum("--drain-grace-ms", next()));
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every =
          static_cast<uint64_t>(ParseNum("--checkpoint-every", next()));
      if (checkpoint_every == 0) checkpoint_every = 1;
    } else if (arg == "--load") {
      std::string spec = next();
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "gqld: --load wants NAME=PATH, got %s\n",
                     spec.c_str());
        return 2;
      }
      preload.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--print-port") {
      print_port = true;
    } else {
      std::fprintf(stderr, "gqld: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  server::Server srv(options);

  // Durable mode: recover before anything interns symbols or publishes,
  // then route every commit through the WAL.
  std::unique_ptr<storage::DurableStore> durable;
  if (!data_dir.empty()) {
    storage::DurableStore::Options dopts;
    dopts.dir = data_dir;
    dopts.checkpoint_every = checkpoint_every;
    dopts.injector = FaultInjector::FromEnv();
    auto opened = storage::DurableStore::Open(dopts);
    if (!opened.ok()) {
      std::fprintf(stderr, "gqld: --data-dir %s: %s\n", data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    durable = std::move(opened).value();
    srv.store()->set_durable_store(durable.get());
    srv.store()->Bootstrap(durable->recovered_docs(),
                           durable->recovered_version());
    const auto& rs = durable->recovery_stats();
    std::fprintf(
        stderr,
        "gqld: recovered %llu docs at version %llu from %s "
        "(checkpoint %llu, replayed %llu wal records, torn %llu bytes)\n",
        static_cast<unsigned long long>(durable->recovered_docs().size()),
        static_cast<unsigned long long>(durable->recovered_version()),
        data_dir.c_str(),
        static_cast<unsigned long long>(rs.checkpoint_seq),
        static_cast<unsigned long long>(rs.wal_records_replayed),
        static_cast<unsigned long long>(rs.wal_torn_bytes));
  }

  for (const auto& [name, path] : preload) {
    auto c = io::LoadCollection(path);
    if (!c.ok()) {
      std::fprintf(stderr, "gqld: --load %s=%s: %s\n", name.c_str(),
                   path.c_str(), c.status().ToString().c_str());
      return 1;
    }
    auto v = srv.store()->Publish(name, std::move(c).value());
    if (!v.ok()) {
      std::fprintf(stderr, "gqld: publish %s: %s\n", name.c_str(),
                   v.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "gqld: doc(\"%s\") published at version %llu\n",
                 name.c_str(), static_cast<unsigned long long>(*v));
  }

  Status st = srv.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "gqld: %s\n", st.ToString().c_str());
    return 1;
  }

  struct sigaction action {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::fprintf(stderr, "gqld: listening on %s:%d (workers=%d, "
               "max_concurrent=%d)\n",
               options.host.c_str(), srv.port(), srv.worker_threads(),
               srv.admission()->max_concurrent());
  if (print_port) {
    std::printf("PORT %d\n", srv.port());
    std::fflush(stdout);
  }

  while (!g_shutdown_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "gqld: draining...\n");
  srv.Shutdown();
  if (durable != nullptr) {
    // Clean shutdown: fold the WAL into a checkpoint so the next start
    // recovers without replaying.
    Status cs = srv.store()->CheckpointNow();
    if (!cs.ok()) {
      std::fprintf(stderr, "gqld: shutdown checkpoint: %s\n",
                   cs.ToString().c_str());
    }
  }
  const server::ServerCounters* c = srv.counters();
  std::fprintf(
      stderr,
      "gqld: drained. connections=%llu queries=%llu shed_queries=%llu "
      "shed_connections=%llu protocol_errors=%llu disconnect_cancels=%llu "
      "commits=%llu aborted_commits=%llu\n",
      static_cast<unsigned long long>(c->connections.load()),
      static_cast<unsigned long long>(c->queries.load()),
      static_cast<unsigned long long>(c->shed_queries.load()),
      static_cast<unsigned long long>(c->shed_connections.load()),
      static_cast<unsigned long long>(c->protocol_errors.load()),
      static_cast<unsigned long long>(c->disconnect_cancels.load()),
      static_cast<unsigned long long>(srv.store()->commits()),
      static_cast<unsigned long long>(srv.store()->aborted_commits()));
  return 0;
}
