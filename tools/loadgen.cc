// loadgen: load generator for gqld (tools/gqld.cc).
//
// Usage:
//   loadgen --port N [--host H] [--connections N] [--duration-ms N]
//           [--mode closed|open] [--rate QPS] [--program FILE] [--doc NAME]
//           [--publish-every N] [--stats-every N] [--kill-every N]
//           [--json PATH]
//
//   --connections N    concurrent client connections (default 8)
//   --duration-ms N    run length (default 2000)
//   --mode closed      each connection sends the next request as soon as
//                      the previous response lands (default)
//   --mode open        each connection issues requests on a fixed schedule
//                      (--rate per-connection QPS, default 50) regardless
//                      of response latency — the saturation probe: when
//                      the server falls behind, shed responses must come
//                      back instead of unbounded queueing
//   --program FILE     query program to send (default: a built-in
//                      two-author pattern selection)
//   --doc NAME         doc the built-in program queries (default "LG";
//                      ignored with --program)
//   --publish-every N  every N-th request on a connection is a kPublish
//                      commit instead of a query (0 = never; exercises the
//                      writer path under reader load)
//   --stats-every N    every N-th request is a kStats (0 = never)
//   --kill-every N     every N-th query, the connection hangs up *without
//                      reading the response* and reconnects — exercising
//                      the server's disconnect watchdog / query-cancel
//                      path (0 = never)
//   --json PATH        write a BENCH_server.json summary (qps, latency
//                      percentiles, shed rate) for summarize_bench.py
//
// Unless --program is given, loadgen first publishes a small built-in
// collection as doc(NAME) through one setup connection, so it can be
// pointed at a completely empty gqld.
//
// Exit status: 0 when every response was either OK or a structured
// governed outcome (shed / deadline / cancelled); torn connections that
// reconnected cleanly (drain, injected accept faults, kill mode fallout)
// are reported but don't fail the run. 1 on protocol errors, unexpected
// statuses, or connect failures.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"

using namespace graphql;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 8;
  int duration_ms = 2000;
  bool open_loop = false;
  double rate = 50.0;  // Per-connection, open loop only.
  std::string program;
  std::string doc = "LG";
  int publish_every = 0;
  int stats_every = 0;
  int kill_every = 0;
  std::string json_path;
};

struct WorkerStats {
  std::vector<int64_t> latencies_us;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t governed = 0;  // deadline / cancelled / partial-result trips.
  uint64_t torn = 0;      // Connection died mid-exchange; reconnected.
  uint64_t errors = 0;
  uint64_t kills = 0;
  uint64_t sent = 0;
};

/// Built-in shared collection: enough structure for the default pattern
/// query to produce matches.
std::string BuiltinCollectionText() {
  return R"(graph G1 {
  node a1 <author name="A">;
  node a2 <author name="B">;
  node p1 <paper>;
  edge e1 (a1, p1);
  edge e2 (a2, p1);
};
graph G2 {
  node a1 <author name="B">;
  node a2 <author name="C">;
  node a3 <author name="A">;
  node p1 <paper>;
  edge e1 (a1, p1);
  edge e2 (a2, p1);
  edge e3 (a3, p1);
};
)";
}

std::string BuiltinProgram(const std::string& doc) {
  return "for graph Q {\n"
         "  node a <author>;\n"
         "  node p <paper>;\n"
         "  edge e (a, p);\n"
         "} in doc(\"" + doc + "\") return Q;\n";
}

/// A variable-publishing program: binds V so a follow-up kPublish has
/// something to commit.
std::string PublishSetupProgram() {
  return "V := graph { node x <probe>; };\n";
}

bool GovernedOutcome(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kResourceExhausted;
}

void RunWorker(const Options& opt, int worker_id, const std::string& program,
               std::atomic<bool>* stop, WorkerStats* stats) {
  server::Client client;
  if (!client.Connect(opt.host, opt.port).ok()) {
    // The server may be saturated at accept; retry once before counting
    // a hard failure.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (!client.Connect(opt.host, opt.port).ok()) {
      ++stats->errors;
      return;
    }
  }
  bool published_var = false;
  uint64_t seq = 0;
  const auto period = std::chrono::duration<double>(
      opt.rate > 0 ? 1.0 / opt.rate : 0.02);
  auto next_send = Clock::now();

  while (!stop->load(std::memory_order_relaxed)) {
    if (opt.open_loop) {
      // Fixed schedule: do not adapt to response latency. If the server
      // stalls, requests pile into the kernel buffers and the server must
      // shed — that is the point of the probe.
      std::this_thread::sleep_until(next_send);
      next_send += std::chrono::duration_cast<Clock::duration>(period);
    }
    ++seq;
    server::Request req;
    req.op = server::Op::kQuery;
    req.a = program;
    bool is_kill = opt.kill_every > 0 && seq % opt.kill_every == 0;
    if (!is_kill && opt.publish_every > 0 && seq % opt.publish_every == 0) {
      if (!published_var) {
        server::Request setup;
        setup.op = server::Op::kQuery;
        setup.a = PublishSetupProgram();
        auto r = client.Call(setup);
        if (r.ok()) published_var = true;
      }
      req.op = server::Op::kPublish;
      req.a = "probe_" + std::to_string(worker_id);
      req.b = "V";
    } else if (!is_kill && opt.stats_every > 0 &&
               seq % opt.stats_every == 0) {
      req.op = server::Op::kStats;
      req.a.clear();
    }

    ++stats->sent;
    auto t0 = Clock::now();
    if (is_kill) {
      // Send the query, then vanish without reading the response: the
      // server's watchdog must cancel the in-flight query and free its
      // admission slot. Reconnect and keep going.
      if (!client.SendRaw(server::EncodeRequest(req)).ok()) {
        ++stats->errors;
      } else {
        ++stats->kills;
      }
      client.Close();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      if (!client.Connect(opt.host, opt.port).ok()) {
        ++stats->errors;
        return;
      }
      published_var = false;
      continue;
    }
    auto resp = client.Call(req);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - t0)
                  .count();
    if (!resp.ok()) {
      // Torn connection (shed at accept, drain, injected fault): count
      // and reconnect rather than abort — overload is expected here.
      ++stats->torn;
      client.Close();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (!client.Connect(opt.host, opt.port).ok()) return;
      published_var = false;
      continue;
    }
    stats->latencies_us.push_back(us);
    if (resp->code == StatusCode::kOk) {
      ++stats->ok;
    } else if (resp->code == StatusCode::kResourceExhausted &&
               resp->retry_after_ms > 0) {
      ++stats->shed;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min(resp->retry_after_ms, 50u)));
    } else if (GovernedOutcome(resp->code)) {
      ++stats->governed;
    } else if (req.op == server::Op::kPublish &&
               resp->code == StatusCode::kNotFound) {
      // The publish setup query itself was shed; try again later.
      ++stats->governed;
    } else {
      ++stats->errors;
    }
  }
  server::Request close_req;
  close_req.op = server::Op::kClose;
  (void)client.Call(close_req);
}

int64_t Percentile(std::vector<int64_t>* xs, double p) {
  if (xs->empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(xs->size() - 1));
  std::nth_element(xs->begin(), xs->begin() + static_cast<long>(idx),
                   xs->end());
  return (*xs)[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "loadgen: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      opt.port = std::atoi(next());
    } else if (arg == "--connections") {
      opt.connections = std::atoi(next());
    } else if (arg == "--duration-ms") {
      opt.duration_ms = std::atoi(next());
    } else if (arg == "--mode") {
      std::string mode = next();
      if (mode == "open") {
        opt.open_loop = true;
      } else if (mode == "closed") {
        opt.open_loop = false;
      } else {
        std::fprintf(stderr, "loadgen: --mode wants open|closed\n");
        return 2;
      }
    } else if (arg == "--rate") {
      opt.rate = std::atof(next());
    } else if (arg == "--program") {
      opt.program = next();
    } else if (arg == "--doc") {
      opt.doc = next();
    } else if (arg == "--publish-every") {
      opt.publish_every = std::atoi(next());
    } else if (arg == "--stats-every") {
      opt.stats_every = std::atoi(next());
    } else if (arg == "--kill-every") {
      opt.kill_every = std::atoi(next());
    } else if (arg == "--json") {
      opt.json_path = next();
    } else {
      std::fprintf(stderr, "loadgen: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (opt.port == 0) {
    std::fprintf(stderr, "loadgen: --port is required\n");
    return 2;
  }

  std::string program;
  if (!opt.program.empty()) {
    std::ifstream file(opt.program);
    if (!file) {
      std::fprintf(stderr, "loadgen: cannot open %s\n", opt.program.c_str());
      return 2;
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    program = contents.str();
  } else {
    program = BuiltinProgram(opt.doc);
    // Publish the built-in collection so the program has data. Retries
    // cover a server that is still coming up.
    server::Client setup;
    Status st;
    for (int attempt = 0; attempt < 50; ++attempt) {
      st = setup.Connect(opt.host, opt.port);
      if (st.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!st.ok()) {
      std::fprintf(stderr, "loadgen: cannot reach gqld at %s:%d: %s\n",
                   opt.host.c_str(), opt.port, st.ToString().c_str());
      return 1;
    }
    server::Request load;
    load.op = server::Op::kLoadText;
    load.a = opt.doc;
    load.b = BuiltinCollectionText();
    auto lr = setup.Call(load);
    if (!lr.ok() || lr->code != StatusCode::kOk) {
      std::fprintf(stderr, "loadgen: load_text failed: %s\n",
                   lr.ok() ? lr->body.c_str()
                           : lr.status().ToString().c_str());
      return 1;
    }
    server::Request publish;
    publish.op = server::Op::kPublish;
    publish.a = opt.doc;
    publish.b = opt.doc;  // Publish the session-local doc store-wide.
    // A kResourceExhausted here is a transient, structured refusal
    // (admission shed or an injected commit abort) — retry, like any
    // well-behaved client.
    bool published = false;
    for (int attempt = 0; attempt < 20 && !published; ++attempt) {
      auto pr = setup.Call(publish);
      if (pr.ok() && pr->code == StatusCode::kOk) {
        published = true;
      } else if (pr.ok() && pr->code == StatusCode::kResourceExhausted) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            pr->retry_after_ms > 0 ? std::min(pr->retry_after_ms, 200u)
                                   : 100));
      } else {
        std::fprintf(stderr, "loadgen: publish failed: %s\n",
                     pr.ok() ? pr->body.c_str()
                             : pr.status().ToString().c_str());
        return 1;
      }
    }
    if (!published) {
      std::fprintf(stderr, "loadgen: publish kept getting shed; giving up\n");
      return 1;
    }
  }

  std::atomic<bool> stop{false};
  std::vector<WorkerStats> stats(static_cast<size_t>(opt.connections));
  std::vector<std::thread> workers;
  auto t0 = Clock::now();
  for (int i = 0; i < opt.connections; ++i) {
    workers.emplace_back(RunWorker, std::cref(opt), i, std::cref(program),
                         &stop, &stats[static_cast<size_t>(i)]);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(opt.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : workers) w.join();
  double elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();

  WorkerStats total;
  for (const WorkerStats& s : stats) {
    total.ok += s.ok;
    total.shed += s.shed;
    total.governed += s.governed;
    total.torn += s.torn;
    total.errors += s.errors;
    total.kills += s.kills;
    total.sent += s.sent;
    total.latencies_us.insert(total.latencies_us.end(),
                              s.latencies_us.begin(), s.latencies_us.end());
  }
  uint64_t answered = total.ok + total.shed + total.governed;
  double qps = elapsed_s > 0 ? static_cast<double>(answered) / elapsed_s : 0;
  double shed_rate =
      answered > 0 ? static_cast<double>(total.shed) /
                         static_cast<double>(answered)
                   : 0;
  int64_t p50 = Percentile(&total.latencies_us, 0.50);
  int64_t p95 = Percentile(&total.latencies_us, 0.95);
  int64_t p99 = Percentile(&total.latencies_us, 0.99);

  std::printf(
      "loadgen: mode=%s connections=%d duration=%.2fs\n"
      "  sent=%llu ok=%llu shed=%llu governed=%llu torn=%llu errors=%llu "
      "kills=%llu\n"
      "  qps=%.1f shed_rate=%.3f p50=%lldus p95=%lldus p99=%lldus\n",
      opt.open_loop ? "open" : "closed", opt.connections, elapsed_s,
      static_cast<unsigned long long>(total.sent),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.shed),
      static_cast<unsigned long long>(total.governed),
      static_cast<unsigned long long>(total.torn),
      static_cast<unsigned long long>(total.errors),
      static_cast<unsigned long long>(total.kills), qps, shed_rate,
      static_cast<long long>(p50), static_cast<long long>(p95),
      static_cast<long long>(p99));

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (out) {
#ifdef GQL_BUILD_TYPE
      const char* build_type = GQL_BUILD_TYPE;
#else
      const char* build_type = "unknown";
#endif
      out << "{\"bench\": \"server_load\",\n"
          << " \"stamp\": {\"hardware_concurrency\": "
          << std::thread::hardware_concurrency()
          << ", \"build_type\": \"" << build_type << "\"},\n"
          << " \"mode\": \"" << (opt.open_loop ? "open" : "closed")
          << "\", \"connections\": " << opt.connections
          << ", \"duration_s\": " << elapsed_s << ",\n"
          << " \"sent\": " << total.sent << ", \"ok\": " << total.ok
          << ", \"shed\": " << total.shed
          << ", \"governed\": " << total.governed
          << ", \"torn\": " << total.torn
          << ", \"errors\": " << total.errors
          << ", \"kills\": " << total.kills << ",\n"
          << " \"qps\": " << qps << ", \"shed_rate\": " << shed_rate
          << ", \"p50_us\": " << p50 << ", \"p95_us\": " << p95
          << ", \"p99_us\": " << p99 << "}\n";
    }
  }

  // Overload outcomes (shed/governed) are successes for a load generator;
  // only protocol-level failures fail the run.
  return total.errors == 0 ? 0 : 1;
}
