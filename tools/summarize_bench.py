#!/usr/bin/env python3
"""Summarizes bench_output.txt into per-figure series tables.

Usage:
    python3 tools/summarize_bench.py [bench_output.txt] [metrics.json ...]

Parses google-benchmark console output produced by
`for b in build/bench/*; do $b; done` and prints, per figure benchmark,
one row per (x, series) with the per-query time or the reduction-ratio
counters — the numbers plotted in the paper's Figures 4.20-4.23.

Arguments ending in .json are treated as metric-registry dumps (produced
by running a bench binary with GQL_BENCH_METRICS_JSON=<path>, or saved
from gqlsh's `:metrics json`) and summarized as counter totals plus
histogram count/sum/mean/p50/p90/p99. Histogram percentiles are derived
from the registry's log2 buckets (bucket 0 holds value 0, bucket i holds
[2^(i-1), 2^i)) by interpolating within the bucket and clamping to the
recorded [min, max] — mirroring obs::HistogramSnapshot::Percentile.
"""

import json
import re
import sys
from collections import defaultdict

LINE = re.compile(
    r"^(BM_\w+)/((?:[\w:]+/?)*?)\s+([\d.]+) (ns|us|ms|s)\s+"
    r"[\d.]+ (?:ns|us|ms|s)\s+\d+\s*(.*)$"
)
COUNTER = re.compile(r"(\w+)=([-\d.e+]+[kMGTmunpfazy]?)")

SUFFIX = {
    "k": 1e3, "M": 1e6, "G": 1e9, "T": 1e12,
    "m": 1e-3, "u": 1e-6, "n": 1e-9, "p": 1e-12,
    "f": 1e-15, "a": 1e-18, "z": 1e-21, "y": 1e-24,
}


def parse_counter_value(text):
    if text and text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def bucket_lower_bound(i):
    """Lower bound of log2 bucket i (see obs::Histogram::BucketLowerBound)."""
    return 0 if i == 0 else 1 << (i - 1)


def bucket_upper_bound(i):
    """Upper bound of log2 bucket i (see obs::Histogram::BucketUpperBound)."""
    return 0 if i == 0 else (1 << i) - 1


def histogram_percentile(buckets, count, p, lo=0, hi=None):
    """Percentile estimate mirroring obs::HistogramSnapshot::Percentile:
    linear interpolation within the covering bucket, clamped to the
    recorded [lo, hi] extrema (exact for min/max, a factor-of-2 estimate
    in between)."""
    if count == 0:
        return 0
    if hi is None:
        hi = bucket_upper_bound(len(buckets) - 1)
    rank = max(1, int(p * count))
    seen = 0
    for i, c in enumerate(buckets):
        if c == 0:
            continue
        before = seen
        seen += c
        if seen < rank:
            continue
        blo = max(bucket_lower_bound(i), lo)
        bhi = min(bucket_upper_bound(i), hi)
        if bhi <= blo:
            return min(max(blo, lo), hi)
        v = blo + int((bhi - blo) * (rank - before) / c + 0.5)
        return min(max(v, lo), hi)
    return hi


def format_stamp(data):
    """One-line rendering of a BENCH_*.json provenance stamp, if present."""
    stamp = data.get("stamp")
    if not isinstance(stamp, dict):
        return ""
    return (f"  stamp: build={stamp.get('build_type', '?')}  "
            f"hw_threads={stamp.get('hardware_concurrency', '?')}  "
            f"gql_threads={stamp.get('gql_threads', '?')}")


def summarize_parallel(path, data):
    """Renders a bench_parallel_scaling dump (BENCH_parallel.json)."""
    print(f"\n== parallel scaling: {path} ==")
    stamp = format_stamp(data)
    if stamp:
        print(stamp)
    print(f"  workload: {data.get('workload', '?')}  "
          f"queries={data.get('queries', '?')}  "
          f"reps={data.get('reps', '?')}  "
          f"hw_threads={data.get('hardware_concurrency', '?')}")
    ident = data.get("identical")
    print(f"  match lists identical across sweep: {ident}")
    results = data.get("results", [])
    if results:
        print(f"  {'threads':>8} {'ms':>10} {'speedup':>9} {'stolen':>10} "
              f"{'retr_ms':>9} {'refine_ms':>10} {'search_ms':>10}")
        for r in results:
            print(f"  {r.get('threads', 0):>8} {r.get('ms', 0):>10.2f} "
                  f"{r.get('speedup', 0):>8.2f}x "
                  f"{r.get('tasks_stolen', 0):>10} "
                  f"{r.get('ms_retrieve', 0):>9.2f} "
                  f"{r.get('ms_refine', 0):>10.2f} "
                  f"{r.get('ms_search', 0):>10.2f}")


def summarize_storage(path, data):
    """Renders a bench_storage_snapshot dump (BENCH_storage.json)."""
    print(f"\n== storage snapshot: {path} ==")
    stamp = format_stamp(data)
    if stamp:
        print(stamp)
    print(f"  workload: {data.get('workload', '?')}  "
          f"reps={data.get('reps', '?')}")
    print(f"  snapshot: {data.get('snapshot_bytes', 0)} bytes "
          f"(csr {data.get('snapshot_csr_bytes', 0)}, "
          f"columns {data.get('snapshot_column_bytes', 0)}), "
          f"built in {data.get('snapshot_build_us', 0)} us")
    print(f"  match lists identical across lanes: {data.get('identical')}")
    lanes = data.get("lanes", [])
    if lanes:
        print(f"  {'lane':>10} {'ms':>10} {'peak_bytes':>12} "
              f"{'sum_peak_bytes':>15} {'matches':>8}")
        for lane in lanes:
            print(f"  {lane.get('lane', '?'):>10} {lane.get('ms', 0):>10.2f} "
                  f"{lane.get('peak_bytes', 0):>12} "
                  f"{lane.get('sum_peak_bytes', 0):>15} "
                  f"{lane.get('matches', 0):>8}")
    if len(lanes) >= 2 and lanes[1].get("ms"):
        speedup = lanes[0].get("ms", 0) / lanes[1]["ms"]
        print(f"  governed peak reduction: "
              f"{data.get('peak_reduction', 0) * 100:.1f}%  "
              f"throughput: {speedup:.2f}x")
    if "recorder_overhead" in data:
        print(f"  flight-recorder overhead: "
              f"{data['recorder_overhead'] * 100:+.2f}% (budget 2%)")
    pc = data.get("plan_cache")
    if isinstance(pc, dict):
        print(f"  plan cache: cold={pc.get('cold_ms', 0):.2f}ms "
              f"warm={pc.get('warm_ms', 0):.2f}ms "
              f"hits={pc.get('warm_hits', 0)}  "
              f"warm front-end {pc.get('warm_frontend_fraction', 0) * 100:.2f}%"
              f" of time (budget 5%)")
    durable = data.get("durable")
    if isinstance(durable, dict):
        print(f"  durable open (to query-ready):")
        for lane in durable.get("open_lanes", []):
            print(f"  {lane.get('lane', '?'):>12} "
                  f"{lane.get('ms', 0):>10.2f} ms  "
                  f"{lane.get('file_bytes', 0):>10} file bytes")
        print(f"  v3 open speedup: "
              f"{durable.get('open_speedup_vs_text', 0):.1f}x vs v2 text "
              f"(budget 10x), "
              f"{durable.get('open_speedup_vs_binary', 0):.1f}x vs v2 "
              f"binary; materialized identical: {durable.get('identical')}")
        for lane in durable.get("recovery_lanes", []):
            print(f"  recovery {lane.get('lane', '?'):>12} "
                  f"{lane.get('ms', 0):>10.2f} ms  "
                  f"wal_records={lane.get('wal_records', 0)}  "
                  f"checkpoint_docs={lane.get('checkpoint_docs', 0)}")


def summarize_selection(path, data):
    """Renders a bench_selection_vectorized dump (BENCH_selection.json)."""
    print(f"\n== selection kernels: {path} ==")
    stamp = format_stamp(data)
    if stamp:
        print(stamp)
    print(f"  workload: {data.get('workload', '?')}  "
          f"reps={data.get('reps', '?')}  quick={data.get('quick')}")
    print(f"  match lists identical across kernels: {data.get('identical')}")
    lanes = data.get("lanes", [])
    if lanes:
        print(f"  {'kernel':>10} {'retrieve_ms':>12} {'match_ms':>10} "
              f"{'candidates':>11} {'matches':>8} {'speedup':>8}")
        for lane in lanes:
            print(f"  {lane.get('lane', '?'):>10} "
                  f"{lane.get('retrieve_ms', 0):>12.3f} "
                  f"{lane.get('match_ms', 0):>10.2f} "
                  f"{lane.get('candidates', 0):>11} "
                  f"{lane.get('matches', 0):>8} "
                  f"{lane.get('retrieve_speedup', 0):>7.2f}x")


def summarize_server(path, data):
    """Renders a tools/loadgen dump (BENCH_server.json)."""
    print(f"\n== server load: {path} ==")
    stamp = format_stamp(data)
    if stamp:
        print(stamp)
    print(f"  mode={data.get('mode', '?')}  "
          f"connections={data.get('connections', '?')}  "
          f"duration={data.get('duration_s', 0):.2f}s")
    sent = data.get("sent", 0)
    ok = data.get("ok", 0)
    shed = data.get("shed", 0)
    governed = data.get("governed", 0)
    print(f"  sent={sent}  ok={ok}  shed={shed}  governed={governed}  "
          f"torn={data.get('torn', 0)}  errors={data.get('errors', 0)}  "
          f"kills={data.get('kills', 0)}")
    print(f"  qps={data.get('qps', 0):.1f}  "
          f"shed_rate={data.get('shed_rate', 0) * 100:.1f}%  "
          f"p50={data.get('p50_us', 0)}us  p95={data.get('p95_us', 0)}us  "
          f"p99={data.get('p99_us', 0)}us")


def summarize_metrics(path):
    with open(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as e:
            print(f"\n== metrics: {path} ==\n  not a metrics dump: {e}")
            return
    if data.get("bench") == "parallel_scaling":
        summarize_parallel(path, data)
        return
    if data.get("bench") == "storage_snapshot":
        summarize_storage(path, data)
        return
    if data.get("bench") == "selection_vectorized":
        summarize_selection(path, data)
        return
    if data.get("bench") == "server_load":
        summarize_server(path, data)
        return
    print(f"\n== metrics: {path} ==")
    stamp = format_stamp(data)
    if stamp:
        print(stamp)
    counters = data.get("counters", {})
    if counters:
        print("  counters:")
        width = max(len(k) for k in counters)
        for name in sorted(counters):
            print(f"    {name:<{width}}  {counters[name]}")
    histograms = data.get("histograms", {})
    if histograms:
        print("  histograms (count / sum / mean / min / max / "
              "p50 / p90 / p99):")
        for name in sorted(histograms):
            h = histograms[name]
            count, total = h.get("count", 0), h.get("sum", 0)
            buckets = h.get("buckets", [])
            lo, hi = h.get("min", 0), h.get("max")
            mean = total / count if count else 0
            p50, p90, p99 = (histogram_percentile(buckets, count, p, lo, hi)
                             for p in (0.5, 0.9, 0.99))
            print(f"    {name}  count={count}  sum={total}  "
                  f"mean={mean:.1f}  min={lo}  max={hi if count else 0}  "
                  f"p50~{p50}  p90~{p90}  p99~{p99}")


def summarize_console(path):
    groups = defaultdict(list)
    with open(path) as f:
        for raw in f:
            m = LINE.match(raw.strip())
            if not m:
                continue
            name, args, time_value, unit, rest = m.groups()
            counters = {k: parse_counter_value(v)
                        for k, v in COUNTER.findall(rest)}
            label_words = [w for w in rest.split()
                           if "=" not in w and w.strip()]
            label = label_words[-1] if label_words else ""
            groups[name].append((args.rstrip("/"), label,
                                 f"{time_value} {unit}", counters))

    for name in sorted(groups):
        print(f"\n== {name} ==")
        for args, label, time_str, counters in groups[name]:
            parts = [f"{args:<40}"]
            if label:
                parts.append(f"{label:<22}")
            parts.append(f"time/iter={time_str:<12}")
            for key in ("s_per_query", "log10_ratio_profiles",
                        "log10_ratio_subgraphs", "log10_ratio_refined",
                        "matches", "candidates", "search_steps",
                        "bipartite_checks", "geomean_space"):
                if key in counters:
                    parts.append(f"{key}={counters[key]:.6g}")
            print("  " + "  ".join(parts))


def main():
    args = sys.argv[1:] or ["bench_output.txt"]
    for path in args:
        if path.endswith(".json"):
            summarize_metrics(path)
        else:
            summarize_console(path)


if __name__ == "__main__":
    main()
