#!/usr/bin/env python3
"""Summarizes bench_output.txt into per-figure series tables.

Usage:
    python3 tools/summarize_bench.py [bench_output.txt]

Parses google-benchmark console output produced by
`for b in build/bench/*; do $b; done` and prints, per figure benchmark,
one row per (x, series) with the per-query time or the reduction-ratio
counters — the numbers plotted in the paper's Figures 4.20-4.23.
"""

import re
import sys
from collections import defaultdict

LINE = re.compile(
    r"^(BM_\w+)/((?:[\w:]+/?)*?)\s+([\d.]+) (ns|us|ms|s)\s+"
    r"[\d.]+ (?:ns|us|ms|s)\s+\d+\s*(.*)$"
)
COUNTER = re.compile(r"(\w+)=([-\d.e+]+[kMGTmunpfazy]?)")

SUFFIX = {
    "k": 1e3, "M": 1e6, "G": 1e9, "T": 1e12,
    "m": 1e-3, "u": 1e-6, "n": 1e-9, "p": 1e-12,
    "f": 1e-15, "a": 1e-18, "z": 1e-21, "y": 1e-24,
}


def parse_counter_value(text):
    if text and text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    groups = defaultdict(list)
    with open(path) as f:
        for raw in f:
            m = LINE.match(raw.strip())
            if not m:
                continue
            name, args, time_value, unit, rest = m.groups()
            counters = {k: parse_counter_value(v)
                        for k, v in COUNTER.findall(rest)}
            label_words = [w for w in rest.split()
                           if "=" not in w and w.strip()]
            label = label_words[-1] if label_words else ""
            groups[name].append((args.rstrip("/"), label,
                                 f"{time_value} {unit}", counters))

    for name in sorted(groups):
        print(f"\n== {name} ==")
        for args, label, time_str, counters in groups[name]:
            parts = [f"{args:<40}"]
            if label:
                parts.append(f"{label:<22}")
            parts.append(f"time/iter={time_str:<12}")
            for key in ("s_per_query", "log10_ratio_profiles",
                        "log10_ratio_subgraphs", "log10_ratio_refined",
                        "matches", "candidates", "search_steps",
                        "bipartite_checks", "geomean_space"):
                if key in counters:
                    parts.append(f"{key}={counters[key]:.6g}")
            print("  " + "  ".join(parts))


if __name__ == "__main__":
    main()
