// Figure 4.23(b): total query time vs graph size (10K..320K nodes, m = 5n)
// at query size 4: Optimized vs Baseline vs SQL.
//
// Expected shape (paper): with small queries, all approaches scale to
// large graphs (candidate sets grow linearly), but Optimized stays lowest
// and SQL highest throughout.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"

namespace graphql::bench {
namespace {

enum Method { kOptimized = 0, kBaseline, kSql };

const char* MethodName(int m) {
  switch (m) {
    case kOptimized:
      return "optimized";
    case kBaseline:
      return "baseline";
    case kSql:
      return "sql";
  }
  return "?";
}

struct SizedWorkload {
  SyntheticWorkload base;
  std::unique_ptr<rel::SqlGraphDatabase> sql;
  std::vector<Graph> queries;
};

const SizedWorkload& WorkloadForSize(size_t n) {
  static std::map<size_t, std::unique_ptr<SizedWorkload>>* cache =
      new std::map<size_t, std::unique_ptr<SizedWorkload>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto w = std::make_unique<SizedWorkload>();
    w->base = MakeSyntheticWorkload(n, /*build_neighborhoods=*/false,
                                    9000 + n);
    w->sql = std::make_unique<rel::SqlGraphDatabase>(
        rel::SqlGraphDatabase::FromGraph(w->base.graph));
    w->queries = MakeLowHitConnectedQueries(w->base, /*size=*/4,
                                            /*count=*/10, n * 7);
    it = cache->emplace(n, std::move(w)).first;
  }
  return *it->second;
}

void BM_Fig23b_Total(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0)) * 1000;
  int method = static_cast<int>(state.range(1));
  const SizedWorkload& w = WorkloadForSize(n);
  if (w.queries.empty()) {
    state.SkipWithError("no low-hit queries");
    return;
  }
  std::vector<algebra::GraphPattern> patterns;
  for (const Graph& q : w.queries) {
    patterns.push_back(algebra::GraphPattern::FromGraph(q));
  }

  size_t total_matches = 0;
  for (auto _ : state) {
    total_matches = 0;
    for (algebra::GraphPattern& p : patterns) {
      switch (method) {
        case kOptimized: {
          match::PipelineOptions o;
          o.match.max_matches = kMaxHits;
          GovernBenchQuery(&o);
          auto m = match::MatchPattern(p, w.base.graph, &w.base.index, o);
          if (m.ok()) total_matches += m->size();
          break;
        }
        case kBaseline: {
          match::PipelineOptions o;
          o.candidate_mode = match::CandidateMode::kLabelOnly;
          o.refine_level = 0;
          o.optimize_order = false;
          o.match.max_matches = kMaxHits;
          GovernBenchQuery(&o);
          auto m = match::MatchPattern(p, w.base.graph, &w.base.index, o);
          if (m.ok()) total_matches += m->size();
          break;
        }
        case kSql: {
          auto rows = w.sql->MatchPattern(p, kMaxHits);
          if (rows.ok()) total_matches += rows->size();
          break;
        }
      }
    }
  }
  state.SetLabel(MethodName(method));
  state.counters["nodes"] = static_cast<double>(n);
  state.counters["queries"] = static_cast<double>(w.queries.size());
  state.counters["matches"] = static_cast<double>(total_matches);
  state.counters["s_per_query"] = benchmark::Counter(
      static_cast<double>(w.queries.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

// Graph sizes in thousands of nodes: 10K, 20K, 40K, 80K, 160K, 320K.
BENCHMARK(BM_Fig23b_Total)
    ->ArgsProduct({{10, 20, 40, 80, 160, 320}, {kOptimized, kBaseline, kSql}})
    ->ArgNames({"kilo_nodes", "method"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
