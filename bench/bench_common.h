#ifndef GRAPHQL_BENCH_BENCH_COMMON_H_
#define GRAPHQL_BENCH_BENCH_COMMON_H_

// Shared workload setup for the figure-reproduction benchmarks. Each bench
// binary regenerates one table/figure of the paper's evaluation
// (Section 5); see DESIGN.md's experiment index for the mapping.
//
// The workloads substitute synthetic data for the paper's yeast protein
// network and MySQL instance (DESIGN.md, Substitutions) with matched
// shape: 3112 nodes / 12519 edges / 183 labels, clique queries drawn from
// the top-40 most frequent labels, Erdos-Renyi graphs with m = 5n and 100
// Zipf labels.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "algebra/pattern.h"
#include "common/governor.h"
#include "common/thread_pool.h"
#include "match/pipeline.h"
#include "obs/metrics.h"
#include "rel/sql_plan.h"
#include "workload/erdos_renyi.h"
#include "workload/protein_network.h"
#include "workload/queries.h"

namespace graphql::bench {

/// Provenance stamp embedded in every BENCH_*.json dump: the machine's
/// hardware thread count, the effective $GQL_THREADS default the engine
/// would use, and the compiler's build type — enough to tell two runs of
/// the same bench apart when comparing numbers across machines or configs.
inline std::string BuildStampJson() {
#ifdef GQL_BUILD_TYPE
  const char* build_type = GQL_BUILD_TYPE;
#elif defined(NDEBUG)
  const char* build_type = "Release(NDEBUG)";
#else
  const char* build_type = "Debug";
#endif
  std::string out = "{\"hardware_concurrency\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += ", \"gql_threads\": ";
  out += std::to_string(DefaultNumThreads());
  out += ", \"build_type\": \"";
  out += build_type;
  out += "\"}";
  return out;
}

/// When GQL_BENCH_METRICS_JSON names a file, every bench binary dumps the
/// global metric registry there as JSON at exit (counters and latency
/// histograms accumulated by the pipeline during the run), stamped with
/// BuildStampJson(); feed the file to tools/summarize_bench.py. Registered
/// from a header so each binary picks it up just by including
/// bench_common.h.
struct MetricsDumpAtExit {
  MetricsDumpAtExit() {
    static bool registered = [] {
      std::atexit([] {
        const char* path = std::getenv("GQL_BENCH_METRICS_JSON");
        if (path == nullptr || *path == '\0') return;
        std::ofstream out(path);
        if (!out) return;
        std::string json = obs::MetricsRegistry::Global().ToJson();
        // Splice the stamp in as the first member of the top-level object.
        if (!json.empty() && json.front() == '{') {
          json.insert(1, "\"stamp\":" + BuildStampJson() + ",");
        }
        out << json << "\n";
      });
      return true;
    }();
    (void)registered;
  }
};
inline MetricsDumpAtExit metrics_dump_at_exit;

/// Per-process resource-governor knobs for bench runs, read once from the
/// environment (unset/0 = unlimited):
///   GQL_BENCH_TIMEOUT_MS      wall-clock deadline per governed query
///   GQL_BENCH_MAX_STEPS       unified step budget per governed query
///   GQL_BENCH_MAX_MEMORY_MB   approximate memory budget per governed query
/// Lets a long figure sweep be bounded ("no query may run longer than 2s")
/// without editing the benches; governed queries return their partial
/// matches, so counters still accumulate.
inline const GovernorLimits& BenchGovernorLimits() {
  static const GovernorLimits kLimits = [] {
    GovernorLimits l;
    if (const char* v = std::getenv("GQL_BENCH_TIMEOUT_MS")) {
      l.timeout_ms = std::atoll(v);
    }
    if (const char* v = std::getenv("GQL_BENCH_MAX_STEPS")) {
      l.max_steps = std::strtoull(v, nullptr, 10);
    }
    if (const char* v = std::getenv("GQL_BENCH_MAX_MEMORY_MB")) {
      l.max_memory_bytes = std::strtoull(v, nullptr, 10) * 1024 * 1024;
    }
    return l;
  }();
  return kLimits;
}

/// Per-process pipeline knobs for bench runs, read once from the
/// environment (unset = engine defaults):
///   GQL_BENCH_THREADS               workers for the parallel selection
///                                   stages (0 = serial); overrides the
///                                   engine-wide $GQL_THREADS default
///   GQL_BENCH_NEIGHBORHOOD_BUDGET   per-test neighborhood sub-iso step
///                                   budget (0 = unlimited)
inline void ApplyBenchPipelineEnv(match::PipelineOptions* options) {
  static const int kThreads = [] {
    const char* v = std::getenv("GQL_BENCH_THREADS");
    return v != nullptr && *v != '\0' ? std::atoi(v) : -1;
  }();
  static const long long kNbhBudget = [] {
    const char* v = std::getenv("GQL_BENCH_NEIGHBORHOOD_BUDGET");
    return v != nullptr && *v != '\0' ? std::atoll(v) : -1;
  }();
  if (kThreads >= 0) options->num_threads = kThreads;
  if (kNbhBudget >= 0) {
    options->neighborhood_step_budget = static_cast<uint64_t>(kNbhBudget);
  }
}

/// Installs a freshly re-armed governor (per-query deadline clock) into the
/// options when any env knob is set; leaves them ungoverned otherwise.
/// The governor is thread-local: google-benchmark runs each benchmark's
/// iterations on one thread, and one governor belongs to one query at a
/// time. Also applies the pipeline env knobs (threads, neighborhood
/// budget) so every bench binary honors them without per-bench wiring.
inline void GovernBenchQuery(match::PipelineOptions* options) {
  ApplyBenchPipelineEnv(options);
  const GovernorLimits& limits = BenchGovernorLimits();
  if (limits.Unlimited()) return;
  static thread_local ResourceGovernor governor;
  governor.Arm(limits);
  options->governor = &governor;
}

/// The paper's per-query answer cap ("queries having too many hits (more
/// than 1000) are terminated immediately").
inline constexpr size_t kMaxHits = 1000;
/// Low-hits / high-hits split (Section 5.1).
inline constexpr size_t kLowHitThreshold = 100;

struct ProteinWorkload {
  Graph graph;
  match::LabelIndex index;
  std::vector<std::string> top_labels;  ///< 40 most frequent labels.
};

/// Builds (once) the protein-network workload with a radius-1 index
/// holding both profiles and neighborhood subgraphs.
inline const ProteinWorkload& GetProteinWorkload() {
  static const ProteinWorkload* const kWorkload = [] {
    auto* w = new ProteinWorkload();
    Rng rng(20080610);  // SIGMOD'08 vintage seed.
    w->graph = workload::MakeProteinNetwork({}, &rng);
    w->index = match::LabelIndex::Build(w->graph);
    auto top = w->index.LabelsByFrequency();
    for (size_t i = 0; i < 40 && i < top.size(); ++i) {
      w->top_labels.push_back(std::string(w->index.LabelName(top[i])));
    }
    return w;
  }();
  return *kWorkload;
}

struct ClassifiedQueries {
  std::vector<Graph> low_hits;   ///< 1..99 answers.
  std::vector<Graph> high_hits;  ///< >= 100 answers (capped at 1000).
};

/// Generates clique queries of `size` with answers and classifies them by
/// answer count under the optimized pipeline. The paper generates random
/// label combinations and discards no-answer queries; on the synthetic
/// network that protocol only terminates if queries are drawn from labels
/// of actual cliques, so the generator extracts a random data clique and
/// uses its labels (see workload::ExtractCliqueQuery). Generation stops
/// after `want_each` queries per class or `max_attempts` tries.
inline ClassifiedQueries MakeClassifiedCliqueQueries(size_t size,
                                                     size_t want_each,
                                                     size_t max_attempts,
                                                     uint64_t seed) {
  const ProteinWorkload& w = GetProteinWorkload();
  Rng rng(seed);
  ClassifiedQueries out;
  match::PipelineOptions options;
  options.match.max_matches = kMaxHits;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (out.low_hits.size() >= want_each &&
        out.high_hits.size() >= want_each) {
      break;
    }
    auto q = workload::ExtractCliqueQuery(w.graph, size, &rng);
    if (!q.ok()) continue;
    algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);
    auto matches = match::MatchPattern(p, w.graph, &w.index, options);
    if (!matches.ok() || matches->empty()) continue;
    if (matches->size() < kLowHitThreshold) {
      if (out.low_hits.size() < want_each) out.low_hits.push_back(*q);
    } else {
      if (out.high_hits.size() < want_each) out.high_hits.push_back(*q);
    }
  }
  return out;
}

struct SyntheticWorkload {
  Graph graph;
  match::LabelIndex index;
};

/// Erdos-Renyi workload: n nodes, 5n edges, 100 Zipf labels (Section 5.2).
/// `build_neighborhoods` may be disabled for the large graph-size sweep.
inline SyntheticWorkload MakeSyntheticWorkload(size_t n,
                                               bool build_neighborhoods,
                                               uint64_t seed) {
  SyntheticWorkload w;
  Rng rng(seed);
  workload::ErdosRenyiOptions options;
  options.num_nodes = n;
  options.num_edges = 5 * n;
  options.num_labels = 100;
  w.graph = workload::MakeErdosRenyi(options, &rng);
  match::LabelIndexOptions iopts;
  iopts.build_neighborhoods = build_neighborhoods;
  w.index = match::LabelIndex::Build(w.graph, iopts);
  return w;
}

/// Random connected queries with at least one answer and under the hit cap
/// ("low hits"), per Section 5.2.
inline std::vector<Graph> MakeLowHitConnectedQueries(
    const SyntheticWorkload& w, size_t size, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Graph> out;
  match::PipelineOptions options;
  options.match.max_matches = kMaxHits;
  for (size_t attempt = 0; attempt < count * 30 && out.size() < count;
       ++attempt) {
    auto q = workload::ExtractConnectedQuery(w.graph, size, &rng);
    if (!q.ok()) continue;
    algebra::GraphPattern p = algebra::GraphPattern::FromGraph(*q);
    auto matches = match::MatchPattern(p, w.graph, &w.index, options);
    if (!matches.ok() || matches->empty()) continue;
    if (matches->size() >= kLowHitThreshold) continue;
    out.push_back(std::move(q).value());
  }
  return out;
}

/// Mean of log10(x) over the positive entries: the figures plot log-scale
/// reduction ratios, and exponents are also what benchmark counters can
/// display unambiguously (SI suffixes stop at 1e-24).
inline double MeanLog10(const std::vector<double>& xs) {
  double acc = 0;
  size_t n = 0;
  for (double x : xs) {
    if (x <= 0) continue;  // A zero ratio (empty space) contributes log 0.
    acc += std::log10(x);
    ++n;
  }
  if (n == 0) return 0;
  return acc / static_cast<double>(n);
}

/// Geometric mean (exp10 of MeanLog10).
inline double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::pow(10.0, MeanLog10(xs));
}

}  // namespace graphql::bench

#endif  // GRAPHQL_BENCH_BENCH_COMMON_H_
