// Figure 4.20: search-space reduction ratio vs clique size on the protein
// network, for (a) low-hit and (b) high-hit queries.
//
// Series (as in the paper): "retrieve by profiles", "retrieve by
// subgraphs", "refined search space" — each reported as the geometric mean
// of ratio(space_method / space_baseline) over the query set, where the
// baseline space is retrieval by node attributes.
//
// Expected shape: all ratios << 1 and shrinking with clique size; for
// cliques, subgraph retrieval gives the smallest space (the radius-1
// neighborhood of a clique node is the whole clique) and refinement always
// improves on profile retrieval.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace graphql::bench {
namespace {

const ClassifiedQueries& QueriesForSize(size_t size) {
  static std::map<size_t, ClassifiedQueries>* cache =
      new std::map<size_t, ClassifiedQueries>();
  auto it = cache->find(size);
  if (it == cache->end()) {
    it = cache
             ->emplace(size, MakeClassifiedCliqueQueries(
                                 size, /*want_each=*/25,
                                 /*max_attempts=*/600, /*seed=*/size * 101))
             .first;
  }
  return it->second;
}

void BM_Fig20_CliqueSpace(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  bool high = state.range(1) != 0;
  const ClassifiedQueries& classified = QueriesForSize(size);
  const std::vector<Graph>& queries =
      high ? classified.high_hits : classified.low_hits;
  const ProteinWorkload& w = GetProteinWorkload();

  std::vector<double> ratio_profiles;
  std::vector<double> ratio_subgraphs;
  std::vector<double> ratio_refined;

  for (auto _ : state) {
    ratio_profiles.clear();
    ratio_subgraphs.clear();
    ratio_refined.clear();
    for (const Graph& q : queries) {
      algebra::GraphPattern p = algebra::GraphPattern::FromGraph(q);
      match::PipelineOptions options;
      match::PipelineStats stats;

      options.candidate_mode = match::CandidateMode::kProfile;
      match::RetrieveCandidates(p, w.graph, &w.index, options, &stats);
      double space0 = stats.SpaceAttr();
      if (space0 <= 0) continue;
      ratio_profiles.push_back(stats.SpaceRetrieved() / space0);

      options.candidate_mode = match::CandidateMode::kNeighborhood;
      match::RetrieveCandidates(p, w.graph, &w.index, options, &stats);
      ratio_subgraphs.push_back(stats.SpaceRetrieved() / space0);

      // Refined space on top of profile retrieval (the paper's setup:
      // refinement input comes from "retrieve by profiles", level = query
      // size).
      options.candidate_mode = match::CandidateMode::kProfile;
      options.refine_level = static_cast<int>(size);
      options.match.max_matches = kMaxHits;
      match::PipelineStats full;
      auto r = match::MatchPattern(p, w.graph, &w.index, options, &full);
      benchmark::DoNotOptimize(r);
      ratio_refined.push_back(full.SpaceRefined() / space0);
    }
  }

  state.counters["queries"] = static_cast<double>(queries.size());
  state.counters["log10_ratio_profiles"] = MeanLog10(ratio_profiles);
  state.counters["log10_ratio_subgraphs"] = MeanLog10(ratio_subgraphs);
  state.counters["log10_ratio_refined"] = MeanLog10(ratio_refined);
}

BENCHMARK(BM_Fig20_CliqueSpace)
    ->ArgsProduct({{2, 3, 4, 5, 6, 7}, {0, 1}})
    ->ArgNames({"clique", "high_hits"})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
