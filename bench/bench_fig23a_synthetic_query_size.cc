// Figure 4.23(a): total query time vs query size (4..20) on the 10K-node
// synthetic graph: Optimized vs Baseline vs SQL.
//
// Expected shape (paper): the SQL approach is not scalable to large
// queries (its curve climbs steeply with query size: two joins per edge);
// Optimized stays flat and lowest.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace graphql::bench {
namespace {

enum Method { kOptimized = 0, kBaseline, kSql };

const char* MethodName(int m) {
  switch (m) {
    case kOptimized:
      return "optimized";
    case kBaseline:
      return "baseline";
    case kSql:
      return "sql";
  }
  return "?";
}

const SyntheticWorkload& Workload() {
  static const SyntheticWorkload* const kW = [] {
    return new SyntheticWorkload(
        MakeSyntheticWorkload(10000, /*build_neighborhoods=*/false, 808));
  }();
  return *kW;
}

const rel::SqlGraphDatabase& SqlDb() {
  static const rel::SqlGraphDatabase* const kDb = [] {
    return new rel::SqlGraphDatabase(
        rel::SqlGraphDatabase::FromGraph(Workload().graph));
  }();
  return *kDb;
}

const std::vector<Graph>& Queries(size_t size) {
  static std::map<size_t, std::vector<Graph>>* cache =
      new std::map<size_t, std::vector<Graph>>();
  auto it = cache->find(size);
  if (it == cache->end()) {
    it = cache
             ->emplace(size, MakeLowHitConnectedQueries(Workload(), size,
                                                        /*count=*/10,
                                                        size * 61))
             .first;
  }
  return it->second;
}

void BM_Fig23a_Total(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  int method = static_cast<int>(state.range(1));
  const SyntheticWorkload& w = Workload();
  const std::vector<Graph>& queries = Queries(size);
  if (queries.empty()) {
    state.SkipWithError("no low-hit queries of this size");
    return;
  }
  if (method == kSql) SqlDb();

  std::vector<algebra::GraphPattern> patterns;
  for (const Graph& q : queries) {
    patterns.push_back(algebra::GraphPattern::FromGraph(q));
  }

  size_t total_matches = 0;
  for (auto _ : state) {
    total_matches = 0;
    for (algebra::GraphPattern& p : patterns) {
      switch (method) {
        case kOptimized: {
          match::PipelineOptions o;
          o.match.max_matches = kMaxHits;
          GovernBenchQuery(&o);
          auto m = match::MatchPattern(p, w.graph, &w.index, o);
          if (m.ok()) total_matches += m->size();
          break;
        }
        case kBaseline: {
          match::PipelineOptions o;
          o.candidate_mode = match::CandidateMode::kLabelOnly;
          o.refine_level = 0;
          o.optimize_order = false;
          o.match.max_matches = kMaxHits;
          o.match.max_steps = 200000000;  // Hang guard only.
          GovernBenchQuery(&o);
          auto m = match::MatchPattern(p, w.graph, &w.index, o);
          if (m.ok()) total_matches += m->size();
          break;
        }
        case kSql: {
          auto rows = SqlDb().MatchPattern(p, kMaxHits);
          if (rows.ok()) total_matches += rows->size();
          break;
        }
      }
    }
  }
  state.SetLabel(MethodName(method));
  state.counters["queries"] = static_cast<double>(queries.size());
  state.counters["matches"] = static_cast<double>(total_matches);
  state.counters["s_per_query"] = benchmark::Counter(
      static_cast<double>(queries.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

BENCHMARK(BM_Fig23a_Total)
    ->ArgsProduct({{4, 8, 12, 16, 20}, {kOptimized, kBaseline, kSql}})
    ->ArgNames({"qsize", "method"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
