// Micro-benchmarks of the individual substrates: Hopcroft-Karp matching,
// profile containment, neighborhood extraction, label-index build, the
// GraphQL parser, and relational index probes. These are regression
// sentinels rather than paper figures.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lang/parser.h"
#include "match/bipartite.h"
#include "match/neighborhood.h"
#include "match/profile.h"
#include "reach/reachability.h"

namespace graphql::bench {
namespace {

void BM_HopcroftKarp(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<std::vector<int>> adj(n);
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.NextBool(4.0 / n)) adj[l].push_back(r);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::MaxBipartiteMatching(n, n, adj));
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(16)->Arg(64)->Arg(256);

void BM_ProfileContains(benchmark::State& state) {
  const ProteinWorkload& w = GetProteinWorkload();
  const match::Profile& haystack = w.index.profile(0);
  match::Profile needle = haystack;
  if (needle.size() > 2) needle.resize(needle.size() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::ProfileContains(haystack, needle));
  }
}
BENCHMARK(BM_ProfileContains);

void BM_BuildProfileRadius1(benchmark::State& state) {
  const Graph& g = GetProteinWorkload().graph;
  std::vector<int> scratch(g.NumNodes(), -1);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::BuildProfile(g, v, 1, &scratch));
    v = static_cast<NodeId>((v + 1) % g.NumNodes());
  }
}
BENCHMARK(BM_BuildProfileRadius1);

void BM_ExtractNeighborhood(benchmark::State& state) {
  const Graph& g = GetProteinWorkload().graph;
  std::vector<NodeId> scratch(g.NumNodes(), kInvalidNode);
  NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::ExtractNeighborhood(g, v, 1, &scratch));
    v = static_cast<NodeId>((v + 1) % g.NumNodes());
  }
}
BENCHMARK(BM_ExtractNeighborhood);

void BM_LabelIndexBuild(benchmark::State& state) {
  const Graph& g = GetProteinWorkload().graph;
  match::LabelIndexOptions options;
  options.build_neighborhoods = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::LabelIndex::Build(g, options));
  }
  state.SetLabel(options.build_neighborhoods ? "with_neighborhoods"
                                             : "profiles_only");
}
BENCHMARK(BM_LabelIndexBuild)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ParseCoauthorshipQuery(benchmark::State& state) {
  const char* query = R"(
    graph P { node v1 <author>; node v2 <author>; }
      where P.booktitle = "SIGMOD";
    C := graph {};
    for P exhaustive in doc("DBLP") let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name = C.v1.name;
      unify P.v2, C.v2 where P.v2.name = C.v2.name;
    };
  )";
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::Parser::ParseProgram(query));
  }
}
BENCHMARK(BM_ParseCoauthorshipQuery);

void BM_SqlIndexProbe(benchmark::State& state) {
  static const rel::SqlGraphDatabase* const kDb = [] {
    return new rel::SqlGraphDatabase(
        rel::SqlGraphDatabase::FromGraph(GetProteinWorkload().graph));
  }();
  const Graph& g = GetProteinWorkload().graph;
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u <label=\"" +
      std::string(g.Label(0)) + "\">; node v; edge (u, v); }");
  if (!p.ok()) {
    state.SkipWithError("pattern parse failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kDb->MatchPattern(*p, 100));
  }
}
BENCHMARK(BM_SqlIndexProbe)->Unit(benchmark::kMicrosecond);

void BM_AttrIndexRangeRetrieval(benchmark::State& state) {
  // Range-constrained wildcard node: B+-tree retrieval vs full scan.
  bool use_index = state.range(0) != 0;
  static const Graph* const kG = [] {
    Rng rng(321);
    Graph* g = new Graph("attrs");
    for (int i = 0; i < 20000; ++i) {
      AttrTuple attrs;
      attrs.Set("weight", Value(static_cast<int64_t>(rng.NextBounded(1000))));
      g->AddNode("", std::move(attrs));
    }
    for (int i = 0; i < 60000; ++i) {
      g->AddEdge(static_cast<NodeId>(rng.NextBounded(20000)),
                 static_cast<NodeId>(rng.NextBounded(20000)));
    }
    return g;
  }();
  static const match::LabelIndex* const kWithAttr = [] {
    match::LabelIndexOptions o;
    o.build_profiles = false;
    o.build_neighborhoods = false;
    o.indexed_attributes = {"weight"};
    return new match::LabelIndex(match::LabelIndex::Build(*kG, o));
  }();
  static const match::LabelIndex* const kPlain = [] {
    match::LabelIndexOptions o;
    o.build_profiles = false;
    o.build_neighborhoods = false;
    return new match::LabelIndex(match::LabelIndex::Build(*kG, o));
  }();
  auto p = algebra::GraphPattern::Parse(
      "graph P { node u where weight >= 990; node v; edge (u, v); }");
  if (!p.ok()) {
    state.SkipWithError("pattern parse failed");
    return;
  }
  match::PipelineOptions options;
  options.candidate_mode = match::CandidateMode::kLabelOnly;
  options.refine_level = 0;
  const match::LabelIndex* index = use_index ? kWithAttr : kPlain;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        match::RetrieveCandidates(*p, *kG, index, options));
  }
  state.SetLabel(use_index ? "btree_range" : "full_scan");
}
BENCHMARK(BM_AttrIndexRangeRetrieval)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("indexed")
    ->Unit(benchmark::kMicrosecond);

Graph DirectedWorkload() {
  Rng rng(77);
  Graph g("d", /*directed=*/true);
  size_t n = 5000;
  for (size_t i = 0; i < n; ++i) g.AddNode();
  for (size_t i = 0; i < 4 * n; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<NodeId>(rng.NextBounded(n)));
  }
  return g;
}

void BM_ReachabilityBuild(benchmark::State& state) {
  static const Graph* const kG = new Graph(DirectedWorkload());
  for (auto _ : state) {
    auto index = reach::ReachabilityIndex::Build(*kG);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_ReachabilityBuild)->Unit(benchmark::kMillisecond);

void BM_ReachabilityQuery(benchmark::State& state) {
  static const Graph* const kG = new Graph(DirectedWorkload());
  static const reach::ReachabilityIndex* const kIndex = [] {
    auto r = reach::ReachabilityIndex::Build(*kG);
    return new reach::ReachabilityIndex(std::move(r).value());
  }();
  Rng rng(5);
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(kG->NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(kG->NumNodes()));
    benchmark::DoNotOptimize(kIndex->Reachable(u, v));
  }
}
BENCHMARK(BM_ReachabilityQuery);

void BM_ReachabilityBfsQuery(benchmark::State& state) {
  static const Graph* const kG = new Graph(DirectedWorkload());
  Rng rng(5);
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(kG->NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(kG->NumNodes()));
    benchmark::DoNotOptimize(reach::BfsReachable(*kG, u, v));
  }
}
BENCHMARK(BM_ReachabilityBfsQuery)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
