// Figure 4.21(a): average per-query processing time of the individual
// selection steps vs clique size (protein network, low-hit queries):
//   retrieve-by-profiles, retrieve-by-subgraphs, refine search space,
//   search with optimized order, search without optimized order.
//
// Expected shape: subgraph retrieval has by far the largest overhead;
// profile retrieval is cheap; refinement is moderate; optimized-order
// search is no slower (usually faster) than declaration order.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace graphql::bench {
namespace {

enum Step {
  kRetrieveProfiles = 0,
  kRetrieveSubgraphs,
  kRefine,
  kSearchOptOrder,
  kSearchDeclOrder,
};

const char* StepName(int step) {
  switch (step) {
    case kRetrieveProfiles:
      return "retrieve_profiles";
    case kRetrieveSubgraphs:
      return "retrieve_subgraphs";
    case kRefine:
      return "refine";
    case kSearchOptOrder:
      return "search_opt_order";
    case kSearchDeclOrder:
      return "search_decl_order";
  }
  return "?";
}

const std::vector<Graph>& LowHitQueries(size_t size) {
  static std::map<size_t, std::vector<Graph>>* cache =
      new std::map<size_t, std::vector<Graph>>();
  auto it = cache->find(size);
  if (it == cache->end()) {
    ClassifiedQueries q = MakeClassifiedCliqueQueries(
        size, /*want_each=*/20, /*max_attempts=*/500, /*seed=*/size * 313);
    it = cache->emplace(size, std::move(q.low_hits)).first;
  }
  return it->second;
}

void BM_Fig21a_Step(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  int step = static_cast<int>(state.range(1));
  const std::vector<Graph>& queries = LowHitQueries(size);
  const ProteinWorkload& w = GetProteinWorkload();
  if (queries.empty()) {
    state.SkipWithError("no low-hit queries of this size");
    return;
  }

  // Patterns and (for the search steps) refined candidate spaces are
  // prepared outside the timed region, mirroring Figure 4.21(a)'s
  // decomposition into independent step timings.
  std::vector<algebra::GraphPattern> patterns;
  for (const Graph& q : queries) {
    patterns.push_back(algebra::GraphPattern::FromGraph(q));
  }
  std::vector<std::vector<std::vector<NodeId>>> profile_spaces;
  std::vector<std::vector<std::vector<NodeId>>> refined_spaces;
  match::PipelineOptions options;
  options.candidate_mode = match::CandidateMode::kProfile;
  for (algebra::GraphPattern& p : patterns) {
    auto cand = match::RetrieveCandidates(p, w.graph, &w.index, options);
    profile_spaces.push_back(cand);
    match::RefineSearchSpace(p, w.graph, static_cast<int>(size), &cand);
    refined_spaces.push_back(std::move(cand));
  }

  match::MatchOptions mopts;
  mopts.max_matches = kMaxHits;

  for (auto _ : state) {
    for (size_t i = 0; i < patterns.size(); ++i) {
      algebra::GraphPattern& p = patterns[i];
      switch (step) {
        case kRetrieveProfiles: {
          match::PipelineOptions o;
          o.candidate_mode = match::CandidateMode::kProfile;
          auto cand = match::RetrieveCandidates(p, w.graph, &w.index, o);
          benchmark::DoNotOptimize(cand);
          break;
        }
        case kRetrieveSubgraphs: {
          match::PipelineOptions o;
          o.candidate_mode = match::CandidateMode::kNeighborhood;
          auto cand = match::RetrieveCandidates(p, w.graph, &w.index, o);
          benchmark::DoNotOptimize(cand);
          break;
        }
        case kRefine: {
          auto cand = profile_spaces[i];
          match::RefineSearchSpace(p, w.graph, static_cast<int>(size), &cand);
          benchmark::DoNotOptimize(cand);
          break;
        }
        case kSearchOptOrder: {
          auto order =
              match::GreedySearchOrder(p, refined_spaces[i], &w.index);
          auto m = match::SearchMatches(p, w.graph, refined_spaces[i], order,
                                        mopts);
          benchmark::DoNotOptimize(m);
          break;
        }
        case kSearchDeclOrder: {
          auto m = match::SearchMatches(p, w.graph, refined_spaces[i],
                                        match::DeclarationOrder(p), mopts);
          benchmark::DoNotOptimize(m);
          break;
        }
      }
    }
  }
  state.SetLabel(StepName(step));
  state.counters["queries"] = static_cast<double>(queries.size());
  state.counters["s_per_query"] = benchmark::Counter(
      static_cast<double>(queries.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

BENCHMARK(BM_Fig21a_Step)
    ->ArgsProduct({{2, 3, 4, 5, 6, 7},
                   {kRetrieveProfiles, kRetrieveSubgraphs, kRefine,
                    kSearchOptOrder, kSearchDeclOrder}})
    ->ArgNames({"clique", "step"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
