// Access methods for the paper's FIRST database category (a large
// collection of small graphs, Section 4's opening): path-feature filtering
// vs scanning every member with the matcher. Not a numbered paper figure —
// the paper defers this category to the graph-indexing literature it cites
// (GraphGrep et al.) — but it completes the system inventory.
//
// Expected shape: indexed selection examines only candidate members, and
// the gap over the full scan grows with collection size and label
// diversity; index build time is the (one-off) price.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "gindex/collection_index.h"

namespace graphql::bench {
namespace {

struct Workload {
  GraphCollection collection;
  std::unique_ptr<gindex::CollectionIndex> index;
  std::vector<Graph> queries;
};

/// Chemical-compound-like collection: many small sparse graphs over a
/// shared alphabet with group-specific rare labels.
const Workload& GetWorkload(size_t num_graphs) {
  static std::map<size_t, std::unique_ptr<Workload>>* cache =
      new std::map<size_t, std::unique_ptr<Workload>>();
  auto it = cache->find(num_graphs);
  if (it != cache->end()) return *it->second;

  auto w = std::make_unique<Workload>();
  Rng rng(31 + num_graphs);
  for (size_t i = 0; i < num_graphs; ++i) {
    workload::ErdosRenyiOptions opts;
    opts.num_nodes = 12 + rng.NextBounded(12);
    opts.num_edges = opts.num_nodes + rng.NextBounded(opts.num_nodes);
    opts.num_labels = 8;
    Graph g = workload::MakeErdosRenyi(opts, &rng);
    // One rare group-specific label per ~16 members increases filter power,
    // like element types in chemical data.
    if (rng.NextBool(0.5)) {
      NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
      g.SetLabel(v, "R" + std::to_string(i % 16));
    }
    w->collection.Add(std::move(g));
  }
  w->index = std::make_unique<gindex::CollectionIndex>(
      gindex::CollectionIndex::Build(w->collection));
  // Queries: connected subgraphs of random members.
  while (w->queries.size() < 10) {
    size_t source = rng.NextBounded(w->collection.size());
    auto q = workload::ExtractConnectedQuery(w->collection[source], 4, &rng);
    if (q.ok()) w->queries.push_back(std::move(q).value());
  }
  it = cache->emplace(num_graphs, std::move(w)).first;
  return *it->second;
}

void BM_CollectionScan(benchmark::State& state) {
  const Workload& w = GetWorkload(static_cast<size_t>(state.range(0)));
  std::vector<algebra::GraphPattern> patterns;
  for (const Graph& q : w.queries) {
    patterns.push_back(algebra::GraphPattern::FromGraph(q));
  }
  size_t total = 0;
  for (auto _ : state) {
    total = 0;
    for (const algebra::GraphPattern& p : patterns) {
      auto m = match::SelectCollection(p, w.collection);
      if (m.ok()) total += m->size();
    }
  }
  state.SetLabel("scan_all_members");
  state.counters["matches"] = static_cast<double>(total);
}
BENCHMARK(BM_CollectionScan)
    ->Arg(500)
    ->Arg(2000)
    ->ArgName("graphs")
    ->Unit(benchmark::kMillisecond);

void BM_CollectionIndexed(benchmark::State& state) {
  const Workload& w = GetWorkload(static_cast<size_t>(state.range(0)));
  std::vector<algebra::GraphPattern> patterns;
  for (const Graph& q : w.queries) {
    patterns.push_back(algebra::GraphPattern::FromGraph(q));
  }
  size_t total = 0;
  size_t candidates = 0;
  for (auto _ : state) {
    total = 0;
    candidates = 0;
    for (const algebra::GraphPattern& p : patterns) {
      gindex::CollectionIndex::SelectStats stats;
      auto m = w.index->Select(p, {}, &stats);
      if (m.ok()) total += m->size();
      candidates += stats.candidates;
    }
  }
  state.SetLabel("path_feature_filter");
  state.counters["matches"] = static_cast<double>(total);
  state.counters["candidates"] = static_cast<double>(candidates);
  state.counters["members"] =
      static_cast<double>(w.collection.size() * patterns.size());
}
BENCHMARK(BM_CollectionIndexed)
    ->Arg(500)
    ->Arg(2000)
    ->ArgName("graphs")
    ->Unit(benchmark::kMillisecond);

void BM_CollectionIndexBuild(benchmark::State& state) {
  const Workload& w = GetWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gindex::CollectionIndex::Build(w.collection));
  }
  state.SetLabel("index_build");
}
BENCHMARK(BM_CollectionIndexBuild)
    ->Arg(500)
    ->Arg(2000)
    ->ArgName("graphs")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
