// Ablation: search-order selection (Section 4.4). Compares, on the same
// refined search space:
//   greedy cost-based order (with edge probabilities),
//   greedy with constant reduction factor,
//   declaration order,
//   pathological order (greedy reversed).
//
// DESIGN.md ablation item 3.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"

namespace graphql::bench {
namespace {

enum OrderKind { kGreedyProbs = 0, kGreedyConst, kDeclaration, kReversed };

const char* OrderName(int kind) {
  switch (kind) {
    case kGreedyProbs:
      return "greedy_edge_probs";
    case kGreedyConst:
      return "greedy_const_gamma";
    case kDeclaration:
      return "declaration";
    case kReversed:
      return "greedy_reversed";
  }
  return "?";
}

struct Prepared {
  std::vector<algebra::GraphPattern> patterns;
  std::vector<std::vector<std::vector<NodeId>>> spaces;
};

const SyntheticWorkload& Workload() {
  static const SyntheticWorkload* const kW = [] {
    return new SyntheticWorkload(
        MakeSyntheticWorkload(10000, /*build_neighborhoods=*/false, 4321));
  }();
  return *kW;
}

const Prepared& Prep() {
  static const Prepared* const kPrep = [] {
    auto* p = new Prepared();
    const SyntheticWorkload& w = Workload();
    std::vector<Graph> queries =
        MakeLowHitConnectedQueries(w, /*size=*/8, /*count=*/15, 99);
    match::PipelineOptions prep_opts;
    prep_opts.candidate_mode = match::CandidateMode::kProfile;
    for (const Graph& q : queries) {
      p->patterns.push_back(algebra::GraphPattern::FromGraph(q));
      auto cand = match::RetrieveCandidates(p->patterns.back(), w.graph,
                                            &w.index, prep_opts);
      match::RefineSearchSpace(p->patterns.back(), w.graph, 8, &cand);
      p->spaces.push_back(std::move(cand));
    }
    return p;
  }();
  return *kPrep;
}

void BM_OrderKind(benchmark::State& state) {
  int kind = static_cast<int>(state.range(0));
  const SyntheticWorkload& w = Workload();
  const Prepared& prep = Prep();
  match::MatchOptions mopts;
  mopts.max_matches = kMaxHits;

  uint64_t steps = 0;
  for (auto _ : state) {
    steps = 0;
    for (size_t i = 0; i < prep.patterns.size(); ++i) {
      const algebra::GraphPattern& p = prep.patterns[i];
      std::vector<NodeId> order;
      switch (kind) {
        case kGreedyProbs:
          order = match::GreedySearchOrder(p, prep.spaces[i], &w.index);
          break;
        case kGreedyConst: {
          match::OrderOptions oo;
          oo.use_edge_probs = false;
          order = match::GreedySearchOrder(p, prep.spaces[i], nullptr, oo);
          break;
        }
        case kDeclaration:
          order = match::DeclarationOrder(p);
          break;
        case kReversed:
          order = match::GreedySearchOrder(p, prep.spaces[i], &w.index);
          std::reverse(order.begin(), order.end());
          break;
      }
      match::SearchStats stats;
      auto m =
          match::SearchMatches(p, w.graph, prep.spaces[i], order, mopts,
                               &stats);
      benchmark::DoNotOptimize(m);
      steps += stats.steps;
    }
  }
  state.SetLabel(OrderName(kind));
  state.counters["search_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_OrderKind)
    ->DenseRange(0, 3)
    ->ArgName("order")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
