// Ablation: the global refinement step (Algorithm 4.2).
//   - refinement level sweep (0 = off .. query size): space vs cost;
//   - the dirty-pair marking optimization on/off: bipartite-matching count
//     and wall time for the same final space.
//
// DESIGN.md ablation items 2 and 4.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace graphql::bench {
namespace {

const std::vector<Graph>& Queries() {
  static const std::vector<Graph>* const kQ = [] {
    ClassifiedQueries q = MakeClassifiedCliqueQueries(
        4, /*want_each=*/20, /*max_attempts=*/400, /*seed=*/11);
    return new std::vector<Graph>(std::move(q.low_hits));
  }();
  return *kQ;
}

void BM_RefineLevelSweep(benchmark::State& state) {
  int level = static_cast<int>(state.range(0));
  const ProteinWorkload& w = GetProteinWorkload();
  const std::vector<Graph>& queries = Queries();
  std::vector<algebra::GraphPattern> patterns;
  std::vector<std::vector<std::vector<NodeId>>> spaces;
  match::PipelineOptions prep;
  prep.candidate_mode = match::CandidateMode::kProfile;
  for (const Graph& q : queries) {
    patterns.push_back(algebra::GraphPattern::FromGraph(q));
    spaces.push_back(
        match::RetrieveCandidates(patterns.back(), w.graph, &w.index, prep));
  }
  double space_sum_log = 0;
  uint64_t checks = 0;
  for (auto _ : state) {
    space_sum_log = 0;
    checks = 0;
    for (size_t i = 0; i < patterns.size(); ++i) {
      auto cand = spaces[i];
      match::RefineStats stats;
      match::RefineSearchSpace(patterns[i], w.graph, level, &cand, &stats);
      checks += stats.bipartite_checks;
      std::vector<size_t> sizes;
      for (const auto& c : cand) sizes.push_back(c.size());
      double space = match::PipelineStats::Space(sizes);
      space_sum_log += space > 0 ? std::log10(space) : 0;
    }
  }
  state.counters["level"] = level;
  state.counters["bipartite_checks"] = static_cast<double>(checks);
  state.counters["geomean_space"] =
      std::pow(10.0, space_sum_log / static_cast<double>(patterns.size()));
}
BENCHMARK(BM_RefineLevelSweep)
    ->DenseRange(0, 4)
    ->ArgName("level")
    ->Unit(benchmark::kMillisecond);

void BM_RefineMarking(benchmark::State& state) {
  bool use_marking = state.range(0) != 0;
  const ProteinWorkload& w = GetProteinWorkload();
  const std::vector<Graph>& queries = Queries();
  std::vector<algebra::GraphPattern> patterns;
  std::vector<std::vector<std::vector<NodeId>>> spaces;
  match::PipelineOptions prep;
  prep.candidate_mode = match::CandidateMode::kProfile;
  for (const Graph& q : queries) {
    patterns.push_back(algebra::GraphPattern::FromGraph(q));
    spaces.push_back(
        match::RetrieveCandidates(patterns.back(), w.graph, &w.index, prep));
  }
  uint64_t checks = 0;
  for (auto _ : state) {
    checks = 0;
    for (size_t i = 0; i < patterns.size(); ++i) {
      auto cand = spaces[i];
      match::RefineStats stats;
      match::RefineSearchSpace(patterns[i], w.graph, /*level=*/4, &cand,
                               &stats, use_marking);
      checks += stats.bipartite_checks;
    }
  }
  state.SetLabel(use_marking ? "marking" : "no_marking");
  state.counters["bipartite_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_RefineMarking)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("marking")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
