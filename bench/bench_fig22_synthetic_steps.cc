// Figure 4.22: synthetic Erdos-Renyi workload (n = 10K, m = 5n, 100 Zipf
// labels), random connected queries of size 4..20 with low hits.
//   (a) search-space reduction ratios per retrieval/refinement strategy;
//   (b) per-query time of each individual step.
//
// Expected shape (paper): unlike cliques, GLOBAL pruning (refinement)
// produces the smallest space here, beating even full neighborhood
// subgraphs; profile retrieval remains the cheapest step.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace graphql::bench {
namespace {

const SyntheticWorkload& Workload() {
  static const SyntheticWorkload* const kW = [] {
    return new SyntheticWorkload(
        MakeSyntheticWorkload(10000, /*build_neighborhoods=*/true, 555));
  }();
  return *kW;
}

const std::vector<Graph>& Queries(size_t size) {
  static std::map<size_t, std::vector<Graph>>* cache =
      new std::map<size_t, std::vector<Graph>>();
  auto it = cache->find(size);
  if (it == cache->end()) {
    it = cache
             ->emplace(size, MakeLowHitConnectedQueries(Workload(), size,
                                                        /*count=*/15,
                                                        size * 31))
             .first;
  }
  return it->second;
}

void BM_Fig22a_Space(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  const SyntheticWorkload& w = Workload();
  const std::vector<Graph>& queries = Queries(size);
  if (queries.empty()) {
    state.SkipWithError("no low-hit queries of this size");
    return;
  }
  std::vector<double> r_prof;
  std::vector<double> r_sub;
  std::vector<double> r_ref;
  for (auto _ : state) {
    r_prof.clear();
    r_sub.clear();
    r_ref.clear();
    for (const Graph& q : queries) {
      algebra::GraphPattern p = algebra::GraphPattern::FromGraph(q);
      match::PipelineOptions o;
      match::PipelineStats stats;
      o.candidate_mode = match::CandidateMode::kProfile;
      match::RetrieveCandidates(p, w.graph, &w.index, o, &stats);
      double space0 = stats.SpaceAttr();
      if (space0 <= 0) continue;
      r_prof.push_back(stats.SpaceRetrieved() / space0);
      o.candidate_mode = match::CandidateMode::kNeighborhood;
      match::RetrieveCandidates(p, w.graph, &w.index, o, &stats);
      r_sub.push_back(stats.SpaceRetrieved() / space0);
      o.candidate_mode = match::CandidateMode::kProfile;
      o.refine_level = static_cast<int>(size);
      o.match.max_matches = kMaxHits;
      match::PipelineStats full;
      auto m = match::MatchPattern(p, w.graph, &w.index, o, &full);
      benchmark::DoNotOptimize(m);
      r_ref.push_back(full.SpaceRefined() / space0);
    }
  }
  state.counters["queries"] = static_cast<double>(queries.size());
  state.counters["log10_ratio_profiles"] = MeanLog10(r_prof);
  state.counters["log10_ratio_subgraphs"] = MeanLog10(r_sub);
  state.counters["log10_ratio_refined"] = MeanLog10(r_ref);
}

BENCHMARK(BM_Fig22a_Space)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(20)
    ->ArgName("qsize")
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

enum Step {
  kRetrieveProfiles = 0,
  kRetrieveSubgraphs,
  kRefine,
  kSearchOptOrder,
  kSearchDeclOrder,
};

const char* StepName(int step) {
  switch (step) {
    case kRetrieveProfiles:
      return "retrieve_profiles";
    case kRetrieveSubgraphs:
      return "retrieve_subgraphs";
    case kRefine:
      return "refine";
    case kSearchOptOrder:
      return "search_opt_order";
    case kSearchDeclOrder:
      return "search_decl_order";
  }
  return "?";
}

void BM_Fig22b_Steps(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  int step = static_cast<int>(state.range(1));
  const SyntheticWorkload& w = Workload();
  const std::vector<Graph>& queries = Queries(size);
  if (queries.empty()) {
    state.SkipWithError("no low-hit queries of this size");
    return;
  }
  std::vector<algebra::GraphPattern> patterns;
  for (const Graph& q : queries) {
    patterns.push_back(algebra::GraphPattern::FromGraph(q));
  }
  std::vector<std::vector<std::vector<NodeId>>> profile_spaces;
  std::vector<std::vector<std::vector<NodeId>>> refined_spaces;
  match::PipelineOptions prep;
  prep.candidate_mode = match::CandidateMode::kProfile;
  for (algebra::GraphPattern& p : patterns) {
    auto cand = match::RetrieveCandidates(p, w.graph, &w.index, prep);
    profile_spaces.push_back(cand);
    match::RefineSearchSpace(p, w.graph, static_cast<int>(size), &cand);
    refined_spaces.push_back(std::move(cand));
  }
  match::MatchOptions mopts;
  mopts.max_matches = kMaxHits;

  for (auto _ : state) {
    for (size_t i = 0; i < patterns.size(); ++i) {
      algebra::GraphPattern& p = patterns[i];
      switch (step) {
        case kRetrieveProfiles: {
          match::PipelineOptions o;
          o.candidate_mode = match::CandidateMode::kProfile;
          benchmark::DoNotOptimize(
              match::RetrieveCandidates(p, w.graph, &w.index, o));
          break;
        }
        case kRetrieveSubgraphs: {
          match::PipelineOptions o;
          o.candidate_mode = match::CandidateMode::kNeighborhood;
          benchmark::DoNotOptimize(
              match::RetrieveCandidates(p, w.graph, &w.index, o));
          break;
        }
        case kRefine: {
          auto cand = profile_spaces[i];
          match::RefineSearchSpace(p, w.graph, static_cast<int>(size), &cand);
          benchmark::DoNotOptimize(cand);
          break;
        }
        case kSearchOptOrder: {
          auto order =
              match::GreedySearchOrder(p, refined_spaces[i], &w.index);
          benchmark::DoNotOptimize(match::SearchMatches(
              p, w.graph, refined_spaces[i], order, mopts));
          break;
        }
        case kSearchDeclOrder: {
          benchmark::DoNotOptimize(
              match::SearchMatches(p, w.graph, refined_spaces[i],
                                   match::DeclarationOrder(p), mopts));
          break;
        }
      }
    }
  }
  state.SetLabel(StepName(step));
  state.counters["queries"] = static_cast<double>(queries.size());
  state.counters["s_per_query"] = benchmark::Counter(
      static_cast<double>(queries.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

BENCHMARK(BM_Fig22b_Steps)
    ->ArgsProduct({{4, 8, 12, 16, 20},
                   {kRetrieveProfiles, kRetrieveSubgraphs, kRefine,
                    kSearchOptOrder, kSearchDeclOrder}})
    ->ArgNames({"qsize", "step"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
