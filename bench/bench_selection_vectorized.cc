// Selection-kernel ablation: candidate selection over the compiled
// snapshot with the scalar per-candidate probes (the pre-vectorization
// baseline), the column-at-a-time bitmap kernel, the compiled predicate
// bytecode, and the automatic per-node choice. Measures both the isolated
// retrieve stage (where the kernels differ) and the full MatchPattern
// wall time, verifies every kernel produces bit-identical match lists,
// and dumps machine-readable results for tools/summarize_bench.py.
//
// The workload mixes label-only patterns (structural columns) with
// attribute-predicate patterns inside and outside the bytecode ISA, so
// the sweep exercises the bitmap fill, the compiled programs, and the
// AST-interpreter fallback.
//
// Knobs (environment / argv):
//   GQL_BENCH_SELECTION_JSON  output path (default BENCH_selection.json)
//   GQL_BENCH_SELECTION_REPS  timed repetitions per lane, best-of (default 3)
//   --quick / GQL_BENCH_QUICK smaller graph, 1 rep (CI smoke)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/snapshot.h"
#include "match/pipeline.h"
#include "match/vectorized.h"
#include "workload/erdos_renyi.h"

namespace graphql::bench {
namespace {

constexpr size_t kMaxMatchesPerQuery = 100;

constexpr match::SelectionKernel kKernels[] = {
    match::SelectionKernel::kScalar, match::SelectionKernel::kBitmap,
    match::SelectionKernel::kBytecode, match::SelectionKernel::kAuto};

Graph MakeData(bool quick) {
  Rng rng(20080610);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = quick ? 2000 : 20000;
  opts.num_edges = quick ? 8000 : 80000;
  opts.num_labels = 6;
  Graph data = workload::MakeErdosRenyi(opts, &rng);
  // Numeric and (sparse) string attributes give the predicate kernels
  // real columns: "score" feeds comparisons, "tier" feeds the interned
  // string-equality path, and its absence on 2/3 of nodes exercises the
  // absent-attribute reject.
  for (NodeId v = 0; v < static_cast<NodeId>(data.NumNodes()); ++v) {
    data.node(v).attrs.Set("score", Value(int64_t{(v * 13) % 100}));
    if (v % 3 == 0) {
      data.node(v).attrs.Set("tier", Value(v % 6 == 0 ? "gold" : "silver"));
    }
  }
  return data;
}

std::vector<algebra::GraphPattern> MakeQueries() {
  std::vector<algebra::GraphPattern> out;
  for (const char* source : {
           // Label-only: pure structural columns.
           R"(graph P { node a <label="L0">; node b <label="L1">;
                        node c <label="L2">;
                        edge (a, b); edge (b, c); edge (c, a); })",
           // Comparison predicates (compiled bytecode).
           R"(graph P { node a <label="L0"> where score > 50;
                        node b <label="L1"> where score <= 80;
                        edge (a, b); })",
           // Interned string equality + dense unlabeled node.
           R"(graph P { node a where tier == "gold"; node b <label="L2">;
                        edge (a, b); })",
           // Arithmetic predicate: AST-interpreter fallback.
           R"(graph P { node a <label="L3"> where score + 0 > 50; node b;
                        edge (a, b); })",
       }) {
    auto p = algebra::GraphPattern::Parse(source);
    if (!p.ok()) {
      std::fprintf(stderr, "bad query: %s\n", p.status().ToString().c_str());
      std::exit(1);
    }
    out.push_back(std::move(p).value());
  }
  return out;
}

std::string Signature(const std::vector<algebra::MatchedGraph>& matches) {
  std::string sig;
  for (const algebra::MatchedGraph& m : matches) {
    for (NodeId v : m.node_mapping) sig += std::to_string(v) + ",";
    for (EdgeId e : m.edge_mapping) sig += std::to_string(e) + ";";
    sig += "|";
  }
  return sig;
}

struct LaneResult {
  double retrieve_ms = -1;  ///< Best-of-reps, isolated retrieve stage.
  double match_ms = -1;     ///< Best-of-reps, full MatchPattern.
  size_t matches = 0;
  size_t candidates = 0;  ///< Sum of retrieved candidate-set sizes.
  std::vector<std::string> sigs;
};

LaneResult RunLane(const Graph& data, const match::LabelIndex& index,
                   const GraphSnapshot* snap,
                   const std::vector<algebra::GraphPattern>& queries,
                   match::SelectionKernel kernel, int reps) {
  LaneResult r;
  for (int rep = 0; rep < reps; ++rep) {
    match::PipelineOptions o;
    o.selection = kernel;
    o.candidate_mode = match::CandidateMode::kProfile;
    o.match.max_matches = kMaxMatchesPerQuery;
    o.metrics = nullptr;

    // Isolated selection stage (label/tag/attribute predicates — exactly
    // what the kernels vectorize): retrieve in kLabelOnly mode, so the
    // kernel-independent profile pruning does not dilute the ratio.
    match::PipelineOptions sel = o;
    sel.candidate_mode = match::CandidateMode::kLabelOnly;
    auto t0 = std::chrono::steady_clock::now();
    size_t candidates = 0;
    for (const algebra::GraphPattern& p : queries) {
      auto cand =
          match::RetrieveCandidates(p, data, &index, sel, nullptr, snap);
      for (const auto& c : cand) candidates += c.size();
    }
    auto t1 = std::chrono::steady_clock::now();
    double retrieve_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r.retrieve_ms < 0 || retrieve_ms < r.retrieve_ms) {
      r.retrieve_ms = retrieve_ms;
    }
    r.candidates = candidates;

    // Full pipeline, for the end-to-end view.
    size_t matches = 0;
    std::vector<std::string> sigs;
    auto t2 = std::chrono::steady_clock::now();
    for (const algebra::GraphPattern& p : queries) {
      auto m = match::MatchPattern(p, data, &index, o);
      if (m.ok()) {
        matches += m->size();
        sigs.push_back(Signature(*m));
      } else {
        sigs.push_back("error:" + m.status().ToString());
      }
    }
    auto t3 = std::chrono::steady_clock::now();
    double match_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    if (r.match_ms < 0 || match_ms < r.match_ms) r.match_ms = match_ms;
    r.matches = matches;
    if (rep == 0) r.sigs = std::move(sigs);
  }
  return r;
}

int Main(int argc, char** argv) {
  bool quick = std::getenv("GQL_BENCH_QUICK") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  int reps = quick ? 1 : 3;
  if (const char* v = std::getenv("GQL_BENCH_SELECTION_REPS")) {
    int n = std::atoi(v);
    if (n > 0) reps = n;
  }

  std::printf("building synthetic workload (ER %s, 6 labels, score/tier "
              "attrs)...\n",
              quick ? "2k/8k" : "20k/80k");
  Graph data = MakeData(quick);
  match::LabelIndex index = match::LabelIndex::Build(data);
  std::vector<algebra::GraphPattern> queries = MakeQueries();
  // Warm the snapshot outside the timed region — every lane (including
  // scalar) runs over it; the kernels are the only variable.
  std::shared_ptr<const GraphSnapshot> snap = data.snapshot();

  std::vector<LaneResult> lanes;
  for (match::SelectionKernel kernel : kKernels) {
    lanes.push_back(RunLane(data, index, snap.get(), queries, kernel, reps));
  }

  bool identical = true;
  for (const LaneResult& lane : lanes) {
    identical = identical && lane.sigs == lanes[0].sigs &&
                lane.candidates == lanes[0].candidates;
  }

  std::printf("\n%10s %12s %10s %12s %8s %10s\n", "kernel", "retrieve_ms",
              "match_ms", "candidates", "matches", "speedup");
  for (size_t i = 0; i < lanes.size(); ++i) {
    double speedup = lanes[i].retrieve_ms > 0
                         ? lanes[0].retrieve_ms / lanes[i].retrieve_ms
                         : 0.0;
    std::printf("%10s %12.3f %10.2f %12zu %8zu %9.2fx\n",
                match::SelectionKernelName(kKernels[i]),
                lanes[i].retrieve_ms, lanes[i].match_ms, lanes[i].candidates,
                lanes[i].matches, speedup);
  }
  std::printf("\nmatch lists %s across kernels\n",
              identical ? "bit-identical" : "DIVERGED");

  const char* path = std::getenv("GQL_BENCH_SELECTION_JSON");
  std::string out_path =
      path != nullptr && *path != '\0' ? path : "BENCH_selection.json";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"selection_vectorized\",\n"
      << "  \"stamp\": " << BuildStampJson() << ",\n"
      << "  \"workload\": \"erdos-renyi " << (quick ? "2k/8k" : "20k/80k")
      << ", 6 labels, score/tier attrs, " << queries.size()
      << " queries, max " << kMaxMatchesPerQuery << " matches each\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"lanes\": [\n";
  for (size_t i = 0; i < lanes.size(); ++i) {
    double speedup = lanes[i].retrieve_ms > 0
                         ? lanes[0].retrieve_ms / lanes[i].retrieve_ms
                         : 0.0;
    out << "    {\"lane\": \"" << match::SelectionKernelName(kKernels[i])
        << "\", \"retrieve_ms\": " << lanes[i].retrieve_ms
        << ", \"match_ms\": " << lanes[i].match_ms
        << ", \"candidates\": " << lanes[i].candidates
        << ", \"matches\": " << lanes[i].matches
        << ", \"retrieve_speedup\": " << speedup << "}"
        << (i + 1 < lanes.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  return identical ? 0 : 2;
}

}  // namespace
}  // namespace graphql::bench

int main(int argc, char** argv) { return graphql::bench::Main(argc, argv); }
