// Storage-core ablation: the selection pipeline over the mutable Graph
// structures (use_snapshot=false) versus the compiled GraphSnapshot (CSR
// adjacency, interned symbols, packed refinement bitmaps). Measures
// retrieve+refine+search throughput and the governed peak transient bytes
// per query, verifies the two lanes produce bit-identical match lists,
// and dumps machine-readable results for tools/summarize_bench.py.
//
// The snapshot lane pre-compiles the data graph's snapshot before the
// governed measurement (a warm cache is the steady state; the build cost
// is reported separately), so the governed peak compares the per-query
// transient memory — where the packed refinement bitmaps replace the
// legacy byte-per-pair bitmap.
//
// A third lane ("recorder") repeats the snapshot configuration with a
// flight-recorder append per query — the exact per-query bookkeeping
// Evaluator::Run adds (shape hash, ring append under a mutex, wall
// histogram) — and reports the overhead ratio; the PR's budget for it is
// <= 2%.
//
// Two evaluator lanes measure the plan cache end-to-end through
// Evaluator::RunSource: "plan_cold" disables the cache so every run pays
// the parse/sema/pattern-compile front-end, "plan_warm" serves every run
// from the cache. The warm lane's time outside execution (front-end
// micros over total) is the PR's <5% acceptance number.
//
// Durable lanes measure the persistence stack on the same collection:
// open latency to query-ready state for v2 text (full parse +
// CompileAll), v2 binary (decode + CompileAll), and v3 (page-checksummed
// mmap, zero-copy snapshot views — no parse, no CSR rebuild); the PR's
// acceptance is v3 >= 10x faster than the v2 text parse. Two recovery
// lanes time DurableStore::Open on a copy of a directory left by a
// "crash" (no shutdown checkpoint): wal_only replays every commit from
// the log, checkpointed loads the latest checkpoint and replays the tail.
//
// Knobs (environment):
//   GQL_BENCH_STORAGE_JSON   output path (default BENCH_storage.json)
//   GQL_BENCH_STORAGE_REPS   timed repetitions per lane, best-of (default 3)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/governor.h"
#include "exec/evaluator.h"
#include "exec/registry.h"
#include "graph/collection.h"
#include "graph/snapshot.h"
#include "io/serialize.h"
#include "io/snapshot_v3.h"
#include "match/pipeline.h"
#include "motif/deriver.h"
#include "obs/recorder.h"
#include "server/store.h"
#include "storage/engine.h"
#include "workload/erdos_renyi.h"

namespace graphql::bench {
namespace {

constexpr size_t kMaxMatchesPerQuery = 100;

Graph MakeData() {
  Rng rng(20080610);
  workload::ErdosRenyiOptions opts;
  opts.num_nodes = 20000;
  opts.num_edges = 60000;
  opts.num_labels = 6;
  return workload::MakeErdosRenyi(opts, &rng);
}

std::vector<algebra::GraphPattern> MakeQueries() {
  std::vector<algebra::GraphPattern> out;
  for (const char* source : {
           R"(graph P { node a <label="L0">; node b <label="L1">;
                        node c <label="L2">;
                        edge (a, b); edge (b, c); edge (c, a); })",
           R"(graph P { node a <label="L3">; node b <label="L4">;
                        node c <label="L5">; node d <label="L0">;
                        edge (a, b); edge (b, c); edge (c, d); })",
           R"(graph P { node h <label="L1">; node s1 <label="L2">;
                        node s2 <label="L3">; node s3 <label="L4">;
                        edge (h, s1); edge (h, s2); edge (h, s3); })",
           R"(graph P { node a <label="L5">; node b <label="L5">;
                        edge (a, b); })",
       }) {
    auto g = motif::GraphFromSource(source);
    if (!g.ok()) {
      std::fprintf(stderr, "bad query: %s\n", g.status().ToString().c_str());
      std::exit(1);
    }
    out.push_back(algebra::GraphPattern::FromGraph(*g));
  }
  return out;
}

std::string Signature(const std::vector<algebra::MatchedGraph>& matches) {
  std::string sig;
  for (const algebra::MatchedGraph& m : matches) {
    for (NodeId v : m.node_mapping) sig += std::to_string(v) + ",";
    for (EdgeId e : m.edge_mapping) sig += std::to_string(e) + ";";
    sig += "|";
  }
  return sig;
}

struct LaneResult {
  double ms = -1;           ///< Best-of-reps wall time for all queries.
  size_t peak_bytes = 0;    ///< Max governed peak across queries.
  size_t sum_peak_bytes = 0;///< Sum of per-query governed peaks.
  size_t matches = 0;
  std::vector<std::string> sigs;
};

/// Folds one single-rep lane run into the best-of accumulator (all fields
/// except ms are deterministic across reps).
void MergeBest(LaneResult* into, LaneResult rep) {
  if (into->ms < 0) {
    *into = std::move(rep);
    return;
  }
  into->ms = std::min(into->ms, rep.ms);
}

LaneResult RunLane(const Graph& data, const match::LabelIndex& index,
                   const std::vector<algebra::GraphPattern>& queries,
                   bool use_snapshot, int reps,
                   obs::FlightRecorder* recorder = nullptr) {
  LaneResult r;
  for (int rep = 0; rep < reps; ++rep) {
    ResourceGovernor gov;
    size_t peak = 0;
    size_t sum_peak = 0;
    size_t matches = 0;
    std::vector<std::string> sigs;
    auto t0 = std::chrono::steady_clock::now();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const algebra::GraphPattern& p = queries[qi];
      gov.Arm(GovernorLimits{});
      match::PipelineOptions o;
      o.use_snapshot = use_snapshot;
      o.candidate_mode = match::CandidateMode::kProfile;
      o.match.max_matches = kMaxMatchesPerQuery;
      o.governor = &gov;
      o.metrics = nullptr;
      auto query_start = std::chrono::steady_clock::now();
      auto m = match::MatchPattern(p, data, &index, o);
      if (m.ok()) {
        matches += m->size();
        sigs.push_back(Signature(*m));
      } else {
        sigs.push_back("error:" + m.status().ToString());
      }
      peak = std::max(peak, gov.peak_memory());
      sum_peak += gov.peak_memory();
      if (recorder != nullptr) {
        // The per-query bookkeeping Evaluator::Run performs: build the
        // record, hash the (normalized) shape, append to the ring.
        obs::QueryRecord rec;
        rec.shape = "storage_bench q" + std::to_string(qi);
        rec.shape_hash = obs::FlightRecorder::HashShape(rec.shape);
        rec.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - query_start)
                          .count();
        rec.matches = m.ok() ? m->size() : 0;
        rec.ok = m.ok();
        recorder->Append(std::move(rec), nullptr, "");
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r.ms < 0 || ms < r.ms) r.ms = ms;
    r.peak_bytes = peak;
    r.sum_peak_bytes = sum_peak;
    r.matches = matches;
    if (rep == 0) r.sigs = std::move(sigs);
  }
  return r;
}

/// The same four label queries as MakeQueries, as source texts for the
/// evaluator lanes (pure programs: single for/return, no session state).
std::vector<std::string> MakeQueryTexts() {
  return {
      R"(for graph P { node a <label="L0">; node b <label="L1">;
                       node c <label="L2">;
                       edge (a, b); edge (b, c); edge (c, a); }
         exhaustive in doc("G") return P;)",
      R"(for graph P { node a <label="L3">; node b <label="L4">;
                       node c <label="L5">; node d <label="L0">;
                       edge (a, b); edge (b, c); edge (c, d); }
         exhaustive in doc("G") return P;)",
      R"(for graph P { node h <label="L1">; node s1 <label="L2">;
                       node s2 <label="L3">; node s3 <label="L4">;
                       edge (h, s1); edge (h, s2); edge (h, s3); }
         exhaustive in doc("G") return P;)",
      R"(for graph P { node a <label="L5">; node b <label="L5">;
                       edge (a, b); }
         exhaustive in doc("G") return P;)",
  };
}

struct PlanLaneResult {
  double ms = -1;            ///< Best-of-reps wall time for all texts.
  int64_t front_end_us = 0;  ///< Summed front-end micros (rep 0).
  int64_t exec_us = 0;       ///< Summed execution micros (rep 0).
  size_t hits = 0;           ///< Runs served from the plan cache (rep 0).
  std::string rendered;      ///< Concatenated results (rep 0).
};

void MergeBestPlan(PlanLaneResult* into, PlanLaneResult rep) {
  if (into->ms < 0) {
    *into = std::move(rep);
    return;
  }
  into->ms = std::min(into->ms, rep.ms);
}

PlanLaneResult RunPlanLane(const exec::DocumentRegistry& docs,
                           const std::vector<std::string>& texts,
                           bool cache_on, int reps) {
  PlanLaneResult r;
  exec::Evaluator ev(&docs);
  ev.set_plan_cache_capacity(cache_on ? size_t{8} << 20 : 0);
  ev.mutable_match_options()->candidate_mode =
      match::CandidateMode::kProfile;
  ev.mutable_match_options()->match.max_matches = kMaxMatchesPerQuery;
  ev.mutable_match_options()->metrics = nullptr;
  // Warm the per-graph label index (both lanes) and, when enabled, the
  // plan cache — the steady state a long-lived session (or the server's
  // prepared statements) reaches after the first execution.
  for (const std::string& text : texts) {
    auto warm = ev.RunSource(text);
    if (!warm.ok()) {
      std::fprintf(stderr, "plan lane query failed: %s\n",
                   warm.status().ToString().c_str());
      std::exit(1);
    }
  }
  for (int rep = 0; rep < reps; ++rep) {
    int64_t front_us = 0;
    int64_t exec_us = 0;
    size_t hits = 0;
    std::string rendered;
    auto t0 = std::chrono::steady_clock::now();
    for (const std::string& text : texts) {
      auto res = ev.RunSource(text);
      if (!res.ok()) {
        rendered += "error:" + res.status().ToString();
        continue;
      }
      front_us += res->front_end_us;
      exec_us += res->exec_us;
      if (res->plan_source == "hit") ++hits;
      rendered += io::WriteCollectionText(res->returned);
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r.ms < 0 || ms < r.ms) r.ms = ms;
    if (rep == 0) {
      r.front_end_us = front_us;
      r.exec_us = exec_us;
      r.hits = hits;
      r.rendered = std::move(rendered);
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Durable lanes: open latency v2 vs v3, and crash-recovery time.
// ---------------------------------------------------------------------------

struct DurableResult {
  double open_v2_text_ms = -1;  ///< LoadCollection(.gql) + CompileAll.
  double open_v2_bin_ms = -1;   ///< LoadCollection(.gqlb) + CompileAll.
  double open_v3_ms = -1;       ///< OpenCollectionV3 (zero-copy views).
  double recovery_wal_ms = -1;  ///< Open(): replay every commit from WAL.
  double recovery_chk_ms = -1;  ///< Open(): checkpoint + WAL tail.
  size_t v2_text_bytes = 0;
  size_t v2_bin_bytes = 0;
  size_t v3_bytes = 0;
  uint64_t wal_lane_records = 0;  ///< Records replayed, wal_only lane.
  uint64_t chk_lane_records = 0;  ///< Tail records, checkpointed lane.
  uint64_t chk_lane_docs = 0;     ///< Docs loaded from the checkpoint.
  bool identical = false;  ///< v3-materialized text == v2-parsed text.
  bool ok = false;
};

double ElapsedMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void MergeMs(double* best, double ms) {
  if (*best < 0 || ms < *best) *best = ms;
}

GraphCollection MakeDelta(int i) {
  std::string src = "graph D" + std::to_string(i) + " {\n";
  for (int n = 0; n < 8; ++n) {
    src += "  node n" + std::to_string(n) + " <i=" +
           std::to_string(i * 8 + n) + ">;\n";
  }
  src += "  edge e (n0, n1);\n}";
  GraphCollection c;
  auto g = motif::GraphFromSource(src);
  if (g.ok()) c.Add(std::move(g).value());
  return c;
}

/// Populates `dir` with the bench collection plus 32 small delta commits
/// and tears the engine down without a shutdown checkpoint — the on-disk
/// state a crash leaves.
bool BuildRecoveryDir(const std::filesystem::path& dir,
                      const GraphCollection& bench,
                      uint64_t checkpoint_every) {
  storage::DurableStore::Options opts;
  opts.dir = dir.string();
  opts.checkpoint_every = checkpoint_every;
  auto ds = storage::DurableStore::Open(opts);
  if (!ds.ok()) {
    std::fprintf(stderr, "durable open: %s\n",
                 ds.status().ToString().c_str());
    return false;
  }
  server::GraphStore store;
  store.set_durable_store(ds.value().get());
  if (!store.Publish("bench", bench).ok()) return false;
  for (int i = 0; i < 32; ++i) {
    if (!store.Publish("delta" + std::to_string(i), MakeDelta(i)).ok()) {
      return false;
    }
  }
  return true;
}

DurableResult RunDurableLanes(const Graph& data, int reps) {
  namespace fs = std::filesystem;
  DurableResult r;
  char buf[] = "/tmp/gql_bench_durable_XXXXXX";
  if (::mkdtemp(buf) == nullptr) {
    std::perror("mkdtemp");
    return r;
  }
  fs::path tmp(buf);
  GraphCollection bench("bench");
  bench.Add(data);

  const std::string p_text = (tmp / "bench.gql").string();
  const std::string p_bin = (tmp / "bench.gqlb").string();
  const std::string p_v3 = (tmp / "bench.gqls").string();
  if (!io::SaveCollection(bench, p_text).ok() ||
      !io::SaveCollection(bench, p_bin).ok() ||
      !io::WriteCollectionV3(bench, /*store_version=*/1, p_v3).ok()) {
    std::fprintf(stderr, "durable lane: write failed\n");
    fs::remove_all(tmp);
    return r;
  }
  r.v2_text_bytes = fs::file_size(p_text);
  r.v2_bin_bytes = fs::file_size(p_bin);
  r.v3_bytes = fs::file_size(p_v3);

  for (int rep = 0; rep < reps; ++rep) {
    {
      auto t0 = std::chrono::steady_clock::now();
      auto c = io::LoadCollection(p_text);
      if (!c.ok()) break;
      c->CompileAll();
      MergeMs(&r.open_v2_text_ms, ElapsedMs(t0));
    }
    {
      auto t0 = std::chrono::steady_clock::now();
      auto c = io::LoadCollection(p_bin);
      if (!c.ok()) break;
      c->CompileAll();
      MergeMs(&r.open_v2_bin_ms, ElapsedMs(t0));
    }
    {
      auto t0 = std::chrono::steady_clock::now();
      auto opened = io::OpenCollectionV3(p_v3);
      if (!opened.ok() || opened->snapshots.size() != bench.size()) break;
      MergeMs(&r.open_v3_ms, ElapsedMs(t0));
    }
  }

  // Equivalence (untimed): the graphs materialized from the v3 image must
  // render bit-identically to the v2 parse.
  {
    auto v2 = io::LoadCollection(p_text);
    auto opened = io::OpenCollectionV3(p_v3);
    if (v2.ok() && opened.ok()) {
      auto mat = io::MaterializeGraphs(*opened);
      r.identical = mat.ok() && io::WriteCollectionText(*v2) ==
                                    io::WriteCollectionText(*mat);
    }
  }

  // Recovery lanes: each rep opens a pristine copy of the crashed
  // directory (Open truncates torn tails and reopens the WAL, so reusing
  // one copy would time a different, cleaner state after rep 1).
  if (BuildRecoveryDir(tmp / "wal_only", bench, /*checkpoint_every=*/
                       uint64_t{1} << 30) &&
      BuildRecoveryDir(tmp / "checkpointed", bench, /*checkpoint_every=*/8)) {
    for (int rep = 0; rep < reps; ++rep) {
      for (const char* lane : {"wal_only", "checkpointed"}) {
        fs::path copy = tmp / (std::string(lane) + "_rep");
        fs::remove_all(copy);
        fs::copy(tmp / lane, copy, fs::copy_options::recursive);
        storage::DurableStore::Options opts;
        opts.dir = copy.string();
        auto t0 = std::chrono::steady_clock::now();
        auto ds = storage::DurableStore::Open(opts);
        double ms = ElapsedMs(t0);
        if (!ds.ok()) {
          std::fprintf(stderr, "recovery %s: %s\n", lane,
                       ds.status().ToString().c_str());
          fs::remove_all(tmp);
          return r;
        }
        const auto& stats = ds.value()->recovery_stats();
        if (std::string(lane) == "wal_only") {
          MergeMs(&r.recovery_wal_ms, ms);
          r.wal_lane_records = stats.wal_records_replayed;
        } else {
          MergeMs(&r.recovery_chk_ms, ms);
          r.chk_lane_records = stats.wal_records_replayed;
          r.chk_lane_docs = stats.docs_loaded;
        }
      }
    }
    r.ok = true;
  }
  fs::remove_all(tmp);
  return r;
}

int Main() {
  int reps = 3;
  if (const char* v = std::getenv("GQL_BENCH_STORAGE_REPS")) {
    int n = std::atoi(v);
    if (n > 0) reps = n;
  }
  std::printf("building synthetic workload (ER 20k nodes / 60k edges, "
              "6 labels)...\n");
  Graph data = MakeData();
  match::LabelIndex index = match::LabelIndex::Build(data);
  std::vector<algebra::GraphPattern> queries = MakeQueries();

  // Warm the snapshot cache outside the timed/governed region; report the
  // one-time build cost separately.
  bool fresh = false;
  std::shared_ptr<const GraphSnapshot> snap = data.snapshot(&fresh);
  std::printf("snapshot: %zu bytes (csr %zu, columns %zu, symbols %zu), "
              "built in %lld us\n",
              snap->bytes(), snap->csr_bytes(), snap->column_bytes(),
              snap->sym_bytes(),
              static_cast<long long>(snap->build_micros()));

  LaneResult legacy = RunLane(data, index, queries, false, reps);
  // The snapshot and recorder lanes are interleaved rep-by-rep so both
  // best-of times sample the same machine state — run back-to-back, clock
  // drift between the lanes swamps the microseconds an append costs.
  LaneResult snapshot;
  LaneResult recorded;
  obs::FlightRecorder recorder;
  for (int rep = 0; rep < reps; ++rep) {
    MergeBest(&snapshot, RunLane(data, index, queries, true, 1));
    MergeBest(&recorded, RunLane(data, index, queries, true, 1, &recorder));
  }

  // Evaluator lanes: the full RunSource path with the plan cache off
  // (every run recompiles) vs on (every run hits).
  exec::DocumentRegistry docs;
  {
    GraphCollection g("G");
    g.Add(data);
    docs.Register("G", std::move(g));
  }
  std::vector<std::string> texts = MakeQueryTexts();
  PlanLaneResult plan_cold;
  PlanLaneResult plan_warm;
  for (int rep = 0; rep < reps; ++rep) {
    MergeBestPlan(&plan_cold, RunPlanLane(docs, texts, false, 1));
    MergeBestPlan(&plan_warm, RunPlanLane(docs, texts, true, 1));
  }
  double warm_frontend_fraction =
      plan_warm.front_end_us + plan_warm.exec_us > 0
          ? static_cast<double>(plan_warm.front_end_us) /
                static_cast<double>(plan_warm.front_end_us +
                                    plan_warm.exec_us)
          : 0.0;

  bool identical =
      legacy.sigs == snapshot.sigs && snapshot.sigs == recorded.sigs &&
      plan_cold.rendered == plan_warm.rendered &&
      plan_warm.hits == texts.size();
  double overhead =
      snapshot.ms > 0 ? recorded.ms / snapshot.ms - 1.0 : 0.0;
  double reduction =
      legacy.sum_peak_bytes == 0
          ? 0.0
          : 1.0 - static_cast<double>(snapshot.sum_peak_bytes) /
                      static_cast<double>(legacy.sum_peak_bytes);

  std::printf("\n%10s %10s %14s %16s %8s\n", "lane", "ms", "peak_bytes",
              "sum_peak_bytes", "matches");
  std::printf("%10s %10.2f %14zu %16zu %8zu\n", "legacy", legacy.ms,
              legacy.peak_bytes, legacy.sum_peak_bytes, legacy.matches);
  std::printf("%10s %10.2f %14zu %16zu %8zu\n", "snapshot", snapshot.ms,
              snapshot.peak_bytes, snapshot.sum_peak_bytes,
              snapshot.matches);
  std::printf("%10s %10.2f %14zu %16zu %8zu\n", "recorder", recorded.ms,
              recorded.peak_bytes, recorded.sum_peak_bytes,
              recorded.matches);
  std::printf("\ngoverned peak bytes reduction: %.1f%%  "
              "(throughput %.2fx, match lists %s)\n",
              reduction * 100.0, legacy.ms / snapshot.ms,
              identical ? "bit-identical" : "DIVERGED");
  std::printf("flight-recorder overhead: %+.2f%% (budget 2%%, %zu records "
              "kept)\n",
              overhead * 100.0, recorder.size());
  std::printf("\n%10s %10s %14s %12s %6s\n", "plan lane", "ms",
              "front_end_us", "exec_us", "hits");
  std::printf("%10s %10.2f %14lld %12lld %6zu\n", "plan_cold", plan_cold.ms,
              static_cast<long long>(plan_cold.front_end_us),
              static_cast<long long>(plan_cold.exec_us), plan_cold.hits);
  std::printf("%10s %10.2f %14lld %12lld %6zu\n", "plan_warm", plan_warm.ms,
              static_cast<long long>(plan_warm.front_end_us),
              static_cast<long long>(plan_warm.exec_us), plan_warm.hits);
  std::printf("plan-cache warm: %.2f%% of time outside execution "
              "(budget 5%%), front-end %.2fx cheaper than cold\n",
              warm_frontend_fraction * 100.0,
              plan_warm.front_end_us > 0
                  ? static_cast<double>(plan_cold.front_end_us) /
                        static_cast<double>(plan_warm.front_end_us)
                  : 0.0);

  DurableResult durable = RunDurableLanes(data, reps);
  double open_speedup_text =
      durable.open_v3_ms > 0 ? durable.open_v2_text_ms / durable.open_v3_ms
                             : 0.0;
  double open_speedup_bin =
      durable.open_v3_ms > 0 ? durable.open_v2_bin_ms / durable.open_v3_ms
                             : 0.0;
  std::printf("\n%14s %10s %12s\n", "open lane", "ms", "file_bytes");
  std::printf("%14s %10.2f %12zu\n", "v2_text", durable.open_v2_text_ms,
              durable.v2_text_bytes);
  std::printf("%14s %10.2f %12zu\n", "v2_binary", durable.open_v2_bin_ms,
              durable.v2_bin_bytes);
  std::printf("%14s %10.2f %12zu\n", "v3_mmap", durable.open_v3_ms,
              durable.v3_bytes);
  std::printf("v3 open speedup: %.1fx vs v2 text parse (budget 10x), "
              "%.1fx vs v2 binary; materialized graphs %s\n",
              open_speedup_text, open_speedup_bin,
              durable.identical ? "bit-identical" : "DIVERGED");
  std::printf("recovery: wal_only %.2f ms (%llu records replayed), "
              "checkpointed %.2f ms (%llu docs from checkpoint + %llu "
              "tail records)\n",
              durable.recovery_wal_ms,
              static_cast<unsigned long long>(durable.wal_lane_records),
              durable.recovery_chk_ms,
              static_cast<unsigned long long>(durable.chk_lane_docs),
              static_cast<unsigned long long>(durable.chk_lane_records));

  const char* path = std::getenv("GQL_BENCH_STORAGE_JSON");
  std::string out_path =
      path != nullptr && *path != '\0' ? path : "BENCH_storage.json";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"storage_snapshot\",\n"
      << "  \"stamp\": " << BuildStampJson() << ",\n"
      << "  \"workload\": \"erdos-renyi 20k/60k, 6 labels, "
      << queries.size() << " queries, max " << kMaxMatchesPerQuery
      << " matches each\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"snapshot_bytes\": " << snap->bytes() << ",\n"
      << "  \"snapshot_csr_bytes\": " << snap->csr_bytes() << ",\n"
      << "  \"snapshot_column_bytes\": " << snap->column_bytes() << ",\n"
      << "  \"snapshot_build_us\": " << snap->build_micros() << ",\n"
      << "  \"identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"peak_reduction\": " << reduction << ",\n"
      << "  \"recorder_overhead\": " << overhead << ",\n"
      << "  \"lanes\": [\n"
      << "    {\"lane\": \"legacy\", \"ms\": " << legacy.ms
      << ", \"peak_bytes\": " << legacy.peak_bytes
      << ", \"sum_peak_bytes\": " << legacy.sum_peak_bytes
      << ", \"matches\": " << legacy.matches << "},\n"
      << "    {\"lane\": \"snapshot\", \"ms\": " << snapshot.ms
      << ", \"peak_bytes\": " << snapshot.peak_bytes
      << ", \"sum_peak_bytes\": " << snapshot.sum_peak_bytes
      << ", \"matches\": " << snapshot.matches << "},\n"
      << "    {\"lane\": \"recorder\", \"ms\": " << recorded.ms
      << ", \"peak_bytes\": " << recorded.peak_bytes
      << ", \"sum_peak_bytes\": " << recorded.sum_peak_bytes
      << ", \"matches\": " << recorded.matches << "}\n"
      << "  ],\n"
      << "  \"plan_cache\": {\"cold_ms\": " << plan_cold.ms
      << ", \"warm_ms\": " << plan_warm.ms
      << ", \"cold_front_end_us\": " << plan_cold.front_end_us
      << ", \"warm_front_end_us\": " << plan_warm.front_end_us
      << ", \"warm_exec_us\": " << plan_warm.exec_us
      << ", \"warm_hits\": " << plan_warm.hits
      << ", \"warm_frontend_fraction\": " << warm_frontend_fraction
      << "},\n"
      << "  \"durable\": {\n"
      << "    \"identical\": " << (durable.identical ? "true" : "false")
      << ",\n"
      << "    \"open_lanes\": [\n"
      << "      {\"lane\": \"v2_text\", \"ms\": " << durable.open_v2_text_ms
      << ", \"file_bytes\": " << durable.v2_text_bytes << "},\n"
      << "      {\"lane\": \"v2_binary\", \"ms\": " << durable.open_v2_bin_ms
      << ", \"file_bytes\": " << durable.v2_bin_bytes << "},\n"
      << "      {\"lane\": \"v3_mmap\", \"ms\": " << durable.open_v3_ms
      << ", \"file_bytes\": " << durable.v3_bytes << "}\n"
      << "    ],\n"
      << "    \"open_speedup_vs_text\": " << open_speedup_text << ",\n"
      << "    \"open_speedup_vs_binary\": " << open_speedup_bin << ",\n"
      << "    \"recovery_lanes\": [\n"
      << "      {\"lane\": \"wal_only\", \"ms\": " << durable.recovery_wal_ms
      << ", \"wal_records\": " << durable.wal_lane_records
      << ", \"checkpoint_docs\": 0},\n"
      << "      {\"lane\": \"checkpointed\", \"ms\": "
      << durable.recovery_chk_ms
      << ", \"wal_records\": " << durable.chk_lane_records
      << ", \"checkpoint_docs\": " << durable.chk_lane_docs << "}\n"
      << "    ]\n  }\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) return 2;
  if (reduction < 0.30) return 3;
  if (warm_frontend_fraction >= 0.05) return 4;
  if (!durable.ok || !durable.identical) return 5;
  return open_speedup_text >= 10.0 ? 0 : 6;
}

}  // namespace
}  // namespace graphql::bench

int main() { return graphql::bench::Main(); }
