// Ablation: neighborhood radius of the stored profiles (r = 0 degenerates
// to plain labels; the paper's experiments use r = 1). Measures index build
// time, profile-retrieval time, and the resulting search space.
//
// DESIGN.md ablation item 5.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace graphql::bench {
namespace {

const Graph& Network() { return GetProteinWorkload().graph; }

const match::LabelIndex& IndexForRadius(int radius) {
  static std::map<int, std::unique_ptr<match::LabelIndex>>* cache =
      new std::map<int, std::unique_ptr<match::LabelIndex>>();
  auto it = cache->find(radius);
  if (it == cache->end()) {
    match::LabelIndexOptions options;
    options.radius = radius;
    options.build_neighborhoods = false;
    it = cache
             ->emplace(radius, std::make_unique<match::LabelIndex>(
                                   match::LabelIndex::Build(Network(),
                                                            options)))
             .first;
  }
  return *it->second;
}

const std::vector<Graph>& Queries() {
  static const std::vector<Graph>* const kQ = [] {
    ClassifiedQueries q = MakeClassifiedCliqueQueries(
        4, /*want_each=*/20, /*max_attempts=*/400, /*seed=*/22);
    return new std::vector<Graph>(std::move(q.low_hits));
  }();
  return *kQ;
}

void BM_IndexBuildAtRadius(benchmark::State& state) {
  int radius = static_cast<int>(state.range(0));
  match::LabelIndexOptions options;
  options.radius = radius;
  options.build_neighborhoods = false;
  for (auto _ : state) {
    match::LabelIndex index = match::LabelIndex::Build(Network(), options);
    benchmark::DoNotOptimize(index);
  }
  state.counters["radius"] = radius;
}
BENCHMARK(BM_IndexBuildAtRadius)
    ->DenseRange(0, 2)
    ->ArgName("radius")
    ->Unit(benchmark::kMillisecond);

void BM_RetrieveAtRadius(benchmark::State& state) {
  int radius = static_cast<int>(state.range(0));
  const match::LabelIndex& index = IndexForRadius(radius);
  const std::vector<Graph>& queries = Queries();
  std::vector<algebra::GraphPattern> patterns;
  for (const Graph& q : queries) {
    patterns.push_back(algebra::GraphPattern::FromGraph(q));
  }
  match::PipelineOptions o;
  o.candidate_mode = match::CandidateMode::kProfile;

  double space_log_sum = 0;
  for (auto _ : state) {
    space_log_sum = 0;
    for (algebra::GraphPattern& p : patterns) {
      match::PipelineStats stats;
      auto cand =
          match::RetrieveCandidates(p, Network(), &index, o, &stats);
      benchmark::DoNotOptimize(cand);
      double space = stats.SpaceRetrieved();
      space_log_sum += space > 0 ? std::log10(space) : 0;
    }
  }
  state.counters["radius"] = radius;
  state.counters["geomean_space"] = std::pow(
      10.0, space_log_sum / static_cast<double>(patterns.size()));
}
BENCHMARK(BM_RetrieveAtRadius)
    ->DenseRange(0, 2)
    ->ArgName("radius")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
