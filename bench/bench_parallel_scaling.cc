// Intra-query parallel selection scaling: wall-clock speedup of the
// work-stealing retrieve/refine/search pipeline over the serial path on
// the protein-network clique workload (low-hit queries, exhaustive under
// the paper's hit cap, so serial and parallel do identical work).
//
// Unlike the figure benches this is a plain binary (no google-benchmark):
// it sweeps a thread count, verifies that every parallel run produces a
// bit-identical match list (same bindings, same order) to the serial run,
// prints a speedup table, and dumps machine-readable results as JSON for
// tools/summarize_bench.py.
//
// Knobs (environment):
//   GQL_BENCH_PARALLEL_JSON   output path (default BENCH_parallel.json)
//   GQL_BENCH_PARALLEL_REPS   timed repetitions per thread count, best-of
//                             (default 3)
//   GQL_BENCH_THREADS / GQL_BENCH_NEIGHBORHOOD_BUDGET are ignored here:
//   the sweep sets num_threads itself.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace graphql::bench {
namespace {

constexpr size_t kCliqueSizes[] = {5, 6};
constexpr int kThreadSweep[] = {0, 1, 2, 4, 8};

struct QuerySet {
  std::vector<Graph> graphs;
  std::vector<algebra::GraphPattern> patterns;
};

QuerySet BuildQueries() {
  QuerySet qs;
  for (size_t size : kCliqueSizes) {
    ClassifiedQueries q = MakeClassifiedCliqueQueries(
        size, /*want_each=*/10, /*max_attempts=*/400, /*seed=*/size * 977);
    for (Graph& g : q.low_hits) qs.graphs.push_back(std::move(g));
  }
  for (const Graph& g : qs.graphs) {
    qs.patterns.push_back(algebra::GraphPattern::FromGraph(g));
  }
  return qs;
}

/// One match list rendered as a comparable token: bindings and their order
/// must agree exactly for two runs to count as identical.
std::string Signature(const std::vector<algebra::MatchedGraph>& matches) {
  std::string sig;
  for (const algebra::MatchedGraph& m : matches) {
    for (NodeId v : m.node_mapping) sig += std::to_string(v) + ",";
    for (EdgeId e : m.edge_mapping) sig += std::to_string(e) + ";";
    sig += "|";
  }
  return sig;
}

struct SweepResult {
  int threads = 0;
  double ms = 0;                ///< Best-of-reps total wall time.
  double ms_retrieve = 0;       ///< Stage sums from the best rep.
  double ms_refine = 0;
  double ms_search = 0;
  uint64_t tasks_stolen = 0;
  size_t matches = 0;
  bool identical = true;        ///< Match lists == serial run's.
};

SweepResult RunSweep(const QuerySet& qs, int threads, int reps,
                     const std::vector<std::string>* serial_sigs,
                     std::vector<std::string>* sigs_out) {
  const ProteinWorkload& w = GetProteinWorkload();
  SweepResult r;
  r.threads = threads;
  r.ms = -1;
  for (int rep = 0; rep < reps; ++rep) {
    double ms_retrieve = 0;
    double ms_refine = 0;
    double ms_search = 0;
    uint64_t stolen = 0;
    size_t total_matches = 0;
    std::vector<std::string> sigs;
    sigs.reserve(qs.patterns.size());
    auto t0 = std::chrono::steady_clock::now();
    for (const algebra::GraphPattern& p : qs.patterns) {
      // Label-only retrieval, no refinement, declaration order: the
      // paper's Baseline. Its unreduced search space is where intra-query
      // parallelism matters (the optimized pipeline finishes these
      // queries in microseconds, leaving nothing to parallelize), and
      // every root candidate becomes a stealable search task.
      match::PipelineOptions o;
      o.candidate_mode = match::CandidateMode::kLabelOnly;
      o.refine_level = 0;
      o.optimize_order = false;
      o.match.max_matches = kMaxHits;
      o.num_threads = threads;
      o.metrics = nullptr;
      match::PipelineStats stats;
      auto m = match::MatchPattern(p, w.graph, &w.index, o, &stats);
      ms_retrieve += stats.us_retrieve / 1000.0;
      ms_refine += stats.us_refine / 1000.0;
      ms_search += stats.us_search / 1000.0;
      stolen += stats.tasks_stolen;
      if (m.ok()) {
        total_matches += m->size();
        sigs.push_back(Signature(*m));
      } else {
        sigs.push_back("error:" + m.status().ToString());
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r.ms < 0 || ms < r.ms) {
      r.ms = ms;
      r.ms_retrieve = ms_retrieve;
      r.ms_refine = ms_refine;
      r.ms_search = ms_search;
      r.tasks_stolen = stolen;
    }
    r.matches = total_matches;
    if (serial_sigs != nullptr && sigs != *serial_sigs) r.identical = false;
    if (sigs_out != nullptr && rep == 0) *sigs_out = std::move(sigs);
  }
  return r;
}

int Main() {
  int reps = 3;
  if (const char* v = std::getenv("GQL_BENCH_PARALLEL_REPS")) {
    int n = std::atoi(v);
    if (n > 0) reps = n;
  }
  std::printf("building clique workload (protein network, sizes 5-6, "
              "low-hit)...\n");
  QuerySet qs = BuildQueries();
  if (qs.patterns.empty()) {
    std::fprintf(stderr, "no queries generated\n");
    return 1;
  }
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("%zu queries, %d reps per thread count (best-of), "
              "%u hardware threads\n",
              qs.patterns.size(), reps, hw);
  if (hw < 2) {
    std::printf("NOTE: single-core machine — speedup > 1 is not "
                "achievable; this run only verifies determinism.\n");
  }
  std::printf("\n");

  std::vector<std::string> serial_sigs;
  std::vector<SweepResult> results;
  for (int threads : kThreadSweep) {
    SweepResult r =
        RunSweep(qs, threads, reps,
                 threads == 0 ? nullptr : &serial_sigs,
                 threads == 0 ? &serial_sigs : nullptr);
    results.push_back(r);
  }

  double serial_ms = results.front().ms;
  std::printf("%8s %10s %9s %12s %10s %10s %10s %6s\n", "threads", "ms",
              "speedup", "stolen", "retr_ms", "refine_ms", "search_ms",
              "exact");
  bool all_identical = true;
  for (const SweepResult& r : results) {
    all_identical = all_identical && r.identical;
    std::printf("%8d %10.2f %8.2fx %12llu %10.2f %10.2f %10.2f %6s\n",
                r.threads, r.ms, serial_ms / r.ms,
                static_cast<unsigned long long>(r.tasks_stolen),
                r.ms_retrieve, r.ms_refine, r.ms_search,
                r.identical ? "yes" : "NO");
  }
  std::printf("\nmatch lists %s across the sweep (%zu matches)\n",
              all_identical ? "bit-identical" : "DIVERGED",
              results.front().matches);

  const char* path = std::getenv("GQL_BENCH_PARALLEL_JSON");
  std::string out_path =
      path != nullptr && *path != '\0' ? path : "BENCH_parallel.json";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"parallel_scaling\",\n"
      << "  \"stamp\": " << BuildStampJson() << ",\n"
      << "  \"workload\": \"protein clique low-hit (sizes 5-6)\",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"queries\": " << qs.patterns.size() << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"matches\": " << results.front().matches << ",\n"
      << "  \"identical\": " << (all_identical ? "true" : "false") << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    out << "    {\"threads\": " << r.threads << ", \"ms\": " << r.ms
        << ", \"speedup\": " << serial_ms / r.ms
        << ", \"tasks_stolen\": " << r.tasks_stolen
        << ", \"ms_retrieve\": " << r.ms_retrieve
        << ", \"ms_refine\": " << r.ms_refine
        << ", \"ms_search\": " << r.ms_search
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 2;
}

}  // namespace
}  // namespace graphql::bench

int main() { return graphql::bench::Main(); }
