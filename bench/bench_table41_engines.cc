// Table 4.1: comparison of query languages/engines. The table itself is
// qualitative (basic unit / query style / semistructured); this benchmark
// makes it executable by running the SAME logical query — the Figure 4.1
// triangle — through the three data models implemented in this repository:
//
//   graphs-at-a-time  (GraphQL algebra + graph-native access methods),
//   tuples-at-a-time  (SQL: the V/E relational translation),
//   logic programming (Datalog: the facts-and-rules translation),
//
// and reporting their relative costs. The qualitative table is printed on
// startup for reference.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "datalog/evaluator.h"
#include "datalog/translator.h"
#include "motif/deriver.h"

namespace graphql::bench {
namespace {

struct Fixture {
  Graph graph;
  match::LabelIndex index;
  std::unique_ptr<rel::SqlGraphDatabase> sql;
  GraphCollection collection;
  std::unique_ptr<algebra::GraphPattern> pattern;
};

const Fixture& GetFixture() {
  static const Fixture* const kFixture = [] {
    auto* f = new Fixture();
    Rng rng(41);
    workload::ProteinNetworkOptions opts;
    opts.num_nodes = 400;  // Datalog's naive joins need a modest graph.
    opts.num_edges = 1600;
    opts.num_labels = 30;
    f->graph = workload::MakeProteinNetwork(opts, &rng);
    f->index = match::LabelIndex::Build(f->graph);
    f->sql = std::make_unique<rel::SqlGraphDatabase>(
        rel::SqlGraphDatabase::FromGraph(f->graph));
    f->collection.Add(f->graph);

    // A triangle over the three most frequent labels.
    auto top = f->index.LabelsByFrequency();
    Graph q("P");
    for (int i = 0; i < 3; ++i) {
      AttrTuple attrs;
      attrs.Set("label", Value(std::string(f->index.LabelName(top[i]))));
      q.AddNode("u" + std::to_string(i), attrs);
    }
    q.AddEdge(0, 1);
    q.AddEdge(1, 2);
    q.AddEdge(2, 0);
    f->pattern = std::make_unique<algebra::GraphPattern>(
        algebra::GraphPattern::FromGraph(q));
    return f;
  }();
  return *kFixture;
}

void BM_Table41_GraphQL(benchmark::State& state) {
  const Fixture& f = GetFixture();
  size_t matches = 0;
  for (auto _ : state) {
    match::PipelineOptions o;
    o.match.max_matches = kMaxHits;
    GovernBenchQuery(&o);
    auto m = match::MatchPattern(*f.pattern, f.graph, &f.index, o);
    matches = m.ok() ? m->size() : 0;
    benchmark::DoNotOptimize(m);
  }
  state.SetLabel("graphs-at-a-time (GraphQL)");
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_Table41_GraphQL)->Unit(benchmark::kMillisecond);

void BM_Table41_Sql(benchmark::State& state) {
  const Fixture& f = GetFixture();
  size_t matches = 0;
  for (auto _ : state) {
    auto rows = f.sql->MatchPattern(*f.pattern, kMaxHits);
    matches = rows.ok() ? rows->size() : 0;
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel("tuples-at-a-time (SQL over V/E)");
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_Table41_Sql)->Unit(benchmark::kMillisecond);

void BM_Table41_Datalog(benchmark::State& state) {
  const Fixture& f = GetFixture();
  // Fact translation happens once (it is data loading, not querying).
  static const datalog::FactDatabase* const kEdb = [] {
    auto* edb = new datalog::FactDatabase(
        datalog::CollectionToFacts(GetFixture().collection));
    return edb;
  }();
  size_t matches = 0;
  for (auto _ : state) {
    auto rule = datalog::PatternToRule(*f.pattern, "match");
    if (!rule.ok()) {
      state.SkipWithError("rule translation failed");
      return;
    }
    auto facts = datalog::Query({*rule}, *kEdb, "match");
    matches = facts.ok() ? facts->size() : 0;
    benchmark::DoNotOptimize(facts);
  }
  state.SetLabel("logic programming (Datalog)");
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_Table41_Datalog)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

int main(int argc, char** argv) {
  std::printf(
      "Table 4.1 (qualitative comparison, reproduced from the paper):\n"
      "  Language   | Basic unit   | Query style  | Semistructured\n"
      "  -----------+--------------+--------------+---------------\n"
      "  GraphQL    | graphs       | set-oriented | yes\n"
      "  SQL        | tuples       | set-oriented | no\n"
      "  TAX        | trees        | set-oriented | yes\n"
      "  GraphLog   | nodes/edges  | logic prog.  | -\n"
      "  OODB       | nodes/edges  | navigational | no\n"
      "\n"
      "Executable comparison below: the Figure 4.1 triangle query through\n"
      "the three engines implemented here.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
