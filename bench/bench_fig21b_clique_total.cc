// Figure 4.21(b): total query processing time vs clique size on the
// protein network (low-hit queries), comparing:
//   Optimized  — retrieval by profiles + refinement + optimized order,
//   Baseline   — retrieval by node attributes + search in declaration
//                order on the unreduced space,
//   SQL        — the translated multi-way join over V/E with indexes.
//
// Expected shape (paper): Optimized < Baseline << SQL, with the SQL curve
// growing super-exponentially in clique size (a size-k clique costs 2
// joins per edge = k(k-1) joins) and the gap reaching orders of magnitude.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace graphql::bench {
namespace {

enum Method { kOptimized = 0, kBaseline, kSql };

const char* MethodName(int m) {
  switch (m) {
    case kOptimized:
      return "optimized";
    case kBaseline:
      return "baseline";
    case kSql:
      return "sql";
  }
  return "?";
}

const std::vector<Graph>& LowHitQueries(size_t size) {
  static std::map<size_t, std::vector<Graph>>* cache =
      new std::map<size_t, std::vector<Graph>>();
  auto it = cache->find(size);
  if (it == cache->end()) {
    ClassifiedQueries q = MakeClassifiedCliqueQueries(
        size, /*want_each=*/15, /*max_attempts=*/500, /*seed=*/size * 977);
    it = cache->emplace(size, std::move(q.low_hits)).first;
  }
  return it->second;
}

const rel::SqlGraphDatabase& SqlDb() {
  static const rel::SqlGraphDatabase* const kDb = [] {
    return new rel::SqlGraphDatabase(
        rel::SqlGraphDatabase::FromGraph(GetProteinWorkload().graph));
  }();
  return *kDb;
}

void BM_Fig21b_Total(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  int method = static_cast<int>(state.range(1));
  const std::vector<Graph>& queries = LowHitQueries(size);
  const ProteinWorkload& w = GetProteinWorkload();
  if (queries.empty()) {
    state.SkipWithError("no low-hit queries of this size");
    return;
  }
  if (method == kSql) SqlDb();  // Load outside the timed region.

  std::vector<algebra::GraphPattern> patterns;
  for (const Graph& q : queries) {
    patterns.push_back(algebra::GraphPattern::FromGraph(q));
  }

  size_t total_matches = 0;
  for (auto _ : state) {
    total_matches = 0;
    for (algebra::GraphPattern& p : patterns) {
      switch (method) {
        case kOptimized: {
          match::PipelineOptions o;  // Profile + refine + order.
          o.match.max_matches = kMaxHits;
          GovernBenchQuery(&o);
          auto m = match::MatchPattern(p, w.graph, &w.index, o);
          if (m.ok()) total_matches += m->size();
          break;
        }
        case kBaseline: {
          match::PipelineOptions o;
          o.candidate_mode = match::CandidateMode::kLabelOnly;
          o.refine_level = 0;
          o.optimize_order = false;
          o.match.max_matches = kMaxHits;
          GovernBenchQuery(&o);
          auto m = match::MatchPattern(p, w.graph, &w.index, o);
          if (m.ok()) total_matches += m->size();
          break;
        }
        case kSql: {
          auto rows = SqlDb().MatchPattern(p, kMaxHits);
          if (rows.ok()) total_matches += rows->size();
          break;
        }
      }
    }
  }
  state.SetLabel(MethodName(method));
  state.counters["queries"] = static_cast<double>(queries.size());
  state.counters["matches"] = static_cast<double>(total_matches);
  state.counters["s_per_query"] = benchmark::Counter(
      static_cast<double>(queries.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

BENCHMARK(BM_Fig21b_Total)
    ->ArgsProduct({{2, 3, 4, 5, 6, 7}, {kOptimized, kBaseline, kSql}})
    ->ArgNames({"clique", "method"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace graphql::bench

BENCHMARK_MAIN();
