// Motif search over a protein-interaction network (Section 5.1's workload):
// clique queries labeled with Gene-Ontology-like terms, run through every
// retrieval strategy to show the access methods at work, plus the
// SQL-baseline comparison on the same query.
//
// Build & run:   ./build/examples/protein_motif [clique_size]

#include <cstdio>
#include <cstdlib>

#include "algebra/pattern.h"
#include "match/pipeline.h"
#include "rel/sql_plan.h"
#include "workload/protein_network.h"
#include "workload/queries.h"

using namespace graphql;

int main(int argc, char** argv) {
  size_t clique_size = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  Rng rng(42);

  workload::ProteinNetworkOptions net_options;  // Paper-shaped defaults.
  Graph network = workload::MakeProteinNetwork(net_options, &rng);
  std::printf("protein network: %zu proteins, %zu interactions\n",
              network.NumNodes(), network.NumEdges());

  match::LabelIndex index = match::LabelIndex::Build(network);

  // Clique query over the 40 most frequent GO labels, as in Section 5.1.
  auto top = index.LabelsByFrequency();
  std::vector<std::string> labels;
  for (size_t i = 0; i < 40 && i < top.size(); ++i) {
    labels.push_back(std::string(index.LabelName(top[i])));
  }

  // Try queries until one has answers (the paper discards empty queries).
  // Random top-40 label combinations rarely hit for cliques >= 4, so later
  // attempts extract the labels of an actual clique in the network (the
  // protocol bench_common uses; see DESIGN.md).
  for (int attempt = 0; attempt < 400; ++attempt) {
    Graph q;
    if (attempt < 100) {
      q = workload::MakeCliqueQuery(clique_size, labels, &rng);
    } else {
      auto extracted =
          workload::ExtractCliqueQuery(network, clique_size, &rng);
      if (!extracted.ok()) continue;
      q = std::move(extracted).value();
    }
    algebra::GraphPattern pattern = algebra::GraphPattern::FromGraph(q);

    match::PipelineOptions options;
    options.match.max_matches = 1000;
    match::PipelineStats stats;
    auto matches =
        match::MatchPattern(pattern, network, &index, options, &stats);
    if (!matches.ok()) {
      std::printf("match failed: %s\n", matches.status().ToString().c_str());
      return 1;
    }
    if (matches->empty()) continue;

    std::printf("clique query (size %zu) labels:", clique_size);
    for (size_t u = 0; u < q.NumNodes(); ++u) {
      std::printf(" %s", std::string(q.Label(static_cast<NodeId>(u))).c_str());
    }
    std::printf("\n");
    std::printf("search space: attrs=%.3g profiles=%.3g refined=%.3g\n",
                stats.SpaceAttr(), stats.SpaceRetrieved(),
                stats.SpaceRefined());
    std::printf("steps: retrieve=%ldus refine=%ldus order=%ldus "
                "search=%ldus\n",
                static_cast<long>(stats.us_retrieve),
                static_cast<long>(stats.us_refine),
                static_cast<long>(stats.us_order),
                static_cast<long>(stats.us_search));
    std::printf("matches: %zu%s\n", matches->size(),
                stats.search.truncated ? " (truncated at 1000)" : "");

    // The same query through the SQL baseline.
    rel::SqlGraphDatabase db = rel::SqlGraphDatabase::FromGraph(network);
    rel::SqlGraphDatabase::QueryStats sql_stats;
    auto sql = db.MatchPattern(pattern, 1000, &sql_stats);
    if (!sql.ok()) {
      std::printf("sql failed: %s\n", sql.status().ToString().c_str());
      return 1;
    }
    std::printf("SQL baseline: %zu results, %llu rows scanned, "
                "%llu index probes, %ldus\n",
                sql->size(),
                static_cast<unsigned long long>(sql_stats.exec.rows_scanned),
                static_cast<unsigned long long>(sql_stats.exec.index_probes),
                static_cast<long>(sql_stats.us_total));
    std::printf("agreement: %s\n",
                sql->size() == matches->size() ? "yes" : "NO (bug!)");
    return 0;
  }
  std::printf("no clique of size %zu found in 400 queries\n",
              clique_size);
  return 0;
}
