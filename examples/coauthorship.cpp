// The paper's flagship FLWR query (Figures 4.12-4.13): build a
// co-authorship graph from a DBLP-like collection of paper graphs, using
// the accumulating `let` clause with conditional unification.
//
// Build & run:   ./build/examples/coauthorship [num_papers] [num_authors]

#include <cstdio>
#include <cstdlib>

#include "exec/evaluator.h"
#include "workload/dblp.h"

using namespace graphql;

int main(int argc, char** argv) {
  workload::DblpOptions options;
  options.num_papers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  options.num_authors = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 25;
  Rng rng(2008);
  GraphCollection dblp = workload::MakeDblpCollection(options, &rng);
  std::printf("DBLP collection: %zu papers, %zu author nodes\n", dblp.size(),
              dblp.TotalNodes());

  exec::DocumentRegistry docs;
  docs.Register("DBLP", std::move(dblp));
  exec::Evaluator evaluator(&docs);

  // Figure 4.12, verbatim (modulo `==`/`=` which both mean equality).
  const char* query = R"(
    graph P {
      node v1 <author>;
      node v2 <author>;
    } where P.booktitle = "SIGMOD";

    C := graph {};

    for P exhaustive in doc("DBLP") let C := graph {
      graph C;
      node P.v1, P.v2;
      edge e1 (P.v1, P.v2);
      unify P.v1, C.v1 where P.v1.name = C.v1.name;
      unify P.v2, C.v2 where P.v2.name = C.v2.name;
    };
  )";
  auto result = evaluator.RunSource(query);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  const Graph* c = evaluator.Variable("C");
  std::printf("co-authorship graph: %zu authors, %zu co-author edges\n",
              c->NumNodes(), c->NumEdges());
  for (size_t e = 0; e < c->NumEdges(); ++e) {
    const Graph::Edge& ed = c->edge(static_cast<EdgeId>(e));
    std::printf("  %s -- %s\n",
                c->node(ed.src).attrs.GetOrNull("name").ToString().c_str(),
                c->node(ed.dst).attrs.GetOrNull("name").ToString().c_str());
    if (e >= 19) {
      std::printf("  ... (%zu more)\n", c->NumEdges() - 20);
      break;
    }
  }
  return 0;
}
