// Quickstart: load a graph, write a GraphQL pattern, run the optimized
// selection pipeline, and inspect matches. Mirrors the paper's running
// example (Figures 4.1, 4.16-4.18).
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "algebra/pattern.h"
#include "match/pipeline.h"
#include "motif/deriver.h"

using namespace graphql;

int main() {
  // 1. A data graph, written in GraphQL's surface syntax.
  auto data = motif::GraphFromSource(R"(
    graph G {
      node a1 <label="A">; node a2 <label="A">;
      node b1 <label="B">; node b2 <label="B">;
      node c1 <label="C">; node c2 <label="C">;
      edge (a1, b1); edge (a1, c2); edge (b1, c2);
      edge (b1, b2); edge (b2, c2); edge (b2, a2); edge (c1, b1);
    })");
  if (!data.ok()) {
    std::printf("failed to parse data graph: %s\n",
                data.status().ToString().c_str());
    return 1;
  }

  // 2. A graph pattern: the A-B-C triangle of Figure 4.1.
  auto pattern = algebra::GraphPattern::Parse(R"(
    graph P {
      node u1 <label="A">;
      node u2 <label="B">;
      node u3 <label="C">;
      edge (u1, u2); edge (u2, u3); edge (u3, u1);
    })");
  if (!pattern.ok()) {
    std::printf("failed to compile pattern: %s\n",
                pattern.status().ToString().c_str());
    return 1;
  }

  // 3. Build the access-method index (label hashtable + radius-1
  //    neighborhood profiles and subgraphs).
  match::LabelIndex index = match::LabelIndex::Build(*data);

  // 4. Run the full pipeline: retrieval by profiles, joint refinement,
  //    cost-based search order, depth-first search.
  match::PipelineOptions options;
  match::PipelineStats stats;
  auto matches = match::MatchPattern(*pattern, *data, &index, options, &stats);
  if (!matches.ok()) {
    std::printf("match failed: %s\n", matches.status().ToString().c_str());
    return 1;
  }

  std::printf("search space: attrs=%.0f  profiles=%.0f  refined=%.0f\n",
              stats.SpaceAttr(), stats.SpaceRetrieved(), stats.SpaceRefined());
  std::printf("matches: %zu\n", matches->size());
  for (const algebra::MatchedGraph& m : *matches) {
    std::printf("  mapping:");
    for (size_t u = 0; u < m.node_mapping.size(); ++u) {
      std::printf(" %s->%s",
                  pattern->graph().node(static_cast<NodeId>(u)).name.c_str(),
                  data->node(m.node_mapping[u]).name.c_str());
    }
    std::printf("\n");
    // A matched graph materializes into a standalone result graph.
    Graph result = m.Materialize();
    std::printf("%s\n", result.ToString().c_str());
  }
  return 0;
}
