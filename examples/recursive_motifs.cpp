// The formal language for graphs (Section 2): concatenation, disjunction,
// and repetition. Derives the paper's Path / Cycle / star-of-triangles
// motifs and uses a bounded recursive pattern for path queries.
//
// Build & run:   ./build/examples/recursive_motifs

#include <cstdio>

#include "algebra/pattern.h"
#include "lang/parser.h"
#include "match/pipeline.h"
#include "motif/builder.h"
#include "motif/deriver.h"

using namespace graphql;

int main() {
  // Figure 4.6: Path and Cycle (repetition), G5 (repeated triangles).
  const char* source = R"(
    graph G1 {
      node v1, v2, v3;
      edge e1 (v1, v2); edge e2 (v2, v3); edge e3 (v3, v1);
    };
    graph Path {
      graph Path;
      node v1;
      edge e1 (v1, Path.v1);
      export Path.v2 as v2;
    } | {
      node v1, v2;
      edge e1 (v1, v2);
    };
    graph Cycle {
      graph Path;
      edge e1 (Path.v1, Path.v2);
    };
    graph G5 {
      graph G5;
      graph G1;
      export G5.v0 as v0;
      edge e1 (v0, G1.v1);
    } | {
      node v0;
    };
  )";
  auto program = lang::Parser::ParseProgram(source);
  if (!program.ok()) {
    std::printf("parse failed: %s\n", program.status().ToString().c_str());
    return 1;
  }
  motif::MotifRegistry registry;
  if (auto s = registry.RegisterProgram(*program); !s.ok()) {
    std::printf("register failed: %s\n", s.ToString().c_str());
    return 1;
  }

  motif::BuildOptions options;
  options.max_depth = 4;
  motif::MotifBuilder builder(&registry, options);
  for (const char* name : {"Path", "Cycle", "G5"}) {
    auto graphs = builder.Build(*registry.Find(name));
    if (!graphs.ok()) {
      std::printf("derive %s failed: %s\n", name,
                  graphs.status().ToString().c_str());
      return 1;
    }
    std::printf("%s derives %zu graphs at depth <= %zu:", name,
                graphs->size(), options.max_depth);
    for (const motif::BuiltGraph& b : *graphs) {
      std::printf(" (%zun,%zue)", b.graph.NumNodes(), b.graph.NumEdges());
    }
    std::printf("\n");
  }

  // A recursive PATTERN: anonymous 2..5-hop label-X paths matched against
  // a chain (the paper leaves recursive pattern matching as future work;
  // this is the bounded-derivation extension).
  auto chain = motif::GraphFromSource(R"(
    graph Chain {
      node a <label="X">; node b <label="X">; node c <label="X">;
      node d <label="X">; node e <label="X">;
      edge (a, b); edge (b, c); edge (c, d); edge (d, e);
    })");
  if (!chain.ok()) {
    std::printf("chain failed: %s\n", chain.status().ToString().c_str());
    return 1;
  }
  auto xpath = lang::Parser::ParseGraph(R"(
    graph XPath {
      graph XPath;
      node v1 <label="X">;
      edge e1 (v1, XPath.v1);
      export XPath.v2 as v2;
    } | {
      node v1 <label="X">, v2 <label="X">;
      edge e1 (v1, v2);
    })");
  if (!xpath.ok()) {
    std::printf("xpath failed: %s\n", xpath.status().ToString().c_str());
    return 1;
  }
  motif::MotifRegistry xregistry;
  (void)xregistry.Register(*xpath);
  motif::BuildOptions xoptions;
  xoptions.max_depth = 3;
  auto alternatives =
      algebra::GraphPattern::CreateAll(*xpath, &xregistry, xoptions);
  if (!alternatives.ok()) {
    std::printf("pattern failed: %s\n",
                alternatives.status().ToString().c_str());
    return 1;
  }
  GraphCollection coll;
  coll.Add(*chain);
  auto matches = match::SelectCollectionAny(*alternatives, coll);
  if (!matches.ok()) {
    std::printf("select failed: %s\n", matches.status().ToString().c_str());
    return 1;
  }
  std::printf("recursive XPath pattern (%zu alternatives) finds %zu paths "
              "in a 5-chain\n",
              alternatives->size(), matches->size());
  return 0;
}
