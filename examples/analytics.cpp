// Analytics over a collection of small graphs: the paper's first database
// category end to end — path-feature index to select, then the
// ordering/aggregation operators (Section 7's future-work list) to build
// an OLAP-style report, and persistence via the io module.
//
// Build & run:   ./build/examples/analytics

#include <cstdio>

#include "algebra/ops.h"
#include "algebra/pattern.h"
#include "gindex/collection_index.h"
#include "io/serialize.h"
#include "lang/parser.h"
#include "workload/dblp.h"

using namespace graphql;

int main() {
  // A DBLP-like collection of paper graphs.
  Rng rng(2008);
  workload::DblpOptions options;
  options.num_papers = 200;
  options.num_authors = 50;
  GraphCollection papers = workload::MakeDblpCollection(options, &rng);
  std::printf("collection: %zu papers\n", papers.size());

  // 1. Index it and select the papers containing at least two authors
  //    (pattern over the member graphs).
  gindex::CollectionIndex index = gindex::CollectionIndex::Build(papers);
  auto pattern = algebra::GraphPattern::Parse(
      "graph P { node a <author>; node b <author>; }");
  if (!pattern.ok()) {
    std::printf("pattern: %s\n", pattern.status().ToString().c_str());
    return 1;
  }
  match::PipelineOptions popts;
  popts.match.exhaustive = false;  // One binding per paper suffices.
  gindex::CollectionIndex::SelectStats stats;
  auto matches = index.Select(*pattern, popts, &stats);
  if (!matches.ok()) {
    std::printf("select: %s\n", matches.status().ToString().c_str());
    return 1;
  }
  std::printf("multi-author papers: %zu (filter kept %zu of %zu members)\n",
              matches->size(), stats.candidates, papers.size());

  // 2. Collect the matched papers and aggregate: papers per venue, years.
  GraphCollection multi_author;
  for (const algebra::MatchedGraph& m : *matches) {
    multi_author.Add(*m.data);  // The member graph itself.
  }
  auto venue_key = lang::Parser::ParseExpression("booktitle");
  auto year_key = lang::Parser::ParseExpression("year");
  if (!venue_key.ok() || !year_key.ok()) return 1;

  auto groups = algebra::GroupCount(multi_author, *venue_key);
  if (!groups.ok()) {
    std::printf("group: %s\n", groups.status().ToString().c_str());
    return 1;
  }
  auto count_key = lang::Parser::ParseExpression("t.count");
  auto ranked = algebra::OrderBy(*groups, *count_key, /*descending=*/true);
  if (!ranked.ok()) return 1;
  std::printf("multi-author papers per venue:\n");
  for (const Graph& g : *ranked) {
    std::printf("  %-8s %s\n",
                g.node(0).attrs.GetOrNull("key").AsString().c_str(),
                g.node(0).attrs.GetOrNull("count").ToString().c_str());
  }

  auto agg = algebra::Aggregate(multi_author, *year_key, "years");
  if (!agg.ok()) return 1;
  const AttrTuple& t = agg->node(0).attrs;
  std::printf("years: count=%s min=%s max=%s avg=%s\n",
              t.GetOrNull("count").ToString().c_str(),
              t.GetOrNull("min").ToString().c_str(),
              t.GetOrNull("max").ToString().c_str(),
              t.GetOrNull("avg").ToString().c_str());

  // 3. Persist the report collection and read it back.
  const char* path = "/tmp/gql_analytics_report.gql";
  if (Status s = io::SaveCollection(*ranked, path); !s.ok()) {
    std::printf("save: %s\n", s.ToString().c_str());
    return 1;
  }
  auto loaded = io::LoadCollection(path);
  std::printf("report saved to %s and reloaded: %zu groups\n", path,
              loaded.ok() ? loaded->size() : 0);
  return 0;
}
