// The paper's RDF motivating example (Section 1.1): "Find all instances
// from an RDF graph where two departments of a company share the same
// shipping company. Report the result as a single graph with departments
// as nodes and edges between nodes that share a shipper."
//
// Demonstrates: cross-node predicates, edge-attribute constraints, and the
// composition operator folding many matches into one result graph via
// conditional unification.
//
// Build & run:   ./build/examples/rdf_shipping

#include <cstdio>

#include "algebra/graph_template.h"
#include "algebra/pattern.h"
#include "match/pipeline.h"
#include "motif/deriver.h"

using namespace graphql;

int main() {
  auto rdf = motif::GraphFromSource(R"(
    graph RDF {
      node sales <kind="dept", company="acme", name="sales">;
      node ops   <kind="dept", company="acme", name="ops">;
      node hr    <kind="dept", company="acme", name="hr">;
      node intl  <kind="dept", company="globex", name="intl">;
      node retail <kind="dept", company="globex", name="retail">;
      node fast <kind="shipper", name="fastship">;
      node slow <kind="shipper", name="slowship">;
      edge (sales, fast) <rel="shipping">;
      edge (ops, fast)   <rel="shipping">;
      edge (hr, slow)    <rel="shipping">;
      edge (intl, slow)  <rel="shipping">;
      edge (retail, slow) <rel="shipping">;
      edge (sales, ops)  <rel="reports">;
    })");
  if (!rdf.ok()) {
    std::printf("parse failed: %s\n", rdf.status().ToString().c_str());
    return 1;
  }

  // Pattern: two same-company departments with shipping edges to one
  // shipper. The `a.name < b.name` conjunct keeps one of each
  // symmetric pair.
  auto pattern = algebra::GraphPattern::Parse(R"(
    graph P {
      node a <kind="dept">;
      node b <kind="dept">;
      node s <kind="shipper">;
      edge e1 (a, s) <rel="shipping">;
      edge e2 (b, s) <rel="shipping">;
    } where a.company == b.company & a.name < b.name)");
  if (!pattern.ok()) {
    std::printf("pattern failed: %s\n", pattern.status().ToString().c_str());
    return 1;
  }

  auto matches = match::MatchPattern(*pattern, *rdf, nullptr);
  if (!matches.ok()) {
    std::printf("match failed: %s\n", matches.status().ToString().c_str());
    return 1;
  }
  std::printf("found %zu shared-shipper department pairs\n", matches->size());

  // Fold all matches into ONE result graph: departments unified by name.
  auto fold = algebra::GraphTemplate::Parse(R"(
    graph Result {
      graph Acc;
      node P.a;
      node P.b;
      edge e (P.a, P.b) <via=P.s.name>;
      unify P.a, Acc.x where P.a.name == Acc.x.name;
      unify P.b, Acc.y where P.b.name == Acc.y.name;
    })");
  if (!fold.ok()) {
    std::printf("template failed: %s\n", fold.status().ToString().c_str());
    return 1;
  }
  Graph acc("Acc");
  for (const algebra::MatchedGraph& m : *matches) {
    std::unordered_map<std::string, algebra::TemplateParam> params;
    params["Acc"] = algebra::TemplateParam::Plain(&acc);
    params["P"] = algebra::TemplateParam::Matched(&m);
    auto next = fold->Instantiate(params);
    if (!next.ok()) {
      std::printf("compose failed: %s\n", next.status().ToString().c_str());
      return 1;
    }
    acc = std::move(next).value();
  }

  std::printf("result graph: %zu departments, %zu shared-shipper edges\n",
              acc.NumNodes(), acc.NumEdges());
  for (size_t e = 0; e < acc.NumEdges(); ++e) {
    const Graph::Edge& ed = acc.edge(static_cast<EdgeId>(e));
    std::printf("  %s -- %s  (via %s)\n",
                acc.node(ed.src).attrs.GetOrNull("name").ToString().c_str(),
                acc.node(ed.dst).attrs.GetOrNull("name").ToString().c_str(),
                ed.attrs.GetOrNull("via").ToString().c_str());
  }
  return 0;
}
