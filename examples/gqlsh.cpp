// gqlsh: an interactive shell (and batch runner) for GraphQL programs.
//
// Usage:
//   gqlsh                      interactive REPL on stdin
//   gqlsh script.gql           run a program file and exit
//
// Shell commands (lines starting with ':'):
//   :load NAME PATH    register a collection file as doc("NAME")
//                      (.gql text / .gqlb binary, see io::SaveCollection)
//   :save VAR PATH     save a graph variable to a file
//   :show VAR          print a graph variable
//   :docs              list registered documents
//   :stats             per-document node/edge counts plus compiled
//                      GraphSnapshot sizes (CSR / attribute columns /
//                      symbol maps) and build time
//   :vars              list bound graph variables
//   :metrics [json]    dump the session's metric counters/histograms
//   :metrics reset     zero the session metrics
//   :check PATH        statically analyze a program file against the
//                      session (docs, variables, motifs) without running
//                      it; prints caret diagnostics and the nr-GraphQL /
//                      recursive classification of each query
//   :set KEY VALUE     set a resource limit for subsequent queries:
//                      timeout_ms, max_steps, max_memory_mb (0 = unlimited),
//                      threads, slow_ms (slow-query-log threshold),
//                      plan_cache (capacity in MB, 0 = off)
//   :limits            show the current resource limits
//   :recent [N]        flight recorder: the last N query records
//   :slow [N]          slow-query log: records over the slow_ms threshold
//                      (or governor-tripped), with their full trace trees
//   :top [N]           heaviest query shapes by total wall time, plus the
//                      session's wall-time percentiles
//   :trace PATH|off    export every query's span tree as Chrome trace JSON
//                      (chrome://tracing / Perfetto) to PATH; also set by
//                      $GQL_TRACE_EXPORT
//   :help              this text
//   :quit              exit
//
// Ctrl-C while a query is running cancels that query (it returns its
// partial results with a `cancelled` limit report); the shell keeps going.
//
// Anything else accumulates into a statement buffer that executes when the
// input forms a complete (semicolon-terminated, brace-balanced) program.
// A complete program may be prefixed with a keyword:
//   EXPLAIN <program>          print the query plan without executing
//   EXPLAIN ANALYZE <program>  execute, then print the plan annotated with
//                              measured actuals (stage times, candidate
//                              counts, estimated vs actual cost)
//   PROFILE <program>          execute, then print the trace tree + metric
//                              deltas
//   CHECK   <program>          statically analyze without executing (like
//                              :check but for inline source)

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/signals.h"
#include "exec/evaluator.h"
#include "io/serialize.h"
#include "lang/parser.h"
#include "sema/diagnostic.h"

using namespace graphql;

namespace {

// Ctrl-C cancels the running query through common/signals.h: main()
// installs a scoped SIGINT handler (SigintCancelScope), and each Run
// publishes its governor via CancelScope. The handler used to live here
// as a static std::signal install, which claimed SIGINT for any process
// linking the shell code; the scoped form leaves server processes (gqld)
// free to own SIGINT/SIGTERM for graceful drain.

struct Shell {
  exec::DocumentRegistry docs;
  exec::Evaluator evaluator{&docs};
  std::map<std::string, size_t> doc_sizes;
  std::map<std::string, bool> vars_seen;
  bool any_error = false;

  void RunProgram(const std::string& source) {
    std::string body;
    switch (LeadingKeyword(source, &body)) {
      case Keyword::kExplain: {
        auto plan = evaluator.ExplainSource(body);
        if (!plan.ok()) {
          std::printf("error: %s\n", plan.status().ToString().c_str());
          any_error = true;
          return;
        }
        std::printf("%s", plan->c_str());
        return;
      }
      case Keyword::kExplainAnalyze: {
        // ANALYZE executes the program (state mutations included).
        CancelScope scope(evaluator.governor());
        auto plan = evaluator.ExplainAnalyzeSource(body);
        if (!plan.ok()) {
          std::printf("error: %s\n", plan.status().ToString().c_str());
          any_error = true;
          return;
        }
        std::printf("%s", plan->c_str());
        return;
      }
      case Keyword::kProfile: {
        bool was_profiling = evaluator.profiling();
        evaluator.set_profiling(true);
        Execute(body, /*print_profile=*/true);
        evaluator.set_profiling(was_profiling);
        return;
      }
      case Keyword::kCheck:
        Check(body);
        return;
      case Keyword::kNone:
        Execute(source, /*print_profile=*/false);
        return;
    }
  }

  /// Statically analyzes `source` against the session state and prints
  /// caret diagnostics plus the classification of each query statement.
  /// Nothing executes and no state changes.
  void Check(const std::string& source) {
    auto program = lang::Parser::ParseProgram(source);
    if (!program.ok()) {
      std::printf("error: %s\n", program.status().ToString().c_str());
      any_error = true;
      return;
    }
    sema::Analysis analysis = evaluator.Analyze(*program);
    size_t errors = 0;
    size_t warnings = 0;
    for (const sema::Diagnostic& d : analysis.diagnostics) {
      std::printf("%s\n", sema::RenderDiagnostic(source, d).c_str());
      if (d.severity == sema::Severity::kError) ++errors;
      if (d.severity == sema::Severity::kWarning) ++warnings;
    }
    for (size_t i = 0; i < program->statements.size(); ++i) {
      if (program->statements[i].kind != lang::Statement::Kind::kFlwr) {
        continue;
      }
      const sema::StatementInfo& si = analysis.statements[i];
      std::printf("statement %zu: %s%s\n", i + 1,
                  si.nr() ? "nr-GraphQL (equivalent to relational algebra)"
                          : si.terminates
                                ? "recursive (needs the Datalog fixpoint)"
                                : "recursive with no base case (empty "
                                  "fixpoint)",
                  si.unsatisfiable ? "; provably unsatisfiable" : "");
    }
    if (errors == 0 && warnings == 0) {
      std::printf("check: ok\n");
    } else {
      std::printf("check: %zu error%s, %zu warning%s\n", errors,
                  errors == 1 ? "" : "s", warnings, warnings == 1 ? "" : "s");
    }
    if (errors > 0) any_error = true;
  }

  void Execute(const std::string& source, bool print_profile) {
    CancelScope scope(evaluator.governor());
    auto result = evaluator.RunSource(source);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      any_error = true;
      return;
    }
    for (const sema::Diagnostic& d : result->diagnostics) {
      std::printf("%s\n", sema::RenderDiagnostic(source, d).c_str());
    }
    for (const auto& [name, graph] : result->variables) {
      if (!vars_seen.count(name)) {
        std::printf("bound %s: %zu nodes, %zu edges\n", name.c_str(),
                    graph.NumNodes(), graph.NumEdges());
      }
      vars_seen[name] = true;
    }
    if (result->returned.size() > 0) {
      std::printf("returned %zu graphs:\n", result->returned.size());
      size_t shown = 0;
      for (const Graph& g : result->returned) {
        std::printf("%s\n", io::WriteGraphText(g).c_str());
        if (++shown >= 5 && result->returned.size() > 5) {
          std::printf("... (%zu more)\n", result->returned.size() - shown);
          break;
        }
      }
    }
    std::string limits = result->limits.ToString();
    if (!limits.empty()) {
      std::printf("%s", limits.c_str());
    }
    if (print_profile) {
      std::printf("%s", result->profile_text.c_str());
    }
  }

  void PrintLimits() {
    const GovernorLimits& l = *evaluator.mutable_limits();
    std::printf("timeout_ms=%lld max_steps=%llu max_memory_mb=%llu%s "
                "threads=%d\n",
                static_cast<long long>(l.timeout_ms),
                static_cast<unsigned long long>(l.max_steps),
                static_cast<unsigned long long>(l.max_memory_bytes /
                                                (1024 * 1024)),
                l.Unlimited() ? " (unlimited)" : "",
                evaluator.mutable_match_options()->num_threads);
  }

  enum class Keyword { kNone, kExplain, kExplainAnalyze, kProfile, kCheck };

  /// Detects a leading EXPLAIN [ANALYZE] / PROFILE / CHECK keyword
  /// (case-insensitive); on a hit, *body receives the program with the
  /// keyword(s) stripped.
  static Keyword LeadingKeyword(const std::string& source,
                                std::string* body) {
    auto next_word = [&source](size_t* pos) -> std::string {
      size_t start = source.find_first_not_of(" \t\r\n", *pos);
      if (start == std::string::npos) {
        *pos = source.size();
        return "";
      }
      size_t end = start;
      while (end < source.size() &&
             std::isalpha(static_cast<unsigned char>(source[end]))) {
        ++end;
      }
      std::string word = source.substr(start, end - start);
      for (char& c : word) c = std::toupper(static_cast<unsigned char>(c));
      *pos = end;
      return word;
    };
    size_t pos = 0;
    std::string word = next_word(&pos);
    if (word != "EXPLAIN" && word != "PROFILE" && word != "CHECK") {
      return Keyword::kNone;
    }
    if (word == "EXPLAIN") {
      size_t after = pos;
      if (next_word(&after) == "ANALYZE") {
        *body = source.substr(after);
        return Keyword::kExplainAnalyze;
      }
      *body = source.substr(pos);
      return Keyword::kExplain;
    }
    *body = source.substr(pos);
    return word == "PROFILE" ? Keyword::kProfile : Keyword::kCheck;
  }

  void Command(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == ":help") {
      std::printf(
          ":load NAME PATH | :save VAR PATH | :show VAR | :docs | :stats | "
          ":vars | :metrics [json|reset] | :check PATH | :set KEY VALUE | "
          ":limits | :recent [N] | :slow [N] | :top [N] | :trace PATH|off | "
          ":quit\n"
          ":stats                 per-document node/edge counts and compiled "
          "snapshot sizes\n"
          ":check PATH            statically analyze a file (no execution)\n"
          ":set timeout_ms N      wall-clock deadline per query (0 = off)\n"
          ":set max_steps N       unified step budget per query (0 = off)\n"
          ":set max_memory_mb N   approximate memory budget (0 = off)\n"
          ":set threads N         workers for parallel selection (0 = "
          "serial; default $GQL_THREADS)\n"
          ":set slow_ms N         slow-query-log threshold (0 = only "
          "governor trips retained)\n"
          ":set plan_cache N      plan-cache capacity in MB (0 = off; "
          "default $GQL_PLAN_CACHE or 8)\n"
          ":recent [N]            last N query records from the flight "
          "recorder\n"
          ":slow [N]              slow-query log with full trace trees\n"
          ":top [N]               heaviest query shapes + wall percentiles\n"
          ":trace PATH|off        Chrome-trace export of every query "
          "($GQL_TRACE_EXPORT)\n"
          "Ctrl-C cancels the running query, not the shell.\n"
          "EXPLAIN <program>          print the query plan without "
          "executing\n"
          "EXPLAIN ANALYZE <program>  execute, then print the plan with "
          "measured actuals\n"
          "PROFILE <program>          execute, then print trace + metric "
          "deltas\n"
          "CHECK   <program>          statically analyze without "
          "executing\n");
      return;
    }
    if (cmd == ":set") {
      std::string key;
      std::string value;
      in >> key >> value;
      char* end = nullptr;
      long long n = value.empty() ? -1 : std::strtoll(value.c_str(), &end, 10);
      if (n < 0 || end == nullptr || *end != '\0') {
        std::printf(
            "usage: :set {timeout_ms|max_steps|max_memory_mb|threads} N  "
            "(N >= 0, 0 = unlimited/serial)\n");
        return;
      }
      GovernorLimits* limits = evaluator.mutable_limits();
      if (key == "timeout_ms") {
        limits->timeout_ms = n;
      } else if (key == "max_steps") {
        limits->max_steps = static_cast<uint64_t>(n);
      } else if (key == "max_memory_mb") {
        limits->max_memory_bytes = static_cast<uint64_t>(n) * 1024 * 1024;
      } else if (key == "threads") {
        evaluator.mutable_match_options()->num_threads = static_cast<int>(n);
      } else if (key == "slow_ms") {
        evaluator.recorder()->set_slow_threshold_us(n * 1000);
        std::printf("slow-query log: retaining queries >= %lld ms "
                    "(governor trips are always retained)\n",
                    static_cast<long long>(n));
        return;
      } else if (key == "plan_cache") {
        evaluator.set_plan_cache_capacity(static_cast<size_t>(n) << 20);
        std::printf(n == 0 ? "plan cache: off\n"
                           : "plan cache: %lld MB (entries dropped)\n",
                    static_cast<long long>(n));
        return;
      } else {
        std::printf("unknown limit '%s' (timeout_ms, max_steps, "
                    "max_memory_mb, threads, slow_ms, plan_cache)\n",
                    key.c_str());
        return;
      }
      PrintLimits();
      return;
    }
    if (cmd == ":limits") {
      PrintLimits();
      return;
    }
    if (cmd == ":recent" || cmd == ":slow" || cmd == ":top") {
      long long n = 10;
      std::string arg;
      if (in >> arg) {
        char* end = nullptr;
        n = std::strtoll(arg.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n <= 0) {
          std::printf("usage: %s [N]\n", cmd.c_str());
          return;
        }
      }
      const obs::FlightRecorder* rec = evaluator.recorder();
      if (cmd == ":recent") {
        auto records = rec->Recent(static_cast<size_t>(n));
        if (records.empty()) {
          std::printf("no queries recorded yet\n");
          return;
        }
        for (const obs::QueryRecord& r : records) {
          std::printf("%s\n", r.ToLine().c_str());
        }
        if (rec->dropped() > 0) {
          std::printf("(%llu older records dropped from the ring)\n",
                      static_cast<unsigned long long>(rec->dropped()));
        }
        return;
      }
      if (cmd == ":slow") {
        auto entries = rec->Slow(static_cast<size_t>(n));
        if (entries.empty()) {
          std::printf("slow-query log is empty (\":set slow_ms N\" sets the "
                      "threshold; governor-tripped queries are always "
                      "retained)\n");
          return;
        }
        for (const obs::SlowQueryEntry& e : entries) {
          std::printf("%s\n", e.record.ToLine().c_str());
          if (!e.record.trip.empty()) {
            std::printf("  trip: %s\n", e.record.trip.c_str());
          }
          if (!e.trace_text.empty()) {
            std::printf("%s", e.trace_text.c_str());
          }
        }
        return;
      }
      auto top = rec->Top(static_cast<size_t>(n));
      if (top.empty()) {
        std::printf("no queries recorded yet\n");
        return;
      }
      for (const obs::ShapeAggregate& s : top) {
        std::printf("count=%-5llu total=%.2fms mean=%.2fms max=%.2fms "
                    "tripped=%llu  %s\n",
                    static_cast<unsigned long long>(s.count),
                    static_cast<double>(s.total_us) / 1e3,
                    static_cast<double>(s.MeanMicros()) / 1e3,
                    static_cast<double>(s.max_us) / 1e3,
                    static_cast<unsigned long long>(s.tripped),
                    s.shape.c_str());
      }
      obs::HistogramSnapshot wall = rec->WallHistogram();
      std::printf("wall: p50~%lluus p95~%lluus p99~%lluus over %llu "
                  "queries\n",
                  static_cast<unsigned long long>(wall.P50()),
                  static_cast<unsigned long long>(wall.P95()),
                  static_cast<unsigned long long>(wall.P99()),
                  static_cast<unsigned long long>(wall.count));
      return;
    }
    if (cmd == ":trace") {
      std::string arg;
      in >> arg;
      if (arg.empty()) {
        const std::string& path = evaluator.trace_export_path();
        std::printf("trace export: %s\n",
                    path.empty() ? "off" : path.c_str());
      } else if (arg == "off") {
        evaluator.set_trace_export_path("");
        std::printf("trace export: off\n");
      } else {
        evaluator.set_trace_export_path(arg);
        std::printf("trace export: %s (rewritten after every query)\n",
                    arg.c_str());
      }
      return;
    }
    if (cmd == ":metrics") {
      std::string arg;
      in >> arg;
      if (arg == "reset") {
        evaluator.metrics()->Reset();
        std::printf("metrics reset\n");
      } else if (arg == "json") {
        std::printf("%s\n", evaluator.metrics()->ToJson().c_str());
      } else {
        std::printf("%s", evaluator.metrics()->ToText().c_str());
      }
      return;
    }
    if (cmd == ":check") {
      std::string path;
      in >> path;
      if (path.empty()) {
        std::printf("usage: :check PATH\n");
        return;
      }
      std::ifstream file(path);
      if (!file) {
        std::printf("cannot open %s\n", path.c_str());
        any_error = true;
        return;
      }
      std::ostringstream contents;
      contents << file.rdbuf();
      Check(contents.str());
      return;
    }
    if (cmd == ":load") {
      std::string name;
      std::string path;
      in >> name >> path;
      if (name.empty() || path.empty()) {
        std::printf("usage: :load NAME PATH\n");
        return;
      }
      auto c = io::LoadCollection(path);
      if (!c.ok()) {
        std::printf("error: %s\n", c.status().ToString().c_str());
        any_error = true;
        return;
      }
      size_t n = c->size();
      doc_sizes[name] = n;
      docs.Register(name, std::move(c).value());
      std::printf("doc(\"%s\"): %zu graphs\n", name.c_str(), n);
      return;
    }
    if (cmd == ":save") {
      std::string var;
      std::string path;
      in >> var >> path;
      const Graph* g = evaluator.Variable(var);
      if (g == nullptr) {
        std::printf("error: no variable '%s'\n", var.c_str());
        return;
      }
      GraphCollection c;
      c.Add(*g);
      Status s = io::SaveCollection(c, path);
      std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
      return;
    }
    if (cmd == ":show") {
      std::string var;
      in >> var;
      const Graph* g = evaluator.Variable(var);
      if (g == nullptr) {
        std::printf("error: no variable '%s'\n", var.c_str());
        return;
      }
      std::printf("%s\n", io::WriteGraphText(*g).c_str());
      return;
    }
    if (cmd == ":docs") {
      for (const auto& [name, size] : doc_sizes) {
        std::printf("doc(\"%s\"): %zu graphs\n", name.c_str(), size);
      }
      return;
    }
    if (cmd == ":stats") {
      // Plan-cache line first: present even with no documents loaded.
      if (const exec::PlanCache* pc = evaluator.plan_cache(); pc != nullptr) {
        obs::Counter* hits = evaluator.metrics()->GetCounter("plan_cache.hit");
        obs::Counter* misses =
            evaluator.metrics()->GetCounter("plan_cache.miss");
        std::printf("plan cache: %zu plans, %zu/%zu KB, hits=%llu "
                    "misses=%llu\n",
                    pc->entries(), pc->bytes() / 1024, pc->max_bytes() / 1024,
                    static_cast<unsigned long long>(hits->Value()),
                    static_cast<unsigned long long>(misses->Value()));
      } else {
        std::printf("plan cache: off\n");
      }
      if (doc_sizes.empty()) {
        std::printf("no documents loaded (use :load NAME PATH)\n");
        return;
      }
      for (const auto& [name, size] : doc_sizes) {
        const GraphCollection* c = docs.Find(name);
        if (c == nullptr) continue;
        c->CompileAll();
        size_t csr = 0;
        size_t cols = 0;
        size_t syms = 0;
        int64_t build_us = 0;
        for (const Graph& g : *c) {
          auto snap = g.snapshot();
          csr += snap->csr_bytes();
          cols += snap->column_bytes();
          syms += snap->sym_bytes();
          build_us += snap->build_micros();
        }
        std::printf(
            "doc(\"%s\"): %zu graphs, %zu nodes, %zu edges\n"
            "  snapshot: %zu bytes (csr %zu, columns %zu, symbols %zu), "
            "built in %lld us\n",
            name.c_str(), size, c->TotalNodes(), c->TotalEdges(),
            csr + cols + syms, csr, cols, syms,
            static_cast<long long>(build_us));
      }
      return;
    }
    if (cmd == ":vars") {
      for (const auto& [name, seen] : vars_seen) {
        const Graph* g = evaluator.Variable(name);
        if (g != nullptr) {
          std::printf("%s: %zu nodes, %zu edges\n", name.c_str(),
                      g->NumNodes(), g->NumEdges());
        }
      }
      return;
    }
    std::printf("unknown command %s (try :help)\n", cmd.c_str());
  }
};

/// Complete when brace-balanced and ending with ';' outside braces.
bool IsCompleteProgram(const std::string& buffer) {
  int depth = 0;
  bool in_string = false;
  char last_significant = '\0';
  for (size_t i = 0; i < buffer.size(); ++i) {
    char c = buffer[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) {
      last_significant = c;
    }
  }
  return depth <= 0 && last_significant == ';';
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  shell.evaluator.set_session_label("shell");
  // Scoped, restorable SIGINT-cancel handler: per-process and explicit
  // (see common/signals.h) — the shell wants Ctrl-C to kill the query,
  // a server owns its signals by simply not creating this scope.
  SigintCancelScope sigint_scope;

  if (argc > 1) {
    // Batch mode: process the script line-by-line so that ':' shell
    // commands (e.g. :load) work in scripts too; exit nonzero on any
    // error.
    std::ifstream file(argv[1]);
    if (!file) {
      std::printf("cannot open %s\n", argv[1]);
      return 1;
    }
    std::string buffer;
    std::string line;
    while (std::getline(file, line)) {
      if (!line.empty() && line[0] == ':') {
        shell.Command(line);
        continue;
      }
      buffer += line;
      buffer += "\n";
      if (IsCompleteProgram(buffer)) {
        shell.RunProgram(buffer);
        buffer.clear();
      }
    }
    if (!buffer.empty() &&
        buffer.find_first_not_of(" \t\r\n") != std::string::npos) {
      shell.RunProgram(buffer);
    }
    return shell.any_error ? 1 : 0;
  }

  std::printf("GraphQL shell — :help for commands, :quit to exit.\n");
  std::string buffer;
  std::string line;
  bool tty = true;
  std::printf("gql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line[0] == ':') {
      if (line.rfind(":quit", 0) == 0) break;
      shell.Command(line);
    } else {
      buffer += line;
      buffer += "\n";
      if (IsCompleteProgram(buffer)) {
        shell.RunProgram(buffer);
        buffer.clear();
      }
    }
    std::printf(buffer.empty() ? "gql> " : "...> ");
    std::fflush(stdout);
  }
  (void)tty;
  return 0;
}
